//! Scenario: a budget-constrained batch pipeline. For each nightly job,
//! pick the cheapest VM type whose predicted execution time still meets a
//! deadline — the practical side of the paper's budget experiments
//! (Figs. 1 and 13).
//!
//! ```text
//! cargo run --release --example budget_planner
//! ```

use vesta_suite::prelude::*;

/// A job in the nightly pipeline: workload + completion deadline.
struct PlannedJob<'a> {
    workload: &'a Workload,
    deadline_s: f64,
}

fn main() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    let sources: Vec<&Workload> = suite.source_training();
    let vesta = Vesta::train(catalog, &sources, VestaConfig::fast()).expect("training");

    let jobs = [
        PlannedJob {
            workload: suite.by_name("Spark-sort").unwrap(),
            deadline_s: 600.0,
        },
        PlannedJob {
            workload: suite.by_name("Spark-kmeans").unwrap(),
            deadline_s: 900.0,
        },
        PlannedJob {
            workload: suite.by_name("Spark-page-rank").unwrap(),
            deadline_s: 600.0,
        },
        PlannedJob {
            workload: suite.by_name("Spark-grep").unwrap(),
            deadline_s: 300.0,
        },
    ];

    println!(
        "{:<18} {:>10} {:>16} {:>12} {:>12} {:>12}",
        "job", "deadline", "picked VM", "pred time", "pred cost", "true cost"
    );
    let mut total_cost = 0.0;
    for job in &jobs {
        let p = vesta.select_best_vm(job.workload).expect("prediction");
        // Rank by cost among VMs predicted to meet the deadline; fall back
        // to the fastest prediction when nothing meets it.
        let pick = p
            .predicted_times
            .iter()
            .filter(|(_, &t)| t <= job.deadline_s)
            .map(|(&vm, &t)| {
                let price = vesta.catalog.get(vm).expect("valid id").price_per_hour;
                (vm, t, price * t / 3600.0)
            })
            .min_by(|a, b| a.2.total_cmp(&b.2))
            .unwrap_or_else(|| {
                let (&vm, &t) = p
                    .predicted_times
                    .iter()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .expect("non-empty predictions");
                let price = vesta.catalog.get(vm).expect("valid id").price_per_hour;
                (vm, t, price * t / 3600.0)
            });
        let (vm_id, pred_t, pred_cost) = pick;
        let vm = vesta.catalog.get(vm_id).expect("valid id");
        // Ground-truth cost of that pick.
        let truth = ground_truth_ranking(&vesta.catalog, job.workload, 1, Objective::Budget);
        let true_cost = truth
            .iter()
            .find(|(v, _)| *v == vm_id)
            .map(|(_, c)| *c)
            .unwrap_or(f64::NAN);
        total_cost += true_cost;
        println!(
            "{:<18} {:>9.0}s {:>16} {:>11.0}s {:>11.4}$ {:>11.4}$",
            job.workload.name(),
            job.deadline_s,
            vm.name,
            pred_t,
            pred_cost,
            true_cost,
        );
    }
    println!("\nnightly pipeline cost with Vesta's picks: ${total_cost:.4}");

    // What the same pipeline would cost on a one-size-fits-all m5.4xlarge
    // (a common "safe default").
    let default_vm = vesta.catalog.by_name("m5.4xlarge").expect("exists");
    let mut default_cost = 0.0;
    for job in &jobs {
        let truth = ground_truth_ranking(&vesta.catalog, job.workload, 1, Objective::Budget);
        default_cost += truth
            .iter()
            .find(|(v, _)| *v == default_vm.type_id())
            .map(|(_, c)| *c)
            .unwrap_or(0.0);
    }
    println!("same pipeline on a flat m5.4xlarge:        ${default_cost:.4}");
    println!(
        "saving: {:.0}%",
        100.0 * (default_cost - total_cost) / default_cost
    );
}
