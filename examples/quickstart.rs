//! Quickstart: train Vesta's offline knowledge on the Hadoop/Hive source
//! workloads, then ask it for the best VM type for a Spark workload it has
//! never seen — the exact cross-framework flow of the paper.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vesta_suite::prelude::*;

fn main() {
    // 1. The substrate: the 120 EC2 VM types of Table 4 and the
    //    30-workload suite of Table 3.
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    println!(
        "catalog: {} VM types across {} families",
        catalog.len(),
        catalog.families().len()
    );

    // 2. Offline phase (Algorithm 1 lines 1-5): profile the 13 Hadoop/Hive
    //    training workloads on every VM type and abstract the correlation
    //    knowledge. `fast()` trims repetitions so the example runs in
    //    seconds; `VestaConfig::default()` is the paper-faithful setting.
    let sources: Vec<&Workload> = suite.source_training();
    let config = VestaConfig::fast();
    println!(
        "training offline model on {} source workloads…",
        sources.len()
    );
    let vesta = Vesta::train(catalog, &sources, config).expect("offline training");
    println!(
        "offline done: {} simulated runs, {} correlation features kept after PCA",
        vesta.offline_runs(),
        vesta.offline.analysis.selected_features.len()
    );

    // 3. Online phase (lines 6-14): a Spark workload arrives. Vesta runs it
    //    on a sandbox VM + 3 random VMs, completes its sparse label row via
    //    CMF, and reads the best VM off the knowledge graph.
    let target = suite.by_name("Spark-kmeans").expect("in the suite");
    let prediction = vesta.select_best_vm(target).expect("online prediction");
    let chosen = vesta.catalog.get(prediction.best_vm).expect("valid id");
    println!("\ntarget workload: {}", target.name());
    println!("reference VMs consumed: {}", prediction.reference_vms);
    println!("CMF converged: {}", prediction.converged);
    println!("selected VM type: {chosen}");

    // 4. How good was that? Compare against the brute-force ground truth
    //    (the paper's "exhaustively running workloads on 120 VM types").
    let ranking = ground_truth_ranking(&vesta.catalog, target, 1, Objective::ExecutionTime);
    let best = &vesta.catalog.get(ranking[0].0).expect("valid id").name;
    let err = selection_error_pct(
        &vesta.catalog,
        target,
        prediction.best_vm,
        1,
        Objective::ExecutionTime,
    );
    println!("ground-truth best: {best}  |  selection error: {err:.1}%");

    // 5. The most transfer-relevant source workloads (Section 3.3's
    //    distance between U* and U).
    println!("\ntop transfer sources:");
    for (wid, aff) in prediction.source_affinities.iter().take(3) {
        let name = suite.by_id(*wid).map(|w| w.name()).unwrap_or_default();
        println!("  {name:<22} affinity {aff:.3}");
    }
}
