//! Scenario: bringing your own application. The paper's suite is fixed
//! (Table 3), but a real deployment meets new jobs; this example defines a
//! custom graph-analytics workload (a triangle-counting job on Spark),
//! plugs it into the suite machinery, and asks Vesta for a VM type.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use vesta_suite::cloud::Objective;
use vesta_suite::prelude::*;
use vesta_suite::workloads::{Benchmark, SplitSet};

fn main() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    let sources: Vec<&Workload> = suite.source_training();
    let vesta = Vesta::train(catalog, &sources, VestaConfig::fast()).expect("training");

    // A brand-new job: triangle counting over a 12 GB edge list on Spark.
    // We approximate its intrinsic character with the closest algorithm
    // profile (BFS: iterative, shuffle-heavy graph traversal) at a custom
    // scale — exactly how a user would onboard an unknown app: pick the
    // nearest demand family, let the online phase correct the rest from
    // the sandbox runs.
    let triangle_count = Workload {
        id: 31, // ids 1-30 are taken by Table 3
        framework: Framework::Spark,
        algorithm: AlgorithmKind::Bfs,
        scale: DatasetScale::CustomGb(12.0),
        benchmark: Benchmark::BigDataBench,
        split: SplitSet::Target,
    };
    println!(
        "custom workload: {} ({} GB input)",
        triangle_count.name(),
        12.0
    );
    let demand = triangle_count.demand();
    println!(
        "resolved demand: {:.0} core-s compute, {:.1} GB working set, {:.1} GB shuffle/iter, {} iterations",
        demand.compute_units, demand.working_set_gb, demand.shuffle_gb_per_iter, demand.iterations
    );

    let p = vesta.select_best_vm(&triangle_count).expect("prediction");
    let chosen = vesta.catalog.get(p.best_vm).expect("valid id");
    println!("\nrecommended VM type: {chosen}");
    println!(
        "observed reference runs: {:?}",
        p.observed
            .iter()
            .map(|(vm, t)| format!("{} -> {:.0}s", vesta.catalog.get(*vm).unwrap().name, t))
            .collect::<Vec<_>>()
    );

    let err = selection_error_pct(
        &vesta.catalog,
        &triangle_count,
        p.best_vm,
        1,
        Objective::ExecutionTime,
    );
    println!("selection error vs exhaustive ground truth: {err:.1}%");

    // Show the runner-up choices with predicted times, the menu a real
    // operator would review before committing.
    let mut ranked: Vec<(VmTypeId, f64)> =
        p.predicted_times.iter().map(|(&v, &t)| (v, t)).collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\ntop-5 predicted VM types:");
    for (vm, t) in ranked.iter().take(5) {
        let v = vesta.catalog.get(*vm).expect("valid id");
        println!(
            "  {:<16} predicted {:>6.0}s  (${:.4}/run)",
            v.name,
            t,
            v.cost_for(*t)
        );
    }
}
