//! Scenario: production data is never as clean as the benchmark
//! generators'. This example builds skewed synthetic datasets with the
//! `datagen` module (the BigDataBench/HiBench generator stand-in), shows
//! how Zipf-skewed keys erode effective parallelism, and how that moves
//! the best-VM decision.
//!
//! ```text
//! cargo run --release --example skewed_dataset
//! ```

use vesta_suite::cloud::{Objective, Simulator};
use vesta_suite::prelude::*;
use vesta_suite::workloads::{DatasetSpec, MemoryWatcher};

fn main() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    let sim = Simulator::default();
    let watcher = MemoryWatcher::default();

    // A Spark PageRank job over three graph datasets of the same size but
    // increasing hub skew.
    let base = suite.by_name("Spark-page-rank").unwrap().demand();
    println!(
        "{:<28} {:>10} {:>12} {:>16} {:>12}",
        "dataset", "imbalance", "parallelism", "best VM (time)", "time"
    );
    for (name, skew) in [
        ("uniform graph", 0.0),
        ("web graph (zipf 1.0)", 1.0),
        ("social graph (zipf 1.6)", 1.6),
    ] {
        let spec = DatasetSpec::graph(40_000_000, 16.0).with_skew(skew);
        let demand = spec.apply(&base);
        // Exhaustive best under the skewed demand.
        let mut scored: Vec<(usize, f64)> = catalog
            .all()
            .iter()
            .map(|vm| {
                let d = watcher.apply(&demand, vm);
                let t = sim.expected_time(&d, vm, 1).unwrap_or(f64::INFINITY);
                (vm.id, t)
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        let best = catalog.get(scored[0].0).unwrap();
        println!(
            "{:<28} {:>10.2} {:>12.1} {:>16} {:>11.0}s",
            name,
            spec.imbalance(),
            demand.parallelism,
            best.name,
            scored[0].1
        );
    }

    // The punchline is about money: a skewed graph cannot use a wide box,
    // so the cheapest adequate VM shrinks. Compare the budget-best pick
    // under the uniform assumption against the skew-aware one.
    let uniform = DatasetSpec::graph(40_000_000, 16.0)
        .with_skew(0.0)
        .apply(&base);
    let skewed = DatasetSpec::graph(40_000_000, 16.0)
        .with_skew(1.6)
        .apply(&base);
    let budget_pick = |demand: &vesta_suite::cloud::ExecutionDemand| -> usize {
        catalog
            .all()
            .iter()
            .map(|vm| {
                let d = watcher.apply(demand, vm);
                let score = sim
                    .expected_phases(&d, vm, 1)
                    .map(|p| Objective::Budget.score(&p, &d, vm, 1))
                    .unwrap_or(f64::INFINITY);
                (vm.id, score)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
            .0
    };
    let naive_vm = budget_pick(&uniform);
    let right_vm = budget_pick(&skewed);
    let cost_on = |demand: &vesta_suite::cloud::ExecutionDemand, vm_id: usize| {
        let vm = catalog.get(vm_id).unwrap();
        let d = watcher.apply(demand, vm);
        let p = sim.expected_phases(&d, vm, 1).unwrap();
        Objective::Budget.score(&p, &d, vm, 1)
    };
    let naive_c = cost_on(&skewed, naive_vm);
    let right_c = cost_on(&skewed, right_vm);
    println!(
        "\nbudgeting for uniform data but running the skewed graph: {} at ${:.4} vs \
         the skew-aware pick {} at ${:.4} ({:+.0}% overspend)",
        catalog.get(naive_vm).unwrap().name,
        naive_c,
        catalog.get(right_vm).unwrap().name,
        right_c,
        100.0 * (naive_c - right_c) / right_c
    );
}
