//! Scenario: latency-sensitive streaming workloads. Section 7 of the
//! paper points out that "latency and throughput are important variables
//! for measuring the performance of latency-sensitive workloads" — this
//! example exercises that extension: pick VMs for the suite's streaming
//! apps under the per-batch-latency and throughput objectives and contrast
//! them with the plain execution-time pick.
//!
//! ```text
//! cargo run --release --example streaming_latency
//! ```

use vesta_suite::prelude::*;

fn main() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();

    let streaming = ["Hadoop-twitter", "Hadoop-page-review"];
    println!(
        "{:<22} {:<14} {:>16} {:>14}",
        "workload", "objective", "best VM", "score"
    );
    for name in streaming {
        let w = suite.by_name(name).expect("streaming workload exists");
        for (label, objective, unit) in [
            ("execution time", Objective::ExecutionTime, "s"),
            ("batch latency", Objective::BatchLatency, "s/batch"),
            ("throughput", Objective::TimePerGb, "s/GB"),
            ("budget", Objective::Budget, "$"),
        ] {
            let ranking = ground_truth_ranking(&catalog, w, 1, objective);
            let (vm_id, score) = ranking[0];
            let vm = catalog.get(vm_id).expect("valid id");
            println!(
                "{:<22} {:<14} {:>16} {:>11.3} {unit}",
                w.name(),
                label,
                vm.name,
                score
            );
        }
        println!();
    }

    // For a *fixed* demand, per-batch latency is total time minus the
    // (VM-independent) startup divided by the iteration count, so the two
    // objectives agree at the top of the ranking. They diverge where the
    // Mesos-style memory watcher rewrites the demand per VM: a
    // memory-tight box that processes a Spark job in waves runs more,
    // smaller batches — worse total time, but each batch returns sooner.
    // Quantify the reordering on Spark-CF (the suite's biggest working
    // set).
    let w = suite.by_name("Spark-CF").unwrap();
    let by_time = ground_truth_ranking(&catalog, w, 1, Objective::ExecutionTime);
    let by_latency = ground_truth_ranking(&catalog, w, 1, Objective::BatchLatency);
    let rank_of = |ranking: &[(VmTypeId, f64)], vm: VmTypeId| {
        ranking.iter().position(|(v, _)| *v == vm).unwrap()
    };
    let mut moved = 0usize;
    let mut biggest: (VmTypeId, i64) = (VmTypeId::new(0), 0);
    for vm in catalog.all() {
        let id = vm.type_id();
        let delta = rank_of(&by_time, id) as i64 - rank_of(&by_latency, id) as i64;
        if delta != 0 {
            moved += 1;
        }
        if delta.abs() > biggest.1.abs() {
            biggest = (id, delta);
        }
    }
    let mover = catalog.get(biggest.0).expect("valid id");
    println!(
        "{}: {moved} of 120 VM types change rank between the time and latency \
         objectives; largest mover is {} ({} places {})",
        w.name(),
        mover.name,
        biggest.1.abs(),
        if biggest.1 > 0 {
            "up under latency"
        } else {
            "down under latency"
        },
    );
}
