//! Scenario: a team that has been running Hadoop and Hive for years is
//! migrating its analytics to Spark. They already hold months of profiling
//! data from the old frameworks — exactly Vesta's source knowledge — and
//! want VM recommendations for every migrated job *without* re-profiling
//! the cloud from scratch (the intro's "12x extra budget for one third of
//! performance" trap).
//!
//! ```text
//! cargo run --release --example spark_migration
//! ```

use vesta_suite::prelude::*;

fn main() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();

    // Offline: the knowledge the team already has (13 Hadoop/Hive jobs
    // profiled across the catalog).
    let sources: Vec<&Workload> = suite.source_training();
    let vesta = Vesta::train(catalog, &sources, VestaConfig::fast()).expect("training");

    println!(
        "{:<18} {:>16} {:>7} {:>10} {:>12} {:>10}",
        "Spark job", "recommended VM", "refs", "error", "vs naive", "converged"
    );
    let mut total_refs = 0usize;
    let mut errors = Vec::new();
    for target in suite.target() {
        let p = vesta.select_best_vm(target).expect("prediction");
        let chosen = vesta.catalog.get(p.best_vm).expect("valid id");
        let err = selection_error_pct(
            &vesta.catalog,
            target,
            p.best_vm,
            1,
            Objective::ExecutionTime,
        );
        // The naive migration: keep using the VM type that was best for
        // the same algorithm under Hadoop (if the team ever profiled it) —
        // the trap the paper's Fig. 2 warns about.
        let naive_err = suite
            .all()
            .iter()
            .find(|w| w.algorithm == target.algorithm && w.framework != Framework::Spark)
            .map(|hadoop_twin| {
                let ranking =
                    ground_truth_ranking(&vesta.catalog, hadoop_twin, 1, Objective::ExecutionTime);
                selection_error_pct(
                    &vesta.catalog,
                    target,
                    ranking[0].0,
                    1,
                    Objective::ExecutionTime,
                )
            });
        total_refs += p.reference_vms;
        errors.push(err);
        println!(
            "{:<18} {:>16} {:>7} {:>9.1}% {:>11} {:>10}",
            target.name(),
            chosen.name,
            p.reference_vms,
            err,
            naive_err
                .map(|e| format!("{e:.1}%"))
                .unwrap_or_else(|| "-".into()),
            if p.converged { "yes" } else { "capped" },
        );
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    println!("\nmean selection error: {mean:.1}%");
    println!(
        "total reference-VM runs for all {} migrated jobs: {} (a from-scratch PARIS sweep \
         would need {})",
        suite.target().len(),
        total_refs,
        suite.target().len() * vesta.catalog.len()
    );
}
