//! # vesta-graph
//!
//! The knowledge-representation substrate of the Vesta reproduction: the
//! two-layer bipartite graph of Section 3.2 (Fig. 4) and the
//! correlation-interval labels that form its middle layer.
//!
//! * [`label`] — 0.05-wide correlation intervals as [`label::Label`]s with
//!   dense ids, optional PCA feature filtering, human-readable
//!   descriptions.
//! * [`bipartite`] — the workload-label layers `G^(XL)` / `G^(X*L)` and the
//!   label-VM layer `G^(LT)`, with weighted edges, two-hop VM scoring and
//!   dense-matrix export for the CMF solver.

pub mod bipartite;
pub mod label;

pub use bipartite::{LabelLayer, TwoLayerGraph};
pub use label::{Label, LabelSpace};

use std::fmt;

/// Errors produced by `vesta-graph`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// Dimension disagreement between a matrix and the graph structure.
    Shape(String),
    /// Invalid parameter (e.g. non-positive interval width).
    InvalidParameter(String),
}

impl GraphError {
    /// True when a retry can plausibly succeed. Graph errors are all
    /// deterministic shape/parameter violations, so the answer is always
    /// `false`; the method exists so retry policy can branch uniformly
    /// across every crate's error type.
    pub fn is_transient(&self) -> bool {
        false
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Shape(s) => write!(f, "shape mismatch: {s}"),
            GraphError::InvalidParameter(s) => write!(f, "invalid parameter: {s}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(GraphError::Shape("x".into()).to_string().contains("x"));
        assert!(GraphError::InvalidParameter("y".into())
            .to_string()
            .contains("y"));
    }
}
