//! Correlation-interval labels.
//!
//! Section 3.1 / 5.3: Vesta "divides correlation values into 0.05
//! intervals" and treats each (correlation feature, interval) pair as a
//! **label** — the middle layer of the two-layer bipartite graph. A
//! workload "conforms to" a label when its measured correlation for that
//! feature falls inside the interval (Eq. 3).

use serde::{Deserialize, Serialize};

use crate::GraphError;

/// A label: correlation feature `feature` observed inside interval
/// `interval` of the discretized `[-1, 1]` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Label {
    /// Index of the correlation feature (0..10, Table 1 order).
    pub feature: usize,
    /// Interval index within `[-1, 1]` (0-based from -1).
    pub interval: usize,
}

/// The discretized label space over a set of correlation features.
///
/// ```
/// use vesta_graph::LabelSpace;
///
/// let space = LabelSpace::paper_default(10); // 0.05-wide intervals
/// assert_eq!(space.n_labels(), 400);
/// let labels = space.labels_for(&[0.82; 10]).unwrap();
/// assert_eq!(labels.len(), 10);
/// assert_eq!(labels[0].interval, space.interval_of(0.82));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelSpace {
    /// Number of correlation features being discretized.
    pub n_features: usize,
    /// Interval width (the paper's 0.05).
    pub interval_width: f64,
    /// Indices of features kept after PCA importance filtering; labels are
    /// only produced for these. `None` keeps every feature.
    pub selected_features: Option<Vec<usize>>,
}

impl LabelSpace {
    /// Label space over `n_features` correlations with the paper's 0.05
    /// intervals.
    pub fn paper_default(n_features: usize) -> Self {
        LabelSpace {
            n_features,
            interval_width: 0.05,
            selected_features: None,
        }
    }

    /// Label space with a custom interval width (ablation knob).
    pub fn with_width(n_features: usize, interval_width: f64) -> Result<Self, GraphError> {
        if !(interval_width > 0.0 && interval_width <= 2.0) {
            return Err(GraphError::InvalidParameter(format!(
                "interval width {interval_width}"
            )));
        }
        Ok(LabelSpace {
            n_features,
            interval_width,
            selected_features: None,
        })
    }

    /// Restrict labeling to PCA-selected features.
    pub fn with_selected(mut self, selected: Vec<usize>) -> Self {
        self.selected_features = Some(selected);
        self
    }

    /// Number of intervals per feature.
    pub fn intervals_per_feature(&self) -> usize {
        (2.0 / self.interval_width).ceil() as usize
    }

    /// Total number of distinct labels.
    pub fn n_labels(&self) -> usize {
        self.n_features * self.intervals_per_feature()
    }

    /// Interval index of a correlation value in `[-1, 1]`.
    pub fn interval_of(&self, value: f64) -> usize {
        let clamped = value.clamp(-1.0, 1.0);
        let idx = ((clamped + 1.0) / self.interval_width).floor() as usize;
        idx.min(self.intervals_per_feature() - 1)
    }

    /// `[lo, hi)` bounds of an interval.
    pub fn interval_bounds(&self, interval: usize) -> (f64, f64) {
        let lo = -1.0 + interval as f64 * self.interval_width;
        (lo, lo + self.interval_width)
    }

    /// Dense 0-based id of a label (row/column index in matrices).
    pub fn label_id(&self, label: Label) -> usize {
        label.feature * self.intervals_per_feature() + label.interval
    }

    /// Inverse of [`LabelSpace::label_id`].
    pub fn label_from_id(&self, id: usize) -> Label {
        let per = self.intervals_per_feature();
        Label {
            feature: id / per,
            interval: id % per,
        }
    }

    /// Is this feature kept by the PCA filter?
    fn feature_selected(&self, feature: usize) -> bool {
        match &self.selected_features {
            None => true,
            Some(sel) => sel.contains(&feature),
        }
    }

    /// Labels a correlation vector conforms to (Eq. 3): one per selected
    /// feature.
    pub fn labels_for(&self, correlations: &[f64]) -> Result<Vec<Label>, GraphError> {
        if correlations.len() != self.n_features {
            return Err(GraphError::Shape(format!(
                "{} correlations for a {}-feature label space",
                correlations.len(),
                self.n_features
            )));
        }
        Ok(correlations
            .iter()
            .enumerate()
            .filter(|(f, _)| self.feature_selected(*f))
            .map(|(f, &v)| Label {
                feature: f,
                interval: self.interval_of(v),
            })
            .collect())
    }

    /// Human-readable description of a label, e.g.
    /// `"CPU-to-memory in [0.80, 0.85)"`.
    pub fn describe(&self, label: Label, feature_names: &[&str]) -> String {
        let (lo, hi) = self.interval_bounds(label.interval);
        let name = feature_names
            .get(label.feature)
            .copied()
            .unwrap_or("feature?");
        format!("{name} in [{lo:.2}, {hi:.2})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_has_40_intervals() {
        let s = LabelSpace::paper_default(10);
        assert_eq!(s.intervals_per_feature(), 40);
        assert_eq!(s.n_labels(), 400);
    }

    #[test]
    fn interval_of_boundaries() {
        let s = LabelSpace::paper_default(10);
        assert_eq!(s.interval_of(-1.0), 0);
        assert_eq!(s.interval_of(1.0), 39); // clamped into last interval
        assert_eq!(s.interval_of(0.0), 20);
        assert_eq!(s.interval_of(-0.97), 0);
        assert_eq!(s.interval_of(0.82), 36);
        // out-of-range values clamp
        assert_eq!(s.interval_of(5.0), 39);
        assert_eq!(s.interval_of(-5.0), 0);
    }

    #[test]
    fn interval_bounds_contain_value() {
        let s = LabelSpace::paper_default(10);
        for v in [-0.99, -0.5, 0.0, 0.33, 0.949] {
            let i = s.interval_of(v);
            let (lo, hi) = s.interval_bounds(i);
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi})");
        }
    }

    #[test]
    fn label_id_roundtrips() {
        let s = LabelSpace::paper_default(10);
        for f in 0..10 {
            for i in 0..40 {
                let l = Label {
                    feature: f,
                    interval: i,
                };
                assert_eq!(s.label_from_id(s.label_id(l)), l);
            }
        }
        // ids are dense and unique
        let sr = &s;
        let mut ids: Vec<usize> = (0..10)
            .flat_map(|f| {
                (0..40).map(move |i| {
                    sr.label_id(Label {
                        feature: f,
                        interval: i,
                    })
                })
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 400);
        assert_eq!(*ids.last().unwrap(), 399);
    }

    #[test]
    fn labels_for_yields_one_label_per_feature() {
        let s = LabelSpace::paper_default(3);
        let labels = s.labels_for(&[0.8, -0.2, 0.0]).unwrap();
        assert_eq!(labels.len(), 3);
        assert_eq!(labels[0].feature, 0);
        assert_eq!(labels[1].feature, 1);
        assert!(s.labels_for(&[0.1, 0.2]).is_err());
    }

    #[test]
    fn pca_selection_filters_labels() {
        let s = LabelSpace::paper_default(4).with_selected(vec![0, 2]);
        let labels = s.labels_for(&[0.1, 0.2, 0.3, 0.4]).unwrap();
        assert_eq!(labels.len(), 2);
        assert_eq!(labels[0].feature, 0);
        assert_eq!(labels[1].feature, 2);
    }

    #[test]
    fn custom_width_validation() {
        assert!(LabelSpace::with_width(10, 0.0).is_err());
        assert!(LabelSpace::with_width(10, -0.1).is_err());
        assert!(LabelSpace::with_width(10, 2.5).is_err());
        let wide = LabelSpace::with_width(10, 0.5).unwrap();
        assert_eq!(wide.intervals_per_feature(), 4);
    }

    #[test]
    fn describe_is_readable() {
        let s = LabelSpace::paper_default(2);
        let l = Label {
            feature: 0,
            interval: 36,
        };
        let d = s.describe(l, &["CPU-to-memory", "memory-to-disk"]);
        assert!(d.contains("CPU-to-memory"));
        assert!(d.contains("0.80"));
    }

    #[test]
    fn same_interval_same_label() {
        let s = LabelSpace::paper_default(1);
        let a = s.labels_for(&[0.81]).unwrap();
        let b = s.labels_for(&[0.84]).unwrap();
        let c = s.labels_for(&[0.86]).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
