//! The two-layer bipartite graph of Section 3.2 (Fig. 4).
//!
//! Layer 1 links **workloads** to **labels** (`G^(XL)` for source
//! workloads, `G^(X*L)` for target workloads — the red edges Vesta must
//! learn). Layer 2 links **labels** to **VM types** (`G^(LT)`). Knowledge
//! is `G^(XL) + G^(LT)`; reusing knowledge is `G^(X*L) + G^(LT)`.
//!
//! Edges are weighted: workload-label edges are 0/1 conformance (Eq. 3),
//! label-VM edges carry the strength K-Means assigns to the label's VM
//! group. Matrices are exported for the CMF solver.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

use vesta_ml::Matrix;

use crate::label::{Label, LabelSpace};
use crate::GraphError;

/// One layer of the bipartite graph: weighted edges between `left`
/// entities (workloads or VM types) and labels.
///
/// Serialized as a flat `(left, label, weight)` edge list so the layer
/// survives JSON (whose map keys must be strings).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(from = "Vec<(u64, Label, f64)>", into = "Vec<(u64, Label, f64)>")]
pub struct LabelLayer {
    /// `edges[left] = {label -> weight}`.
    edges: BTreeMap<u64, BTreeMap<Label, f64>>,
}

impl From<Vec<(u64, Label, f64)>> for LabelLayer {
    fn from(triples: Vec<(u64, Label, f64)>) -> Self {
        let mut layer = LabelLayer::new();
        for (left, label, weight) in triples {
            layer.set_edge(left, label, weight);
        }
        layer
    }
}

impl From<LabelLayer> for Vec<(u64, Label, f64)> {
    fn from(layer: LabelLayer) -> Self {
        layer
            .edges
            .iter()
            .flat_map(|(&left, m)| m.iter().map(move |(&l, &w)| (left, l, w)))
            .collect()
    }
}

impl LabelLayer {
    /// Empty layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add (or overwrite) an edge.
    pub fn set_edge(&mut self, left: u64, label: Label, weight: f64) {
        self.edges.entry(left).or_default().insert(label, weight);
    }

    /// Add `weight` onto an edge, creating it at 0 if absent.
    pub fn add_weight(&mut self, left: u64, label: Label, weight: f64) {
        *self
            .edges
            .entry(left)
            .or_default()
            .entry(label)
            .or_insert(0.0) += weight;
    }

    /// Weight of an edge (0 when absent).
    pub fn weight(&self, left: u64, label: Label) -> f64 {
        self.edges
            .get(&left)
            .and_then(|m| m.get(&label))
            .copied()
            .unwrap_or(0.0)
    }

    /// Labels adjacent to `left`, with weights.
    pub fn labels_of(&self, left: u64) -> Vec<(Label, f64)> {
        self.edges
            .get(&left)
            .map(|m| m.iter().map(|(&l, &w)| (l, w)).collect())
            .unwrap_or_default()
    }

    /// Left entities adjacent to `label`, with weights.
    pub fn lefts_of(&self, label: Label) -> Vec<(u64, f64)> {
        self.edges
            .iter()
            .filter_map(|(&left, m)| m.get(&label).map(|&w| (left, w)))
            .collect()
    }

    /// All left entity ids present in the layer, ascending.
    pub fn lefts(&self) -> Vec<u64> {
        self.edges.keys().copied().collect()
    }

    /// All labels appearing on any edge.
    pub fn labels(&self) -> BTreeSet<Label> {
        self.edges
            .values()
            .flat_map(|m| m.keys().copied())
            .collect()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.edges.values().map(BTreeMap::len).sum()
    }

    /// Export as a dense matrix: row order follows `lefts_order`, column
    /// order is the label space's dense label id.
    pub fn to_matrix(&self, lefts_order: &[u64], space: &LabelSpace) -> Matrix {
        let mut m = Matrix::zeros(lefts_order.len(), space.n_labels());
        for (r, left) in lefts_order.iter().enumerate() {
            if let Some(edges) = self.edges.get(left) {
                for (&label, &w) in edges {
                    m[(r, space.label_id(label))] = w;
                }
            }
        }
        m
    }

    /// Rebuild a layer from a dense matrix (inverse of
    /// [`LabelLayer::to_matrix`]); entries below `threshold` are dropped.
    pub fn from_matrix(
        m: &Matrix,
        lefts_order: &[u64],
        space: &LabelSpace,
        threshold: f64,
    ) -> Result<Self, GraphError> {
        if m.rows() != lefts_order.len() || m.cols() != space.n_labels() {
            return Err(GraphError::Shape(format!(
                "matrix {}x{} vs {} lefts and {} labels",
                m.rows(),
                m.cols(),
                lefts_order.len(),
                space.n_labels()
            )));
        }
        let mut layer = LabelLayer::new();
        for (r, &left) in lefts_order.iter().enumerate() {
            for c in 0..m.cols() {
                let w = m[(r, c)];
                if w.abs() >= threshold {
                    layer.set_edge(left, space.label_from_id(c), w);
                }
            }
        }
        Ok(layer)
    }
}

/// The full two-layer structure of Fig. 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoLayerGraph {
    /// The label space both layers share.
    pub space: LabelSpace,
    /// `G^(XL)`: source workloads → labels (blue edges, layer 1).
    pub source_layer: LabelLayer,
    /// `G^(X*L)`: target workloads → labels (red edges, layer 1).
    pub target_layer: LabelLayer,
    /// `G^(LT)`: VM types → labels (blue edges, layer 2; stored VM-major).
    pub vm_layer: LabelLayer,
}

impl TwoLayerGraph {
    /// Empty graph over a label space.
    pub fn new(space: LabelSpace) -> Self {
        TwoLayerGraph {
            space,
            source_layer: LabelLayer::new(),
            target_layer: LabelLayer::new(),
            vm_layer: LabelLayer::new(),
        }
    }

    /// Two-hop propagation: score every VM type for `workload` by walking
    /// workload → labels → VM types. `target` selects which layer-1
    /// subgraph the workload lives in.
    pub fn vm_scores(&self, workload: u64, target: bool) -> BTreeMap<u64, f64> {
        let layer = if target {
            &self.target_layer
        } else {
            &self.source_layer
        };
        let mut scores: BTreeMap<u64, f64> = BTreeMap::new();
        for (label, w1) in layer.labels_of(workload) {
            for (vm, w2) in self.vm_layer.lefts_of(label) {
                *scores.entry(vm).or_insert(0.0) += w1 * w2;
            }
        }
        scores
    }

    /// Workload-to-workload similarity through shared labels (used to pick
    /// transfer sources): sum over shared labels of the edge-weight
    /// products.
    pub fn workload_similarity(&self, source_wl: u64, target_wl: u64) -> f64 {
        let s_labels = self.source_layer.labels_of(source_wl);
        let mut sim = 0.0;
        for (label, ws) in s_labels {
            let wt = self.target_layer.weight(target_wl, label);
            sim += ws * wt;
        }
        sim
    }

    /// Total edges across the three subgraphs.
    pub fn n_edges(&self) -> usize {
        self.source_layer.n_edges() + self.target_layer.n_edges() + self.vm_layer.n_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> LabelSpace {
        LabelSpace::paper_default(3)
    }

    fn lab(f: usize, i: usize) -> Label {
        Label {
            feature: f,
            interval: i,
        }
    }

    #[test]
    fn edge_set_get_add() {
        let mut layer = LabelLayer::new();
        layer.set_edge(1, lab(0, 5), 1.0);
        layer.add_weight(1, lab(0, 5), 0.5);
        layer.add_weight(2, lab(1, 3), 2.0);
        assert_eq!(layer.weight(1, lab(0, 5)), 1.5);
        assert_eq!(layer.weight(2, lab(1, 3)), 2.0);
        assert_eq!(layer.weight(3, lab(0, 0)), 0.0);
        assert_eq!(layer.n_edges(), 2);
        assert_eq!(layer.lefts(), vec![1, 2]);
    }

    #[test]
    fn adjacency_queries() {
        let mut layer = LabelLayer::new();
        layer.set_edge(1, lab(0, 5), 1.0);
        layer.set_edge(1, lab(1, 7), 0.5);
        layer.set_edge(2, lab(0, 5), 0.25);
        let labels = layer.labels_of(1);
        assert_eq!(labels.len(), 2);
        let lefts = layer.lefts_of(lab(0, 5));
        assert_eq!(lefts.len(), 2);
        assert!(layer.labels().contains(&lab(1, 7)));
    }

    #[test]
    fn matrix_roundtrip() {
        let sp = space();
        let mut layer = LabelLayer::new();
        layer.set_edge(10, lab(0, 5), 1.0);
        layer.set_edge(20, lab(2, 39), 0.75);
        let order = vec![10, 20];
        let m = layer.to_matrix(&order, &sp);
        assert_eq!(m.shape(), (2, sp.n_labels()));
        assert_eq!(m[(0, sp.label_id(lab(0, 5)))], 1.0);
        assert_eq!(m[(1, sp.label_id(lab(2, 39)))], 0.75);
        let back = LabelLayer::from_matrix(&m, &order, &sp, 1e-9).unwrap();
        assert_eq!(back.weight(10, lab(0, 5)), 1.0);
        assert_eq!(back.weight(20, lab(2, 39)), 0.75);
        assert_eq!(back.n_edges(), 2);
    }

    #[test]
    fn from_matrix_shape_check_and_threshold() {
        let sp = space();
        let m = Matrix::zeros(2, 5);
        assert!(LabelLayer::from_matrix(&m, &[1, 2], &sp, 0.0).is_err());
        let mut m = Matrix::zeros(1, sp.n_labels());
        m[(0, 0)] = 0.001;
        m[(0, 1)] = 0.9;
        let layer = LabelLayer::from_matrix(&m, &[5], &sp, 0.01).unwrap();
        assert_eq!(layer.n_edges(), 1);
    }

    #[test]
    fn two_hop_vm_scores() {
        let mut g = TwoLayerGraph::new(space());
        // workload 1 conforms to labels A and B
        g.source_layer.set_edge(1, lab(0, 5), 1.0);
        g.source_layer.set_edge(1, lab(1, 7), 1.0);
        // VM 100 is strong for A, VM 200 weak for A and strong for B
        g.vm_layer.set_edge(100, lab(0, 5), 0.9);
        g.vm_layer.set_edge(200, lab(0, 5), 0.2);
        g.vm_layer.set_edge(200, lab(1, 7), 0.8);
        let scores = g.vm_scores(1, false);
        assert!((scores[&100] - 0.9).abs() < 1e-12);
        assert!((scores[&200] - 1.0).abs() < 1e-12);
        // unknown workload yields empty scores
        assert!(g.vm_scores(42, false).is_empty());
    }

    #[test]
    fn target_layer_is_separate() {
        let mut g = TwoLayerGraph::new(space());
        g.source_layer.set_edge(1, lab(0, 5), 1.0);
        g.target_layer.set_edge(1, lab(1, 7), 1.0);
        g.vm_layer.set_edge(100, lab(0, 5), 1.0);
        g.vm_layer.set_edge(200, lab(1, 7), 1.0);
        let src = g.vm_scores(1, false);
        let tgt = g.vm_scores(1, true);
        assert!(src.contains_key(&100) && !src.contains_key(&200));
        assert!(tgt.contains_key(&200) && !tgt.contains_key(&100));
    }

    #[test]
    fn workload_similarity_counts_shared_labels() {
        let mut g = TwoLayerGraph::new(space());
        g.source_layer.set_edge(1, lab(0, 5), 1.0);
        g.source_layer.set_edge(1, lab(1, 7), 1.0);
        g.source_layer.set_edge(2, lab(2, 3), 1.0);
        g.target_layer.set_edge(9, lab(0, 5), 1.0);
        g.target_layer.set_edge(9, lab(1, 7), 1.0);
        assert!((g.workload_similarity(1, 9) - 2.0).abs() < 1e-12);
        assert_eq!(g.workload_similarity(2, 9), 0.0);
    }

    #[test]
    fn edge_counting_across_layers() {
        let mut g = TwoLayerGraph::new(space());
        g.source_layer.set_edge(1, lab(0, 1), 1.0);
        g.target_layer.set_edge(2, lab(0, 2), 1.0);
        g.vm_layer.set_edge(3, lab(0, 3), 1.0);
        assert_eq!(g.n_edges(), 3);
    }
}
