//! Property tests of the label space and the bipartite layers: interval
//! geometry for arbitrary widths, dense-id bijectivity, and
//! matrix-roundtrip fidelity for randomized layers.

use proptest::prelude::*;
use vesta_graph::{Label, LabelLayer, LabelSpace, TwoLayerGraph};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 128 }))]

    #[test]
    fn interval_of_is_total_and_bounded(
        width in 0.01f64..1.0,
        value in -2.0f64..2.0,
        features in 1usize..12,
    ) {
        let space = LabelSpace::with_width(features, width).unwrap();
        let i = space.interval_of(value);
        prop_assert!(i < space.intervals_per_feature());
        // the value (clamped) falls inside its interval
        let (lo, hi) = space.interval_bounds(i);
        let clamped = value.clamp(-1.0, 1.0);
        prop_assert!(clamped >= lo - 1e-12);
        // the topmost interval absorbs the closed upper end
        if i + 1 < space.intervals_per_feature() {
            prop_assert!(clamped < hi + 1e-12);
        }
    }

    #[test]
    fn label_ids_are_bijective(width in 0.02f64..0.5, features in 1usize..12) {
        let space = LabelSpace::with_width(features, width).unwrap();
        let per = space.intervals_per_feature();
        for f in 0..features {
            for i in (0..per).step_by(1 + per / 7) {
                let l = Label { feature: f, interval: i };
                let id = space.label_id(l);
                prop_assert!(id < space.n_labels());
                prop_assert_eq!(space.label_from_id(id), l);
            }
        }
    }

    #[test]
    fn labels_for_is_deterministic_and_feature_aligned(
        seed in 0u64..500,
        features in 1usize..11,
    ) {
        let space = LabelSpace::paper_default(features);
        let mut x = seed.wrapping_add(3);
        let corr: Vec<f64> = (0..features)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
            })
            .collect();
        let a = space.labels_for(&corr).unwrap();
        let b = space.labels_for(&corr).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), features);
        for (f, l) in a.iter().enumerate() {
            prop_assert_eq!(l.feature, f);
        }
    }

    #[test]
    fn layer_matrix_roundtrip_preserves_edges(seed in 0u64..300, n_left in 1usize..8) {
        let space = LabelSpace::with_width(4, 0.25).unwrap();
        let mut layer = LabelLayer::new();
        let mut x = seed.wrapping_add(11);
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        let lefts: Vec<u64> = (0..n_left as u64).collect();
        for &left in &lefts {
            for _ in 0..3 {
                let f = (next() % 4) as usize;
                let i = (next() % space.intervals_per_feature() as u64) as usize;
                let w = 0.1 + (next() % 100) as f64 / 100.0;
                layer.set_edge(left, Label { feature: f, interval: i }, w);
            }
        }
        let m = layer.to_matrix(&lefts, &space);
        let back = LabelLayer::from_matrix(&m, &lefts, &space, 1e-12).unwrap();
        prop_assert_eq!(back.n_edges(), layer.n_edges());
        for &left in &lefts {
            for (label, w) in layer.labels_of(left) {
                prop_assert!((back.weight(left, label) - w).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn serde_roundtrip_layer(seed in 0u64..200) {
        let mut layer = LabelLayer::new();
        let mut x = seed.wrapping_add(29);
        for k in 0..6u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            layer.set_edge(
                k % 3,
                Label { feature: (x % 5) as usize, interval: (x % 40) as usize },
                (x % 1000) as f64 / 1000.0 + 0.001,
            );
        }
        let json = serde_json::to_string(&layer).unwrap();
        let back: LabelLayer = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.n_edges(), layer.n_edges());
        for left in layer.lefts() {
            for (label, w) in layer.labels_of(left) {
                prop_assert!((back.weight(left, label) - w).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn two_hop_scores_are_nonnegative_and_additive(seed in 0u64..200) {
        let space = LabelSpace::with_width(3, 0.5).unwrap();
        let mut g = TwoLayerGraph::new(space);
        let mut x = seed.wrapping_add(17);
        let mut next = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x
        };
        for _ in 0..8 {
            let l = Label { feature: (next() % 3) as usize, interval: (next() % 4) as usize };
            g.source_layer.set_edge(next() % 4, l, 1.0);
            g.vm_layer.set_edge(next() % 6, l, (next() % 100) as f64 / 100.0);
        }
        for wl in 0..4u64 {
            let scores = g.vm_scores(wl, false);
            let mut manual: std::collections::BTreeMap<u64, f64> = Default::default();
            for (label, w1) in g.source_layer.labels_of(wl) {
                for (vm, w2) in g.vm_layer.lefts_of(label) {
                    *manual.entry(vm).or_insert(0.0) += w1 * w2;
                }
            }
            prop_assert_eq!(&scores, &manual);
            for v in scores.values() {
                prop_assert!(*v >= 0.0);
            }
        }
    }
}

#[test]
fn graph_json_roundtrip_full() {
    let space = LabelSpace::paper_default(10).with_selected(vec![0, 2, 4]);
    let mut g = TwoLayerGraph::new(space);
    g.source_layer.set_edge(
        1,
        Label {
            feature: 0,
            interval: 30,
        },
        1.0,
    );
    g.target_layer.set_edge(
        9,
        Label {
            feature: 2,
            interval: 5,
        },
        1.0,
    );
    g.vm_layer.set_edge(
        100,
        Label {
            feature: 0,
            interval: 30,
        },
        0.7,
    );
    let json = serde_json::to_string(&g).unwrap();
    let back: TwoLayerGraph = serde_json::from_str(&json).unwrap();
    assert_eq!(back.n_edges(), g.n_edges());
    assert_eq!(back.space.selected_features, Some(vec![0, 2, 4]));
    assert_eq!(
        back.vm_scores(1, false).get(&100).copied(),
        g.vm_scores(1, false).get(&100).copied()
    );
}
