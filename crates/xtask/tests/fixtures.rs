//! Fixture-driven end-to-end tests for the lint pass.
//!
//! Each directory under `tests/fixtures/<name>/` is a miniature workspace
//! plus an `expected.txt` snapshot of the findings the pass must report,
//! one `lint file:line:col` line each, in the pass's sorted order. To
//! regenerate a snapshot after an intentional behavior change, run the
//! binary with `--root crates/xtask/tests/fixtures/<name>` and copy the
//! `error[...]` lines.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn fixture_root(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn assert_matches_snapshot(name: &str) -> vesta_xtask::LintReport {
    let root = fixture_root(name);
    let report = vesta_xtask::lint_workspace(&root).expect("fixture workspace lints");
    let mut got = String::new();
    for f in &report.findings {
        writeln!(got, "{} {}:{}:{}", f.lint, f.file, f.line, f.col).unwrap();
    }
    let expected = std::fs::read_to_string(root.join("expected.txt")).expect("expected.txt");
    assert_eq!(
        got.trim(),
        expected.trim(),
        "fixture `{name}` diverged from its snapshot;\nfull report:\n{}",
        report.render_human()
    );
    report
}

#[test]
fn nondeterministic_map_fixture() {
    assert_matches_snapshot("nondeterministic-map");
}

#[test]
fn unseeded_rng_fixture() {
    assert_matches_snapshot("unseeded-rng");
}

#[test]
fn float_total_order_fixture() {
    assert_matches_snapshot("float-total-order");
}

#[test]
fn panic_in_lib_fixture_flags_lib_but_not_test_code() {
    let report = assert_matches_snapshot("panic-in-lib");
    // The fixture's #[cfg(test)] module unwraps and panics too; none of
    // those lines (14+) may appear in the findings.
    assert!(
        report.findings.iter().all(|f| f.line < 14),
        "test-region code was flagged: {}",
        report.render_human()
    );
}

#[test]
fn wallclock_in_core_fixture() {
    assert_matches_snapshot("wallclock-in-core");
}

/// Consuming the obs registry does not sanction raw wall-clock reads:
/// span durations must come from the injected `Clock`, so an obs
/// consumer timing things by hand is still a finding, while a justified
/// allow (mirroring `obs::Clock::Monotonic`'s own) suppresses exactly
/// one.
#[test]
fn obs_consumer_fixture_flags_raw_wallclock_reads() {
    let report = assert_matches_snapshot("obs-consumer");
    assert!(report
        .findings
        .iter()
        .all(|f| f.lint == "wallclock-in-core"));
    assert_eq!(report.allows_honored, 1);
}

#[test]
fn error_hygiene_fixture_reports_both_requirements() {
    let report = assert_matches_snapshot("error-hygiene");
    let messages: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(messages.iter().any(|m| m.contains("non_exhaustive")));
    assert!(messages.iter().any(|m| m.contains("is_transient")));
}

/// Discarded crate `Result`s are findings; bound lets, non-Result
/// calls, std calls, test code and the justified allow are not.
#[test]
fn swallowed_result_fixture() {
    let report = assert_matches_snapshot("swallowed-result");
    assert!(report.findings.iter().all(|f| f.lint == "swallowed-result"));
    assert_eq!(report.allows_honored, 1);
}

#[test]
fn allow_without_reason_is_rejected_and_suppresses_nothing() {
    let report = assert_matches_snapshot("allow-no-reason");
    assert_eq!(report.allows_honored, 0);
    assert!(report.findings.iter().any(|f| f.lint == "invalid-allow"));
    assert!(report.findings.iter().any(|f| f.lint == "panic-in-lib"));
}

#[test]
fn justified_allow_suppresses_exactly_its_finding() {
    let report = assert_matches_snapshot("clean-allow");
    assert!(report.is_clean(), "{}", report.render_human());
    assert_eq!(report.allows_honored, 1);
}

#[test]
fn json_rendering_round_trips_fixture_findings() {
    let root = fixture_root("panic-in-lib");
    let report = vesta_xtask::lint_workspace(&root).expect("fixture workspace lints");
    let json = report.render_json();
    assert!(json.contains("\"lint\": \"panic-in-lib\""));
    assert!(json.contains("\"clean\": false"));
    assert!(json.contains("\"files_scanned\": 1"));
}

/// The real workspace must stay lint-clean: this makes `cargo test`
/// (tier-1) enforce the invariant pass, not just the CI job.
#[test]
fn real_workspace_is_clean() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels under the workspace root");
    let report = vesta_xtask::lint_workspace(repo_root).expect("workspace lints");
    assert!(
        report.is_clean(),
        "the tree has lint findings:\n{}",
        report.render_human()
    );
}
