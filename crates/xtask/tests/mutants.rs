//! End-to-end exercise of the mutation-testing engine against the
//! planted fixture (`tests/fixtures/mutants-fixture`), with real `cargo
//! test` runs per mutant.
//!
//! The fixture plants one known fate per site — caught boundary and
//! arithmetic swaps, a `timeout` infinite loop, one genuinely equivalent
//! surviving mutant (`pick_larger`'s `>=` at equality) and two
//! directive-waived skips — and this test asserts the sweep reproduces
//! exactly that ledger, that `--check` refuses the survivor, and that a
//! reasoned `vesta-mutants: skip` flips the same tree to a passing gate.

use std::fs;
use std::path::{Path, PathBuf};

use vesta_xtask::mutants::{self, MutationTarget, SweepOptions};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/mutants-fixture")
}

fn fixture_target() -> MutationTarget {
    MutationTarget {
        file: "src/lib.rs".to_string(),
        package: "mutants-fixture".to_string(),
        test_args: vec!["test".to_string(), "--lib".to_string()],
    }
}

/// Recursive copy (the fixture is a handful of files).
fn copy_dir(from: &Path, to: &Path) {
    fs::create_dir_all(to).unwrap();
    for entry in fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        let dst = to.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_dir(&entry.path(), &dst);
        } else {
            fs::copy(entry.path(), &dst).unwrap();
        }
    }
}

#[test]
fn sweep_reproduces_the_planted_ledger_and_check_gates_on_it() {
    let opts = SweepOptions {
        // Small floor so the planted infinite loop resolves quickly; the
        // effective timeout is still 3× the measured baseline.
        timeout_floor_secs: 8,
        ..SweepOptions::default()
    };
    let ledger = mutants::run_sweep(&fixture_dir(), &[fixture_target()], &opts)
        .expect("sweep over the fixture");

    let got: Vec<(u32, &str, &str)> = ledger
        .results
        .iter()
        .map(|r| (r.mutant.line, r.mutant.op, r.status.label()))
        .collect();
    let expected = vec![
        // triangle: everything dies.
        (18, "fn-stub", "caught"),       // body -> { 0 }
        (19, "const-perturb", "caught"), // acc init 0 -> 1
        (20, "const-perturb", "caught"), // i init 1 -> 2
        (21, "cmp-swap", "caught"),      // i <= n -> i < n
        (22, "arith-swap", "caught"),    // acc + i -> acc - i (underflow)
        (23, "const-perturb", "caught"), // i += 1 -> i += 2
        // countdown: `n - 1 -> n + 1` never terminates.
        (29, "fn-stub", "caught"),
        (30, "const-perturb", "caught"),
        (31, "cmp-swap", "caught"), // n > 0 -> n >= 0 (underflow at zero)
        (32, "arith-swap", "timeout"),
        (33, "const-perturb", "caught"),
        // in_window: one swap per line, all caught at the boundaries.
        (41, "fn-stub", "caught"),
        (42, "cmp-swap", "caught"),
        (43, "cmp-swap", "caught"),
        (44, "logic-swap", "caught"),
        // pick_larger: `>=` -> `>` only differs on ties — equivalent.
        (48, "fn-stub", "caught"),
        (49, "cmp-swap", "survived"),
        // hint: both sites waived by directives.
        (59, "fn-stub", "skipped"),
        (61, "const-perturb", "skipped"),
    ];
    assert_eq!(got, expected, "ledger:\n{}", ledger.render_json());

    let s = ledger.summary;
    assert_eq!(
        (s.total, s.caught, s.timeout, s.survived, s.unviable, s.skipped),
        (19, 15, 1, 1, 0, 2)
    );
    assert!((s.score - 16.0 / 19.0).abs() < 1e-9, "score {}", s.score);
    assert!(!ledger.is_clean(), "a survivor must fail the gate");

    // The written ledger round-trips, and `--check` refuses the survivor
    // even though the raw score (84.2%) clears the threshold.
    let scratch =
        std::env::temp_dir().join(format!("vesta-mutants-fixture-{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    fs::create_dir_all(&scratch).unwrap();
    let ledger_path = scratch.join("MUTANTS.json");
    fs::write(&ledger_path, ledger.render_json()).unwrap();
    let err = mutants::check_ledger(&fixture_dir(), &ledger_path)
        .expect_err("check must fail while a mutant survives");
    assert!(err.contains("surviving mutant"), "{err}");
    assert!(err.contains("src/lib.rs:49"), "{err}");

    // A stale ledger (target edited after the sweep) must also fail, on
    // the fingerprint — before any site-set comparison.
    let patched_root = scratch.join("patched");
    copy_dir(&fixture_dir(), &patched_root);
    let lib = patched_root.join("src/lib.rs");
    let src = fs::read_to_string(&lib).unwrap();
    let patched = src.replace(
        "if a >= b {",
        "if a >= b { // vesta-mutants: skip(reason = \"ties are equal either way; >= vs > is behaviorally identical\")",
    );
    assert_ne!(src, patched, "the anchor line must exist");
    fs::write(&lib, &patched).unwrap();
    let err = mutants::check_ledger(&patched_root, &ledger_path)
        .expect_err("check must notice the edited target");
    assert!(err.contains("changed since the ledger"), "{err}");

    // Re-sweeping the patched tree waives the equivalent mutant with a
    // reason; zero survivors and 16/19 clears the 80% gate.
    let target = MutationTarget {
        file: "src/lib.rs".to_string(),
        ..fixture_target()
    };
    let ledger2 = mutants::run_sweep(&patched_root, &[target], &opts)
        .expect("sweep over the patched fixture");
    let s2 = ledger2.summary;
    assert_eq!(
        (s2.total, s2.caught, s2.timeout, s2.survived, s2.unviable, s2.skipped),
        (19, 15, 1, 0, 0, 3)
    );
    assert!(ledger2.is_clean());
    fs::write(&ledger_path, ledger2.render_json()).unwrap();
    let report = mutants::check_ledger(&patched_root, &ledger_path)
        .expect("check must pass with the survivor waived");
    assert!(report.contains("ok"), "{report}");

    let _ = fs::remove_dir_all(&scratch);
}

/// Discovery over the real mutation targets (no cargo runs). Skipped
/// quietly when the crates are absent (e.g. a partial checkout).
#[test]
fn discovery_over_the_real_targets_is_line_granular_and_stable() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    for target in mutants::default_targets() {
        let path = root.join(&target.file);
        let Ok(src) = fs::read_to_string(&path) else {
            eprintln!("skipping {}: not present in this checkout", target.file);
            continue;
        };
        let granular = mutants::discover_file(&target.file, &src, false)
            .expect("real targets must carry only well-formed directives");
        assert!(
            granular.len() >= 20,
            "{} yielded only {} mutants",
            target.file,
            granular.len()
        );
        // Line-granularity: at most one operator/constant mutant per line.
        let mut op_lines = std::collections::BTreeSet::new();
        for m in granular.iter().filter(|m| m.op != "fn-stub") {
            assert!(
                op_lines.insert(m.line),
                "{}:{} has two operator mutants",
                m.file,
                m.line
            );
        }
        // Exhaustive discovery is a superset, and both are deterministic.
        let exhaustive = mutants::discover_file(&target.file, &src, true).unwrap();
        assert!(exhaustive.len() >= granular.len());
        let again = mutants::discover_file(&target.file, &src, false).unwrap();
        assert_eq!(granular, again);
    }
}
