//! End-to-end tests for `vesta-xtask perf-check`: the committed baseline
//! must pass against itself, and a doctored regression report must fail,
//! both through the library API and the real CLI (exit codes 0/1/2).

use std::path::{Path, PathBuf};
use std::process::Command;

use vesta_obs::json::{parse, JsonValue};
use vesta_xtask::perf::perf_check_files;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels under the workspace root")
        .to_path_buf()
}

fn baseline_path() -> PathBuf {
    repo_root().join("results/BENCH_baseline.json")
}

fn gated(doc: &JsonValue, path: &[&str]) -> f64 {
    doc.get_path(path)
        .and_then(JsonValue::as_f64)
        .unwrap_or_else(|| panic!("baseline missing `{}`", path.join(".")))
}

/// A minimal report carrying only the gated series, with latency scaled
/// by `latency_factor` and throughput by `throughput_factor`.
fn doctored_report(baseline: &JsonValue, latency_factor: f64, throughput_factor: f64) -> String {
    let p99 = gated(baseline, &["series", "latency_ms", "p99"]) * latency_factor;
    let seq =
        gated(baseline, &["series", "requests_per_sec", "sequential_cold"]) * throughput_factor;
    let cold = gated(baseline, &["series", "requests_per_sec", "batch_cold"]) * throughput_factor;
    let warm = gated(baseline, &["series", "requests_per_sec", "batch_warm"]) * throughput_factor;
    format!(
        r#"{{"id": "BENCH_throughput", "series": {{
            "latency_ms": {{"p99": {p99}}},
            "requests_per_sec": {{
                "sequential_cold": {seq},
                "batch_cold": {cold},
                "batch_warm": {warm}
            }}
        }}}}"#
    )
}

fn temp_file(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vesta-perf-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write doctored report");
    path
}

#[test]
fn committed_baseline_passes_against_itself() {
    let baseline = baseline_path();
    let report = perf_check_files(&baseline, &baseline, 0.25).expect("baseline is readable");
    assert!(report.is_clean(), "{}", report.render_table());
    assert_eq!(report.rows.len(), 4, "four gated metrics");
}

#[test]
fn doctored_latency_regression_fails() {
    let baseline = baseline_path();
    let doc = parse(&std::fs::read_to_string(&baseline).expect("read baseline"))
        .expect("baseline parses");
    let slow = temp_file("slow.json", &doctored_report(&doc, 2.0, 1.0));
    let report = perf_check_files(&baseline, &slow, 0.25).expect("doctored report is readable");
    assert!(!report.is_clean(), "a 2x p99 rise must gate");
    assert!(report.render_table().contains("REGRESSED"));
}

#[test]
fn doctored_throughput_regression_fails() {
    let baseline = baseline_path();
    let doc = parse(&std::fs::read_to_string(&baseline).expect("read baseline"))
        .expect("baseline parses");
    let slow = temp_file("halved.json", &doctored_report(&doc, 1.0, 0.5));
    let report = perf_check_files(&baseline, &slow, 0.25).expect("doctored report is readable");
    assert!(!report.is_clean(), "halved throughput must gate");
}

#[test]
fn cli_exit_codes_track_the_verdict() {
    let xtask = env!("CARGO_BIN_EXE_vesta-xtask");
    let baseline = baseline_path();
    let doc = parse(&std::fs::read_to_string(&baseline).expect("read baseline"))
        .expect("baseline parses");
    let slow = temp_file("cli-slow.json", &doctored_report(&doc, 3.0, 1.0));

    let pass = Command::new(xtask)
        .args(["perf-check", "--tolerance", "0.25"])
        .args(["--baseline".as_ref(), baseline.as_os_str()])
        .args(["--current".as_ref(), baseline.as_os_str()])
        .output()
        .expect("xtask runs");
    assert_eq!(
        pass.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&pass.stdout),
        String::from_utf8_lossy(&pass.stderr)
    );

    let fail = Command::new(xtask)
        .args(["perf-check", "--tolerance", "0.25"])
        .args(["--baseline".as_ref(), baseline.as_os_str()])
        .args(["--current".as_ref(), slow.as_os_str()])
        .output()
        .expect("xtask runs");
    assert_eq!(fail.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&fail.stdout).contains("REGRESSED"));

    let missing = Command::new(xtask)
        .args(["perf-check", "--current", "/nonexistent/nope.json"])
        .args(["--baseline".as_ref(), baseline.as_os_str()])
        .output()
        .expect("xtask runs");
    assert_eq!(missing.status.code(), Some(2), "I/O errors are usage-level");
}
