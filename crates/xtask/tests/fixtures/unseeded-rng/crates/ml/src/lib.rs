//! Fixture: entropy-seeded randomness in a deterministic crate.

pub fn noise() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen::<f64>()
}

pub fn reseed() -> StdRng {
    StdRng::from_entropy()
}
