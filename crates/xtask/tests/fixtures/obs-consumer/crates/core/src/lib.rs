//! Fixture: an obs consumer timing a span by hand instead of through the
//! injected [`vesta_obs::Clock`]. The raw reads must be flagged — the
//! registry's clock is the only sanctioned time source for span
//! durations, otherwise NoopClock replay stops being bit-identical.
use std::time::Instant;

pub fn measure(registry: &vesta_obs::MetricsRegistry) -> f64 {
    let _span = registry.span("predict");
    let started = Instant::now();
    started.elapsed().as_secs_f64()
}

pub fn epoch_stamp(registry: &vesta_obs::MetricsRegistry) -> u128 {
    registry.counter("stamps").inc();
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}

pub fn sanctioned(registry: &vesta_obs::MetricsRegistry) -> u64 {
    // vesta-lint: allow(wallclock-in-core, reason = "the fixture's one sanctioned host-clock read, mirroring obs::Clock::Monotonic")
    let t = Instant::now();
    registry.counter("reads").inc();
    t.elapsed().as_millis() as u64
}
