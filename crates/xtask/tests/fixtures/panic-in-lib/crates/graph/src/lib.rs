//! Fixture: panics in library code; the same constructs inside tests are fine.

pub fn head(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}

pub fn guard(flag: bool) {
    if !flag {
        panic!("flag must be set");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_unwrap_and_panic() {
        assert_eq!(head(&[1]), 1);
        let x: Option<u32> = Some(3);
        assert_eq!(x.unwrap(), 3);
        if false {
            panic!("unreached");
        }
    }
}
