//! Fixture: hash-ordered iteration reaching serialized / snapshot state.
use std::collections::HashMap;

#[derive(Serialize)]
pub struct Snapshot {
    pub table: HashMap<String, u64>,
}

pub fn dump(rows: &HashMap<String, u64>) -> Vec<String> {
    let mut out = Vec::new();
    for key in rows.keys() {
        out.push(key.clone());
    }
    out
}
