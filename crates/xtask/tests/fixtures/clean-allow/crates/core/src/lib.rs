//! Fixture: a justified allow suppresses exactly its finding.

pub fn head(xs: &[u64]) -> u64 {
    // vesta-lint: allow(panic-in-lib, reason = "caller validates non-empty input")
    *xs.first().unwrap()
}
