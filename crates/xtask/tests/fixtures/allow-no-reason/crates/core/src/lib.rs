//! Fixture: an allow without a justification is itself a violation and
//! suppresses nothing.

pub fn head(xs: &[u64]) -> u64 {
    // vesta-lint: allow(panic-in-lib)
    *xs.first().unwrap()
}
