//! Planted mutation-testing fixture for `vesta-xtask mutants`.
//!
//! Every function here has a *known* fate under the engine's operators
//! and this crate's `--lib` tests; `crates/xtask/tests/mutants.rs`
//! asserts the sweep reproduces exactly that ledger:
//!
//! * [`triangle`]   — every mutant caught (boundary, arithmetic,
//!   constants, stub);
//! * [`countdown`]  — `n - 1` → `n + 1` never terminates and must be
//!   classified `timeout`; everything else caught;
//! * [`in_window`]  — one comparison, one boundary and one logic swap on
//!   separate lines, all caught by the half-open-interval tests;
//! * [`pick_larger`]— `>=` → `>` only differs on ties, where both sides
//!   are equal: a genuinely equivalent mutant that *survives*;
//! * [`hint`]       — sites waived by `vesta-mutants: skip` directives.

/// Sum of `1..=n`.
pub fn triangle(n: u64) -> u64 {
    let mut acc = 0;
    let mut i = 1;
    while i <= n {
        acc = acc + i;
        i += 1;
    }
    acc
}

/// Number of decrements to reach zero.
pub fn countdown(mut n: u64) -> u64 {
    let mut steps = 0;
    while n > 0 {
        n = n - 1;
        steps += 1;
    }
    steps
}

/// True when `x` lies in the half-open window `[lo, hi)`. Written as
/// three statements so the two comparison swaps and the logic swap land
/// on separate lines (one mutant per line under line-granular discovery).
pub fn in_window(x: i64, lo: i64, hi: i64) -> bool {
    let lower_ok = lo <= x;
    let upper_ok = x < hi;
    lower_ok && upper_ok
}

/// The larger of two values; ties return the first argument.
pub fn pick_larger(a: i64, b: i64) -> i64 {
    if a >= b {
        a
    } else {
        b
    }
}

/// Buffer capacity hint. Both the stub and the constant are waived: any
/// positive value is behaviorally valid, so no test can kill them.
// vesta-mutants: skip(reason = "capacity hint; any positive value is valid")
pub fn hint() -> usize {
    // vesta-mutants: skip(reason = "capacity hint; any positive value is valid")
    32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_sums_the_first_n_integers() {
        assert_eq!(triangle(0), 0);
        assert_eq!(triangle(1), 1);
        assert_eq!(triangle(3), 6);
        assert_eq!(triangle(10), 55);
    }

    #[test]
    fn countdown_counts_every_decrement() {
        assert_eq!(countdown(0), 0);
        assert_eq!(countdown(4), 4);
    }

    #[test]
    fn in_window_is_half_open() {
        assert!(in_window(2, 2, 5), "x == lo is inside");
        assert!(in_window(4, 2, 5));
        assert!(!in_window(5, 2, 5), "x == hi is outside");
        assert!(!in_window(1, 2, 5));
    }

    #[test]
    fn pick_larger_prefers_the_larger_value() {
        assert_eq!(pick_larger(3, 9), 9);
        assert_eq!(pick_larger(9, 3), 9);
        assert_eq!(pick_larger(5, 5), 5);
    }

    #[test]
    fn hint_is_positive() {
        assert!(hint() > 0);
    }
}
