//! Fixture: a public error enum missing both hygiene requirements.

#[derive(Debug)]
pub enum StoreError {
    Missing(String),
    Corrupt { offset: usize },
}
