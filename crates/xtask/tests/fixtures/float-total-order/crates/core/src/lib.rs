//! Fixture: float ranking through NaN-dropping comparators.

pub fn rank(xs: &mut Vec<(usize, f64)>) {
    xs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn peak(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}
