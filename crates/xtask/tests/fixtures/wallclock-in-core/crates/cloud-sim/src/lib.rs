//! Fixture: wall-clock reads inside a deterministic crate.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn epoch_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0)
}
