//! Fixture: `let _ =` discards of crate `Result` calls are findings in
//! library code; bound lets, non-Result calls, std calls, test code and
//! justified allows are not.

pub fn append(x: u8) -> Result<(), String> {
    Err(format!("{x}"))
}

pub fn cheap(x: u8) -> u8 {
    x
}

pub fn swallowed_free_call() {
    let _ = append(1);
}

pub struct Journal;

impl Journal {
    pub fn flush_frames(&self) -> std::io::Result<()> {
        Ok(())
    }
}

pub fn swallowed_method_call(j: &Journal) {
    let _ = j.flush_frames();
}

pub fn clean_shapes(j: &Journal, out: &mut String) {
    // Bound to a name: visible to the reader, not a silent swallow.
    let _kept = append(2);
    // Non-Result crate call.
    let _ = cheap(3);
    // Std call outside the per-crate Result set.
    let _ = std::fs::remove_file("nope");
    // Infallible write!-to-String macro.
    let _ = write_to(out);
    // vesta-lint: allow(swallowed-result, reason = "best-effort teardown flush; the connection is already closing")
    let _ = j.flush_frames();
}

fn write_to(out: &mut String) -> usize {
    out.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn swallows_in_tests_are_fine() {
        let _ = super::append(9);
    }
}
