//! CLI for the Vesta invariant lint pass and benchmark gates.
//!
//! ```text
//! cargo run -p vesta-xtask -- lint [--format json] [--root <path>]
//! cargo run -p vesta-xtask -- perf-check [--suite throughput|serving]
//!                                        [--baseline <json>] [--current <json>]
//!                                        [--tolerance <frac>]
//! cargo run -p vesta-xtask -- telemetry-check [--ledger chaos|drift|both|serving-chaos]
//!                                             [--telemetry <json>] [--chaos <json>]
//!                                             [--drift <json>] [--serving-chaos <json>]
//! ```
//!
//! `perf-check` gates p99 latency and the throughput series of a fresh
//! `results/BENCH_throughput.json` against the committed
//! `results/BENCH_baseline.json` (default tolerance 25%);
//! `--suite serving` instead gates `results/BENCH_serving.json`
//! (sustained open-loop req/s, p99-under-load) against
//! `results/BENCH_serving_baseline.json`.
//! `telemetry-check` asserts `results/TELEMETRY.json` counters agree with
//! the `results/BENCH_chaos.json` per-scenario ledger (`--ledger chaos`,
//! the default), with the `results/BENCH_drift.json` drift summary
//! (`--ledger drift`), or both. The ledger must match the run that
//! produced the telemetry snapshot: `--ledger drift` pairs with
//! `experiments --quick --drift --telemetry`. `--ledger serving-chaos`
//! gates `results/BENCH_serving_chaos.json` on its own recorded
//! invariants (zero lost/duplicated absorptions, both bit-identity
//! proofs, p99 under the report's ceiling, chaos actually fired) — no
//! telemetry snapshot needed.
//!
//! Exit codes: 0 clean, 1 findings/regression/mismatch, 2 usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match cmd.as_str() {
        "lint" => cmd_lint(&args[1..]),
        "mutants" => cmd_mutants(&args[1..]),
        "perf-check" => cmd_perf_check(&args[1..]),
        "telemetry-check" => cmd_telemetry_check(&args[1..]),
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage: vesta-xtask <command> [flags]

commands:
  lint             run the invariant lint pass
                   [--format json|human] [--root <path>]
  mutants          mutation-test ml::cmf and core::supervisor
                   [--root <path>] [--list] [--check] [--exhaustive]
                   [--threshold <frac>] [--file <rel>]...
                   [--out <json>] [--ledger <json>]
                   default: run the sweep and write results/MUTANTS.json;
                   --list prints discovered mutants without running;
                   --check validates the committed ledger offline (no cargo)
  perf-check       gate a fresh benchmark report against its baseline
                   [--suite throughput|serving] [--baseline <json>]
                   [--current <json>] [--tolerance <frac>]
  telemetry-check  cross-check TELEMETRY.json against an experiment ledger
                   [--ledger chaos|drift|both|serving-chaos] [--telemetry <json>]
                   [--chaos <json>] [--drift <json>] [--serving-chaos <json>]";

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut format_json = false;
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => format_json = true,
                    Some("human") => format_json = false,
                    other => {
                        eprintln!("--format takes `json` or `human`, got {other:?}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--root" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--root takes a path");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(p));
                i += 2;
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    match vesta_xtask::lint_workspace(&root) {
        Ok(report) => {
            if format_json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("vesta-xtask: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_mutants(args: &[String]) -> ExitCode {
    use vesta_xtask::mutants;

    let mut root: Option<PathBuf> = None;
    let mut list = false;
    let mut check = false;
    let mut opts = mutants::SweepOptions::default();
    let mut out: Option<PathBuf> = None;
    let mut ledger: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                list = true;
                i += 1;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            "--exhaustive" => {
                opts.exhaustive = true;
                i += 1;
            }
            flag @ ("--root" | "--threshold" | "--file" | "--out" | "--ledger") => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("{flag} takes a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                match flag {
                    "--root" => root = Some(PathBuf::from(value)),
                    "--threshold" => match value.parse::<f64>() {
                        Ok(t) if (0.0..=1.0).contains(&t) => opts.threshold = t,
                        _ => {
                            eprintln!("--threshold takes a fraction in [0, 1], got `{value}`");
                            return ExitCode::from(2);
                        }
                    },
                    "--file" => opts.only_files.push(value.clone()),
                    "--out" => out = Some(PathBuf::from(value)),
                    "--ledger" => ledger = Some(PathBuf::from(value)),
                    _ => unreachable!("matched above"),
                }
                i += 2;
            }
            other => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let targets = mutants::default_targets();

    if check {
        let ledger = ledger.unwrap_or_else(|| root.join("results/MUTANTS.json"));
        return match mutants::check_ledger(&root, &ledger) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("vesta-xtask mutants --check: {e}");
                ExitCode::from(1)
            }
        };
    }
    if list {
        return match mutants::render_list(&root, &targets, opts.exhaustive) {
            Ok(table) => {
                print!("{table}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("vesta-xtask mutants --list: {e}");
                ExitCode::from(2)
            }
        };
    }
    match mutants::run_sweep(&root, &targets, &opts) {
        Ok(result) => {
            let out = out.unwrap_or_else(|| root.join("results/MUTANTS.json"));
            if let Err(e) = std::fs::write(&out, result.render_json()) {
                eprintln!("vesta-xtask mutants: write {}: {e}", out.display());
                return ExitCode::from(2);
            }
            print!("{}", result.render_summary());
            println!("ledger written to {}", out.display());
            if result.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("vesta-xtask mutants: {e}");
            ExitCode::from(2)
        }
    }
}

/// Parse `--flag value` pairs from `args` against the allowed flag list.
fn flag_values(args: &[String], allowed: &[&str]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if !allowed.contains(&flag) {
            return Err(format!("unknown flag `{flag}`"));
        }
        let Some(value) = args.get(i + 1) else {
            return Err(format!("{flag} takes a value"));
        };
        out.push((flag.to_string(), value.clone()));
        i += 2;
    }
    Ok(out)
}

fn cmd_perf_check(args: &[String]) -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut current: Option<PathBuf> = None;
    let mut tolerance = 0.25f64;
    let mut suite = "throughput".to_string();
    let flags = match flag_values(args, &["--baseline", "--current", "--tolerance", "--suite"]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    for (flag, value) in flags {
        match flag.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(value)),
            "--current" => current = Some(PathBuf::from(value)),
            "--tolerance" => match value.parse::<f64>() {
                Ok(t) => tolerance = t,
                Err(_) => {
                    eprintln!("--tolerance takes a fraction, got `{value}`");
                    return ExitCode::from(2);
                }
            },
            "--suite" => suite = value,
            _ => unreachable!("flag_values filtered"),
        }
    }
    type CheckFn = fn(
        &std::path::Path,
        &std::path::Path,
        f64,
    ) -> Result<vesta_xtask::perf::PerfReport, String>;
    let (check, default_baseline, default_current): (CheckFn, &str, &str) = match suite.as_str() {
        "throughput" => (
            vesta_xtask::perf::perf_check_files,
            "results/BENCH_baseline.json",
            "results/BENCH_throughput.json",
        ),
        "serving" => (
            vesta_xtask::perf::serving_check_files,
            "results/BENCH_serving_baseline.json",
            "results/BENCH_serving.json",
        ),
        other => {
            eprintln!("--suite takes `throughput` or `serving`, got `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let baseline = baseline.unwrap_or_else(|| workspace_root().join(default_baseline));
    let current = current.unwrap_or_else(|| workspace_root().join(default_current));
    match check(&baseline, &current, tolerance) {
        Ok(report) => {
            print!("{}", report.render_table());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("vesta-xtask perf-check: {e}");
            ExitCode::from(2)
        }
    }
}

fn cmd_telemetry_check(args: &[String]) -> ExitCode {
    let mut telemetry = workspace_root().join("results/TELEMETRY.json");
    let mut chaos = workspace_root().join("results/BENCH_chaos.json");
    let mut drift = workspace_root().join("results/BENCH_drift.json");
    let mut serving_chaos = workspace_root().join("results/BENCH_serving_chaos.json");
    let mut ledger = "chaos".to_string();
    let flags = match flag_values(
        args,
        &["--telemetry", "--chaos", "--drift", "--serving-chaos", "--ledger"],
    ) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    for (flag, value) in flags {
        match flag.as_str() {
            "--telemetry" => telemetry = PathBuf::from(value),
            "--chaos" => chaos = PathBuf::from(value),
            "--drift" => drift = PathBuf::from(value),
            "--serving-chaos" => serving_chaos = PathBuf::from(value),
            "--ledger" => ledger = value,
            _ => unreachable!("flag_values filtered"),
        }
    }
    // The serving-chaos ledger gates on its own recorded invariants and
    // needs no telemetry snapshot, so it short-circuits here.
    if ledger == "serving-chaos" {
        return match vesta_xtask::perf::serving_chaos_check_files(&serving_chaos) {
            Ok(report) => {
                print!("{}", report.render());
                if report.is_clean() {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                }
            }
            Err(e) => {
                eprintln!("vesta-xtask telemetry-check: {e}");
                ExitCode::from(2)
            }
        };
    }
    let (check_chaos, check_drift) = match ledger.as_str() {
        "chaos" => (true, false),
        "drift" => (false, true),
        "both" => (true, true),
        other => {
            eprintln!(
                "--ledger takes `chaos`, `drift`, `both` or `serving-chaos`, got `{other}`\n{USAGE}"
            );
            return ExitCode::from(2);
        }
    };
    let mut checks = Vec::new();
    if check_chaos {
        match vesta_xtask::perf::telemetry_check_files(&telemetry, &chaos) {
            Ok(report) => checks.extend(report.checks),
            Err(e) => {
                eprintln!("vesta-xtask telemetry-check: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if check_drift {
        match vesta_xtask::perf::drift_check_files(&telemetry, &drift) {
            Ok(report) => checks.extend(report.checks),
            Err(e) => {
                eprintln!("vesta-xtask telemetry-check: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let report = vesta_xtask::perf::TelemetryCheckReport { checks };
    print!("{}", report.render());
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` under cargo, else cwd.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(|c| c.parent())
                .map(PathBuf::from)
                .unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}
