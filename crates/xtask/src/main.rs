//! CLI for the Vesta invariant lint pass.
//!
//! ```text
//! cargo run -p vesta-xtask -- lint [--format json] [--root <path>]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: vesta-xtask lint [--format json] [--root <path>]");
        return ExitCode::from(2);
    };
    if cmd != "lint" {
        eprintln!("unknown command `{cmd}`; supported: lint");
        return ExitCode::from(2);
    }
    let mut format_json = false;
    let mut root: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--format" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("json") => format_json = true,
                    Some("human") => format_json = false,
                    other => {
                        eprintln!("--format takes `json` or `human`, got {other:?}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--root" => {
                let Some(p) = args.get(i + 1) else {
                    eprintln!("--root takes a path");
                    return ExitCode::from(2);
                };
                root = Some(PathBuf::from(p));
                i += 2;
            }
            other => {
                eprintln!("unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    match vesta_xtask::lint_workspace(&root) {
        Ok(report) => {
            if format_json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_human());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("vesta-xtask: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: `$CARGO_MANIFEST_DIR/../..` under cargo, else cwd.
fn workspace_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let p = PathBuf::from(dir);
            p.parent()
                .and_then(|c| c.parent())
                .map(PathBuf::from)
                .unwrap_or(p)
        }
        None => PathBuf::from("."),
    }
}
