//! `vesta-xtask` — the repo-owned static-analysis pass enforcing Vesta's
//! determinism and panic-safety invariants.
//!
//! Run as `cargo run -p vesta-xtask -- lint` (CI job `lint-invariants`).
//! The pass lexes every workspace source file (no `syn`: the xtask must
//! build offline with zero dependencies, and every check here is a scoped
//! token-pattern, not a type-level property), runs the lint catalogue of
//! [`lints`], honors inline `// vesta-lint: allow(<lint>, reason = "…")`
//! escape hatches — a justification string is *required* — and reports
//! span-accurate `file:line:col` diagnostics, human or `--format json`.
//!
//! See DESIGN.md "Invariant catalogue" for what each lint protects.

pub mod lexer;
pub mod lints;
pub mod mutants;
pub mod perf;
pub mod workspace;

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::Path;

pub use lints::{Finding, LINT_NAMES};

/// A parsed `vesta-lint: allow(<lint>, reason = "…")` directive.
#[derive(Debug, Clone)]
struct Allow {
    lint: String,
    /// 1-based line the directive comment starts on. The allow covers its
    /// own line (trailing comment) and the next line (own-line comment).
    line: u32,
}

/// Result of one lint run.
#[derive(Debug)]
pub struct LintReport {
    /// Surviving findings, sorted by (file, line, col, lint).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files_scanned: usize,
    /// Valid allow directives that suppressed at least one finding.
    pub allows_honored: usize,
}

impl LintReport {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Render human diagnostics, one finding per paragraph.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "error[{}]: {}:{}:{}\n  {}\n",
                f.lint, f.file, f.line, f.col, f.message
            ));
        }
        out.push_str(&format!(
            "vesta-lint: {} finding(s) across {} file(s) ({} allow(s) honored)\n",
            self.findings.len(),
            self.files_scanned,
            self.allows_honored
        ));
        out
    }

    /// Render the machine-readable `--format json` payload.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \
                 \"message\": \"{}\"}}",
                json_escape(f.lint),
                json_escape(&f.file),
                f.line,
                f.col,
                json_escape(&f.message)
            ));
        }
        if !self.findings.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"allows_honored\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.allows_honored,
            self.is_clean()
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse the directives of one file. Malformed or reason-less directives
/// become `invalid-allow` findings — an allow without a justification is
/// itself a lint violation, never a suppression.
fn parse_directives(
    file: &workspace::SourceFile,
    comments: &[lexer::LintComment],
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("vesta-lint:") else {
            // A comment mentioning vesta-lint without the directive shape
            // (prose, docs) is not a directive.
            continue;
        };
        let rest = rest.trim();
        let invalid = |msg: String| Finding {
            file: file.rel_path.clone(),
            line: c.line,
            col: 1,
            lint: "invalid-allow",
            message: msg,
        };
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.strip_suffix(')'))
        else {
            findings.push(invalid(format!(
                "malformed directive `{rest}`; expected \
                 `vesta-lint: allow(<lint>, reason = \"…\")`"
            )));
            continue;
        };
        let (lint_name, reason_part) = match args.split_once(',') {
            Some((l, r)) => (l.trim(), Some(r.trim())),
            None => (args.trim(), None),
        };
        if !lints::is_known_lint(lint_name) {
            findings.push(invalid(format!(
                "unknown lint `{lint_name}` in allow; known lints: {}",
                LINT_NAMES.join(", ")
            )));
            continue;
        }
        let reason = reason_part
            .and_then(|r| r.strip_prefix("reason"))
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.strip_suffix('"'))
            .map(str::trim)
            .unwrap_or_default();
        if reason.is_empty() {
            findings.push(invalid(format!(
                "allow({lint_name}) carries no justification; a non-empty \
                 `reason = \"…\"` is required"
            )));
            continue;
        }
        allows.push(Allow {
            lint: lint_name.to_string(),
            line: c.line,
        });
    }
    (allows, findings)
}

/// Lint the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = workspace::discover(root)?;

    // Pass 1: per-crate context — hash-typed identifiers and the impl
    // targets that define `is_transient`.
    let mut lexed = Vec::with_capacity(files.len());
    let mut hash_names: BTreeMap<String, lints::HashNames> = BTreeMap::new();
    let mut transient_impls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut result_fns: BTreeMap<String, lints::ResultFns> = BTreeMap::new();
    for (file, abs) in &files {
        let src = fs::read_to_string(abs)?;
        let (tokens, comments) = lexer::lex(&src);
        hash_names
            .entry(file.krate.clone())
            .or_default()
            .collect(&tokens);
        lints::collect_transient_impls(
            &tokens,
            transient_impls.entry(file.krate.clone()).or_default(),
        );
        result_fns
            .entry(file.krate.clone())
            .or_default()
            .collect(&tokens);
        lexed.push((file, tokens, comments));
    }

    // Pass 2: run the catalogue and resolve allows.
    let empty_names = lints::HashNames::default();
    let empty_impls = BTreeSet::new();
    let empty_result_fns = lints::ResultFns::default();
    let mut findings = Vec::new();
    let mut allows_honored = 0usize;
    for (file, tokens, comments) in &lexed {
        let regions = lints::test_regions(tokens);
        let ctx = lints::FileCtx {
            file,
            tokens,
            test_regions: &regions,
            hash_names: hash_names.get(&file.krate).unwrap_or(&empty_names),
            transient_impls: transient_impls.get(&file.krate).unwrap_or(&empty_impls),
            result_fns: result_fns.get(&file.krate).unwrap_or(&empty_result_fns),
        };
        let raw = lints::run_file(&ctx);
        let (allows, mut invalid) = parse_directives(file, comments);
        let mut used = vec![false; allows.len()];
        for f in raw {
            let suppressed = allows.iter().enumerate().any(|(i, a)| {
                let covers = a.lint == f.lint && (f.line == a.line || f.line == a.line + 1);
                if covers {
                    used[i] = true;
                }
                covers
            });
            if !suppressed {
                findings.push(f);
            }
        }
        allows_honored += used.iter().filter(|u| **u).count();
        findings.append(&mut invalid);
    }

    findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.lint).cmp(&(&b.file, b.line, b.col, b.lint)));
    Ok(LintReport {
        findings,
        files_scanned: files.len(),
        allows_honored,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{FileRole, SourceFile};

    fn file() -> SourceFile {
        SourceFile {
            rel_path: "crates/core/src/lib.rs".into(),
            krate: "core".into(),
            role: FileRole::Lib,
        }
    }

    fn directives(src: &str) -> (Vec<Allow>, Vec<Finding>) {
        let (_, comments) = lexer::lex(src);
        parse_directives(&file(), &comments)
    }

    #[test]
    fn allow_with_reason_parses() {
        let (allows, bad) =
            directives("// vesta-lint: allow(panic-in-lib, reason = \"len checked above\")\n");
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].lint, "panic-in-lib");
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let (allows, bad) = directives("// vesta-lint: allow(panic-in-lib)\n");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].lint, "invalid-allow");
        assert!(bad[0].message.contains("justification"));
    }

    #[test]
    fn allow_with_empty_reason_is_rejected() {
        let (allows, bad) = directives("// vesta-lint: allow(unseeded-rng, reason = \"\")\n");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn unknown_lint_is_rejected() {
        let (allows, bad) = directives("// vesta-lint: allow(no-such-lint, reason = \"x\")\n");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(bad[0].message.contains("unknown lint"));
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_renders_both_formats() {
        let report = LintReport {
            findings: vec![Finding {
                file: "crates/core/src/x.rs".into(),
                line: 3,
                col: 7,
                lint: "panic-in-lib",
                message: "boom".into(),
            }],
            files_scanned: 1,
            allows_honored: 0,
        };
        let human = report.render_human();
        assert!(human.contains("error[panic-in-lib]: crates/core/src/x.rs:3:7"));
        let json = report.render_json();
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"clean\": false"));
    }
}
