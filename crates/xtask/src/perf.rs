//! Perf-regression gate and telemetry cross-check over benchmark JSON.
//!
//! `perf-check` compares a fresh `results/BENCH_throughput.json` against
//! the committed `results/BENCH_baseline.json`: the p99 request latency
//! may not rise, and the three throughput series may not fall, by more
//! than the configured tolerance (CI gates at 25%). The serving suite
//! (`--suite serving`) applies the same discipline to
//! `results/BENCH_serving.json` vs `results/BENCH_serving_baseline.json`:
//! sustained open-loop req/s may not fall, p99-under-load may not rise. `telemetry-check`
//! asserts that the counters in `results/TELEMETRY.json` are consistent
//! with the per-scenario ledger in `results/BENCH_chaos.json` — the two
//! files are produced by independent code paths (shared metrics registry
//! vs the supervisor's own outcome stats), so agreement is a real
//! end-to-end invariant, not a tautology.
//!
//! Both readers go through [`vesta_obs::json`], keeping the xtask free of
//! external dependencies.

use std::fs;
use std::path::Path;

use vesta_obs::json::{parse, JsonValue};
use vesta_obs::TelemetrySnapshot;

/// Whether a metric counts as regressed when it moves up or down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-style: a drop beyond tolerance is a regression.
    HigherIsBetter,
    /// Latency-style: a rise beyond tolerance is a regression.
    LowerIsBetter,
}

/// One gated metric's before/after comparison.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Dotted metric name as it appears in the report series.
    pub name: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub current: f64,
    /// Signed change in percent (`+` means the value went up).
    pub delta_pct: f64,
    /// Which direction is good for this metric.
    pub direction: Direction,
    /// True when the move exceeds tolerance in the bad direction.
    pub regressed: bool,
}

/// Result of one `perf-check` run.
#[derive(Debug)]
pub struct PerfReport {
    /// Per-metric comparisons, in gate order.
    pub rows: Vec<MetricDelta>,
    /// Fractional tolerance the gate ran with (0.25 = 25%).
    pub tolerance: f64,
}

impl PerfReport {
    /// True when no gated metric regressed.
    pub fn is_clean(&self) -> bool {
        self.rows.iter().all(|r| !r.regressed)
    }

    /// Aligned human-readable delta table with a pass/fail verdict line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<32} {:>14} {:>14} {:>9}  {}\n",
            "metric", "baseline", "current", "delta", "verdict"
        ));
        for r in &self.rows {
            let verdict = if r.regressed { "REGRESSED" } else { "ok" };
            out.push_str(&format!(
                "{:<32} {:>14.3} {:>14.3} {:>+8.1}%  {}\n",
                r.name, r.baseline, r.current, r.delta_pct, verdict
            ));
        }
        let failed = self.rows.iter().filter(|r| r.regressed).count();
        out.push_str(&format!(
            "perf-check: {} of {} gated metric(s) regressed (tolerance {:.0}%)\n",
            failed,
            self.rows.len(),
            self.tolerance * 100.0
        ));
        out
    }
}

/// The gated metrics: `(series path, direction)`. p99 latency may not
/// rise, throughput may not fall.
const GATED: &[(&[&str], Direction)] = &[
    (&["series", "latency_ms", "p99"], Direction::LowerIsBetter),
    (
        &["series", "requests_per_sec", "sequential_cold"],
        Direction::HigherIsBetter,
    ),
    (
        &["series", "requests_per_sec", "batch_cold"],
        Direction::HigherIsBetter,
    ),
    (
        &["series", "requests_per_sec", "batch_warm"],
        Direction::HigherIsBetter,
    ),
];

/// The serving gates over `BENCH_serving.json`: the open-loop sustained
/// rate may not fall and the coordinated-omission-safe p99 under load may
/// not rise beyond tolerance.
const SERVING_GATED: &[(&[&str], Direction)] = &[
    (&["series", "latency_ms", "p99"], Direction::LowerIsBetter),
    (&["series", "sustained_rps"], Direction::HigherIsBetter),
];

fn gated_value(doc: &JsonValue, path: &[&str], which: &str) -> Result<f64, String> {
    let v = doc
        .get_path(path)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{which} report is missing numeric `{}`", path.join(".")))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!(
            "{which} report has unusable `{}` = {v}",
            path.join(".")
        ));
    }
    Ok(v)
}

/// Compare two parsed `BENCH_throughput`-shaped reports under `tolerance`.
pub fn perf_check(
    baseline: &JsonValue,
    current: &JsonValue,
    tolerance: f64,
) -> Result<PerfReport, String> {
    check_gates(baseline, current, tolerance, GATED)
}

/// Compare two parsed `BENCH_serving`-shaped reports under `tolerance`.
pub fn serving_check(
    baseline: &JsonValue,
    current: &JsonValue,
    tolerance: f64,
) -> Result<PerfReport, String> {
    check_gates(baseline, current, tolerance, SERVING_GATED)
}

fn check_gates(
    baseline: &JsonValue,
    current: &JsonValue,
    tolerance: f64,
    gates: &[(&[&str], Direction)],
) -> Result<PerfReport, String> {
    if !(0.0..10.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} out of range [0, 10)"));
    }
    let mut rows = Vec::with_capacity(gates.len());
    for (path, direction) in gates {
        let b = gated_value(baseline, path, "baseline")?;
        let c = gated_value(current, path, "current")?;
        let delta_pct = if b > 0.0 { 100.0 * (c - b) / b } else { 0.0 };
        let regressed = match direction {
            // A zero baseline gates nothing: any measurement passes.
            Direction::LowerIsBetter => c > b * (1.0 + tolerance),
            Direction::HigherIsBetter => c < b * (1.0 - tolerance),
        };
        rows.push(MetricDelta {
            name: path[1..].join("."),
            baseline: b,
            current: c,
            delta_pct,
            direction: *direction,
            regressed,
        });
    }
    Ok(PerfReport { rows, tolerance })
}

/// File-reading front end for [`perf_check`].
pub fn perf_check_files(
    baseline: &Path,
    current: &Path,
    tolerance: f64,
) -> Result<PerfReport, String> {
    perf_check(&read_json(baseline)?, &read_json(current)?, tolerance)
}

/// File-reading front end for [`serving_check`].
pub fn serving_check_files(
    baseline: &Path,
    current: &Path,
    tolerance: f64,
) -> Result<PerfReport, String> {
    serving_check(&read_json(baseline)?, &read_json(current)?, tolerance)
}

fn read_json(p: &Path) -> Result<JsonValue, String> {
    let text = fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", p.display()))
}

/// One telemetry/ledger consistency assertion.
#[derive(Debug, Clone)]
pub struct CrossCheck {
    /// What is being compared.
    pub name: String,
    /// Value from the shared metrics registry (`TELEMETRY.json`).
    pub telemetry: u64,
    /// Value summed from the chaos report's per-scenario ledger.
    pub ledger: u64,
}

impl CrossCheck {
    /// True when both sides agree.
    pub fn consistent(&self) -> bool {
        self.telemetry == self.ledger
    }
}

/// Result of one `telemetry-check` run.
#[derive(Debug)]
pub struct TelemetryCheckReport {
    /// The individual assertions.
    pub checks: Vec<CrossCheck>,
}

impl TelemetryCheckReport {
    /// True when every assertion held.
    pub fn is_clean(&self) -> bool {
        self.checks.iter().all(CrossCheck::consistent)
    }

    /// Human-readable summary, one line per assertion.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&format!(
                "{:<28} telemetry {:>8}  ledger {:>8}  {}\n",
                c.name,
                c.telemetry,
                c.ledger,
                if c.consistent() { "ok" } else { "MISMATCH" }
            ));
        }
        let failed = self.checks.iter().filter(|c| !c.consistent()).count();
        out.push_str(&format!(
            "telemetry-check: {} of {} assertion(s) failed\n",
            failed,
            self.checks.len()
        ));
        out
    }
}

fn scenario_sum(chaos: &JsonValue, field: &str) -> Result<u64, String> {
    let scenarios = chaos
        .get_path(&["series", "scenarios"])
        .and_then(JsonValue::as_array)
        .ok_or("chaos report is missing `series.scenarios`")?;
    let mut total = 0u64;
    for (i, sc) in scenarios.iter().enumerate() {
        let v = sc
            .get(field)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("chaos report scenario #{i} is missing numeric `{field}`"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!(
                "chaos report scenario #{i} has unusable `{field}` = {v}"
            ));
        }
        total += v as u64;
    }
    Ok(total)
}

/// Assert the shared-registry counters agree with the chaos ledger.
///
/// Only the chaos experiment's concurrent batch handles report into the
/// shared registry (the sequential reference passes and the recovery
/// drill are deliberately unobserved), so breaker trips, breaker
/// refusals and shed requests must match the scenario sums exactly.
pub fn telemetry_check(
    snapshot: &TelemetrySnapshot,
    chaos: &JsonValue,
) -> Result<TelemetryCheckReport, String> {
    let pairs: &[(&str, &str)] = &[
        ("supervisor.breaker.trips", "breaker_trips"),
        ("supervisor.breaker.refusals", "breaker_refusals"),
        ("supervisor.outcome.shed", "shed"),
    ];
    let mut checks = Vec::with_capacity(pairs.len());
    for (counter, field) in pairs {
        checks.push(CrossCheck {
            name: (*counter).to_string(),
            telemetry: snapshot.counter(counter),
            ledger: scenario_sum(chaos, field)?,
        });
    }
    Ok(TelemetryCheckReport { checks })
}

/// File-reading front end for [`telemetry_check`].
pub fn telemetry_check_files(
    telemetry: &Path,
    chaos: &Path,
) -> Result<TelemetryCheckReport, String> {
    let snapshot = read_snapshot(telemetry)?;
    let chaos_text =
        fs::read_to_string(chaos).map_err(|e| format!("read {}: {e}", chaos.display()))?;
    let chaos_doc = parse(&chaos_text).map_err(|e| format!("{}: {e}", chaos.display()))?;
    telemetry_check(&snapshot, &chaos_doc)
}

/// Assert the drift counters agree with `BENCH_drift.json`'s own ledger.
///
/// The drift experiment's serving handles share the registry, so three
/// counters must reproduce the harness's records exactly: every re-solve
/// the harness logged ticked `drift.resolves` *and* (via
/// `Knowledge::resolve_drift`) `engine.overlay.resets`, and every epoch
/// whose residual was finite — `null` in the JSON marks the epochs the
/// detector never saw — ticked `drift.epochs`. The companion
/// `chaos-dynamic` experiment never arms a detector, so it cannot
/// contribute to any of the three.
pub fn drift_check(
    snapshot: &TelemetrySnapshot,
    drift: &JsonValue,
) -> Result<TelemetryCheckReport, String> {
    let resolves = drift
        .get_path(&["series", "summary", "resolves"])
        .and_then(JsonValue::as_f64)
        .ok_or("drift report is missing numeric `series.summary.resolves`")?;
    if !resolves.is_finite() || resolves < 0.0 {
        return Err(format!(
            "drift report has unusable `series.summary.resolves` = {resolves}"
        ));
    }
    let epochs = drift
        .get_path(&["series", "epochs"])
        .and_then(JsonValue::as_array)
        .ok_or("drift report is missing `series.epochs`")?;
    // `as_f64` reads JSON `null` as NaN, matching how the harness writes
    // an epoch the detector never saw — only finite residuals were fed in.
    let observed = epochs
        .iter()
        .filter(|e| {
            e.get("residual")
                .and_then(JsonValue::as_f64)
                .is_some_and(f64::is_finite)
        })
        .count() as u64;
    let checks = vec![
        CrossCheck {
            name: "drift.resolves".to_string(),
            telemetry: snapshot.counter("drift.resolves"),
            ledger: resolves as u64,
        },
        CrossCheck {
            name: "engine.overlay.resets".to_string(),
            telemetry: snapshot.counter("engine.overlay.resets"),
            ledger: resolves as u64,
        },
        CrossCheck {
            name: "drift.epochs".to_string(),
            telemetry: snapshot.counter("drift.epochs"),
            ledger: observed,
        },
    ];
    Ok(TelemetryCheckReport { checks })
}

/// File-reading front end for [`drift_check`].
pub fn drift_check_files(telemetry: &Path, drift: &Path) -> Result<TelemetryCheckReport, String> {
    let snapshot = read_snapshot(telemetry)?;
    let drift_text =
        fs::read_to_string(drift).map_err(|e| format!("read {}: {e}", drift.display()))?;
    let drift_doc = parse(&drift_text).map_err(|e| format!("{}: {e}", drift.display()))?;
    drift_check(&snapshot, &drift_doc)
}

/// One pass/fail assertion over the serving-chaos ledger.
#[derive(Debug, Clone)]
pub struct LedgerGate {
    /// What the gate asserts.
    pub name: String,
    /// The observed value(s), rendered for the verdict line.
    pub detail: String,
    /// True when the assertion held.
    pub ok: bool,
}

/// Result of one `--ledger serving-chaos` run.
#[derive(Debug)]
pub struct LedgerGateReport {
    /// The individual gates, in check order.
    pub gates: Vec<LedgerGate>,
}

impl LedgerGateReport {
    /// True when every gate held.
    pub fn is_clean(&self) -> bool {
        self.gates.iter().all(|g| g.ok)
    }

    /// Human-readable summary, one line per gate.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for g in &self.gates {
            out.push_str(&format!(
                "{:<44} {:<28} {}\n",
                g.name,
                g.detail,
                if g.ok { "ok" } else { "FAILED" }
            ));
        }
        let failed = self.gates.iter().filter(|g| !g.ok).count();
        out.push_str(&format!(
            "serving-chaos-check: {} of {} gate(s) failed\n",
            failed,
            self.gates.len()
        ));
        out
    }
}

/// The five scenarios `BENCH_serving_chaos.json` must carry, in the
/// order the harness runs them.
const SERVING_CHAOS_SCENARIOS: &[&str] = &[
    "bit-identity",
    "lossy-network",
    "stall-storm",
    "overload-shed",
    "drain-under-load",
];

/// A scenario field that the harness writes as a stringified number, or
/// `"-"` when the scenario has no such measurement.
fn scenario_field(sc: &JsonValue, field: &str) -> Result<Option<f64>, String> {
    let v = sc
        .get(field)
        .ok_or_else(|| format!("scenario is missing `{field}`"))?;
    if let Some(n) = v.as_f64() {
        return Ok(Some(n));
    }
    match v.as_str() {
        Some("-") => Ok(None),
        Some(s) => s
            .parse::<f64>()
            .map(Some)
            .map_err(|_| format!("scenario `{field}` = `{s}` is not numeric")),
        None => Err(format!("scenario `{field}` is neither number nor string")),
    }
}

/// Gate a `BENCH_serving_chaos.json` ledger: the five scenarios must all
/// be present, the recorded invariants must hold (zero lost, zero
/// duplicated absorptions; both bit-identity proofs true), every measured
/// p99 must sit under the report's own ceiling, the transparency scenario
/// must show zero injections and zero failures, and the two
/// chaos-bearing scenarios must show the chaos actually fired.
pub fn serving_chaos_check(doc: &JsonValue) -> Result<LedgerGateReport, String> {
    let scenarios = doc
        .get_path(&["series", "scenarios"])
        .and_then(JsonValue::as_array)
        .ok_or("serving-chaos report is missing `series.scenarios`")?;
    let name_of = |sc: &JsonValue| -> Option<String> {
        sc.get("scenario").and_then(JsonValue::as_str).map(String::from)
    };
    let mut gates = Vec::new();

    let found: Vec<String> = scenarios.iter().filter_map(|s| name_of(s)).collect();
    let complete = SERVING_CHAOS_SCENARIOS
        .iter()
        .all(|want| found.iter().filter(|have| have == want).count() == 1);
    gates.push(LedgerGate {
        name: "scenarios.complete".to_string(),
        detail: found.join(","),
        ok: complete && found.len() == SERVING_CHAOS_SCENARIOS.len(),
    });

    for (invariant, want_zero) in [
        ("lost_absorptions", true),
        ("duplicated_absorptions", true),
    ] {
        let v = doc
            .get_path(&["series", "invariants", invariant])
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("report is missing numeric `series.invariants.{invariant}`"))?;
        gates.push(LedgerGate {
            name: format!("invariants.{invariant}"),
            detail: format!("{v}"),
            ok: !want_zero || v == 0.0,
        });
    }
    for invariant in ["none_plan_bit_identical", "journal_replay_bit_identical"] {
        let v = doc
            .get_path(&["series", "invariants", invariant])
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("report is missing boolean `series.invariants.{invariant}`"))?;
        gates.push(LedgerGate {
            name: format!("invariants.{invariant}"),
            detail: format!("{v}"),
            ok: v,
        });
    }

    let ceiling = doc
        .get_path(&["series", "p99_ceiling_ms"])
        .and_then(JsonValue::as_f64)
        .ok_or("report is missing numeric `series.p99_ceiling_ms`")?;
    for sc in scenarios {
        let name = name_of(sc).ok_or("scenario is missing `scenario`")?;
        if let Some(p99) = scenario_field(sc, "p99_ms")? {
            gates.push(LedgerGate {
                name: format!("{name}.p99_under_ceiling"),
                detail: format!("{p99:.0} ms <= {ceiling:.0} ms"),
                ok: p99.is_finite() && p99 <= ceiling,
            });
        }
        let injections = scenario_field(sc, "injections")?.unwrap_or(0.0);
        match name.as_str() {
            // The transparency proof: a none() plan must be inert and
            // lossless.
            "bit-identity" => {
                let failed = scenario_field(sc, "failed")?.unwrap_or(f64::NAN);
                gates.push(LedgerGate {
                    name: "bit-identity.inert".to_string(),
                    detail: format!("injections {injections}, failed {failed}"),
                    ok: injections == 0.0 && failed == 0.0,
                });
            }
            // The chaos-bearing scenarios: a ledger recording zero
            // injections means the run silently tested a clean network.
            "lossy-network" | "stall-storm" => {
                gates.push(LedgerGate {
                    name: format!("{name}.chaos_fired"),
                    detail: format!("injections {injections}"),
                    ok: injections > 0.0,
                });
            }
            _ => {}
        }
    }
    Ok(LedgerGateReport { gates })
}

/// File-reading front end for [`serving_chaos_check`].
pub fn serving_chaos_check_files(ledger: &Path) -> Result<LedgerGateReport, String> {
    serving_chaos_check(&read_json(ledger)?)
}

fn read_snapshot(telemetry: &Path) -> Result<TelemetrySnapshot, String> {
    let text =
        fs::read_to_string(telemetry).map_err(|e| format!("read {}: {e}", telemetry.display()))?;
    TelemetrySnapshot::from_json(&text).map_err(|e| format!("{}: {e}", telemetry.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_json(p99: f64, seq: f64, cold: f64, warm: f64) -> JsonValue {
        parse(&format!(
            r#"{{"id": "BENCH_throughput", "series": {{
                "latency_ms": {{"p50": 1.0, "p99": {p99}}},
                "requests_per_sec": {{
                    "sequential_cold": {seq},
                    "batch_cold": {cold},
                    "batch_warm": {warm}
                }}
            }}}}"#
        ))
        .expect("test report parses")
    }

    #[test]
    fn identical_reports_pass() {
        let a = report_json(40.0, 10.0, 30.0, 500.0);
        let r = perf_check(&a, &a, 0.25).expect("checks");
        assert!(r.is_clean());
        assert_eq!(r.rows.len(), 4);
        assert!(r.rows.iter().all(|m| m.delta_pct == 0.0));
    }

    #[test]
    fn latency_rise_beyond_tolerance_fails() {
        let base = report_json(40.0, 10.0, 30.0, 500.0);
        let worse = report_json(60.0, 10.0, 30.0, 500.0);
        let r = perf_check(&base, &worse, 0.25).expect("checks");
        assert!(!r.is_clean());
        let p99 = &r.rows[0];
        assert_eq!(p99.name, "latency_ms.p99");
        assert_eq!(p99.direction, Direction::LowerIsBetter);
        assert!(p99.regressed);
        assert!(r.render_table().contains("REGRESSED"));
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails_but_rise_passes() {
        let base = report_json(40.0, 10.0, 30.0, 500.0);
        let slower = report_json(40.0, 10.0, 20.0, 500.0);
        assert!(!perf_check(&base, &slower, 0.25).expect("checks").is_clean());
        let faster = report_json(40.0, 10.0, 90.0, 2000.0);
        assert!(perf_check(&base, &faster, 0.25).expect("checks").is_clean());
    }

    #[test]
    fn moves_within_tolerance_pass() {
        let base = report_json(40.0, 10.0, 30.0, 500.0);
        let wobble = report_json(48.0, 8.5, 26.0, 420.0);
        let r = perf_check(&base, &wobble, 0.25).expect("checks");
        assert!(r.is_clean(), "{}", r.render_table());
    }

    #[test]
    fn missing_metric_is_an_error_not_a_pass() {
        let base = report_json(40.0, 10.0, 30.0, 500.0);
        let empty = parse(r#"{"series": {}}"#).expect("parses");
        let err = perf_check(&base, &empty, 0.25).expect_err("must error");
        assert!(err.contains("latency_ms.p99"), "{err}");
    }

    fn serving_json(p99: f64, sustained: f64) -> JsonValue {
        parse(&format!(
            r#"{{"id": "BENCH_serving", "series": {{
                "latency_ms": {{"p50": 1.0, "p99": {p99}}},
                "sustained_rps": {sustained}
            }}}}"#
        ))
        .expect("serving report parses")
    }

    #[test]
    fn serving_gate_catches_sustained_rate_drop_and_p99_rise() {
        let base = serving_json(900.0, 1.0);
        let r = serving_check(&base, &base, 0.25).expect("checks");
        assert!(r.is_clean());
        assert_eq!(r.rows.len(), 2);
        let slower = serving_json(900.0, 0.5);
        assert!(!serving_check(&base, &slower, 0.25)
            .expect("checks")
            .is_clean());
        let laggier = serving_json(2000.0, 1.0);
        assert!(!serving_check(&base, &laggier, 0.25)
            .expect("checks")
            .is_clean());
        let wobble = serving_json(1000.0, 0.9);
        assert!(serving_check(&base, &wobble, 0.25)
            .expect("checks")
            .is_clean());
    }

    #[test]
    fn serving_gate_requires_its_own_series_shape() {
        let base = serving_json(900.0, 1.0);
        let throughput_shaped = report_json(40.0, 10.0, 30.0, 500.0);
        let err = serving_check(&base, &throughput_shaped, 0.25).expect_err("must error");
        assert!(err.contains("sustained_rps"), "{err}");
    }

    fn chaos_json(trips: &[u64], refusals: &[u64], shed: &[u64]) -> JsonValue {
        let scenarios: Vec<String> = trips
            .iter()
            .zip(refusals)
            .zip(shed)
            .map(|((t, r), s)| {
                format!(
                    r#"{{"name": "x", "breaker_trips": {t}, "breaker_refusals": {r}, "shed": {s}}}"#
                )
            })
            .collect();
        parse(&format!(
            r#"{{"series": {{"scenarios": [{}]}}}}"#,
            scenarios.join(",")
        ))
        .expect("chaos doc parses")
    }

    fn snapshot_with(trips: u64, refusals: u64, shed: u64) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        snap.counters
            .insert("supervisor.breaker.trips".into(), trips);
        snap.counters
            .insert("supervisor.breaker.refusals".into(), refusals);
        snap.counters.insert("supervisor.outcome.shed".into(), shed);
        snap
    }

    #[test]
    fn matching_ledger_is_consistent() {
        let chaos = chaos_json(&[0, 0, 3, 2], &[0, 0, 1, 4], &[0, 0, 0, 6]);
        let r = telemetry_check(&snapshot_with(5, 5, 6), &chaos).expect("checks");
        assert!(r.is_clean(), "{}", r.render());
    }

    #[test]
    fn drifted_counter_is_flagged() {
        let chaos = chaos_json(&[1, 2], &[0, 0], &[0, 0]);
        let r = telemetry_check(&snapshot_with(4, 0, 0), &chaos).expect("checks");
        assert!(!r.is_clean());
        assert!(r.render().contains("MISMATCH"));
    }

    #[test]
    fn malformed_chaos_report_errors() {
        let doc = parse(r#"{"series": {}}"#).expect("parses");
        assert!(telemetry_check(&TelemetrySnapshot::default(), &doc).is_err());
    }

    fn drift_json(resolves: u64, residuals: &[Option<f64>]) -> JsonValue {
        let epochs: Vec<String> = residuals
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let residual = r.map_or("null".to_string(), |v| format!("{v}"));
                format!(r#"{{"epoch": {i}, "residual": {residual}}}"#)
            })
            .collect();
        parse(&format!(
            r#"{{"series": {{"epochs": [{}], "summary": {{"resolves": {resolves}}}}}}}"#,
            epochs.join(",")
        ))
        .expect("drift doc parses")
    }

    fn drift_snapshot(resolves: u64, resets: u64, epochs: u64) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::default();
        snap.counters.insert("drift.resolves".into(), resolves);
        snap.counters.insert("engine.overlay.resets".into(), resets);
        snap.counters.insert("drift.epochs".into(), epochs);
        snap
    }

    #[test]
    fn matching_drift_summary_is_consistent() {
        // Three observed epochs (the null residual is an epoch the
        // detector never saw) and one re-solve.
        let doc = drift_json(1, &[Some(0.1), None, Some(0.2), Some(0.9)]);
        let r = drift_check(&drift_snapshot(1, 1, 3), &doc).expect("checks");
        assert!(r.is_clean(), "{}", r.render());
        assert_eq!(r.checks.len(), 3);
    }

    #[test]
    fn unticked_overlay_reset_is_flagged() {
        // A re-solve recorded by the harness that never reset the overlay
        // means the engine-side half of the re-solve was skipped.
        let doc = drift_json(2, &[Some(0.1), Some(0.9)]);
        let r = drift_check(&drift_snapshot(2, 1, 2), &doc).expect("checks");
        assert!(!r.is_clean());
        assert!(r.render().contains("MISMATCH"));
    }

    #[test]
    fn malformed_drift_report_errors() {
        let doc = parse(r#"{"series": {"epochs": []}}"#).expect("parses");
        assert!(drift_check(&TelemetrySnapshot::default(), &doc).is_err());
    }

    /// A healthy serving-chaos ledger, shaped exactly as the harness
    /// writes it (numeric row values stringified, `-` for unmeasured).
    fn serving_chaos_json(lost: u64, bit_identical: bool, stall_p99: &str) -> JsonValue {
        parse(&format!(
            r#"{{"id": "BENCH_serving_chaos", "series": {{
                "p99_ceiling_ms": 30000,
                "invariants": {{
                    "lost_absorptions": {lost},
                    "duplicated_absorptions": 0,
                    "none_plan_bit_identical": {bit_identical},
                    "journal_replay_bit_identical": true
                }},
                "scenarios": [
                    {{"scenario": "bit-identity", "requests": "8", "served": "8",
                      "failed": "0", "p50_ms": "-", "p99_ms": "-",
                      "injections": "0", "absorbed": "-"}},
                    {{"scenario": "lossy-network", "requests": "60", "served": "58",
                      "failed": "2", "p50_ms": "12", "p99_ms": "2100",
                      "injections": "41", "absorbed": "3"}},
                    {{"scenario": "stall-storm", "requests": "42", "served": "40",
                      "failed": "2", "p50_ms": "10", "p99_ms": "{stall_p99}",
                      "injections": "9", "absorbed": "3"}},
                    {{"scenario": "overload-shed", "requests": "2", "served": "1",
                      "failed": "1", "p50_ms": "-", "p99_ms": "-",
                      "injections": "0", "absorbed": "1"}},
                    {{"scenario": "drain-under-load", "requests": "36", "served": "30",
                      "failed": "6", "p50_ms": "11", "p99_ms": "800",
                      "injections": "0", "absorbed": "3"}}
                ]
            }}}}"#
        ))
        .expect("serving-chaos doc parses")
    }

    #[test]
    fn healthy_serving_chaos_ledger_passes() {
        let r = serving_chaos_check(&serving_chaos_json(0, true, "4200")).expect("checks");
        assert!(r.is_clean(), "{}", r.render());
        // Completeness + 4 invariants + 3 measured p99s + inertness +
        // two chaos-fired gates.
        assert_eq!(r.gates.len(), 11);
    }

    #[test]
    fn lost_absorption_fails_the_gate() {
        let r = serving_chaos_check(&serving_chaos_json(1, true, "4200")).expect("checks");
        assert!(!r.is_clean());
        assert!(r.render().contains("invariants.lost_absorptions"));
        assert!(r.render().contains("FAILED"));
    }

    #[test]
    fn broken_transparency_proof_fails_the_gate() {
        let r = serving_chaos_check(&serving_chaos_json(0, false, "4200")).expect("checks");
        assert!(!r.is_clean());
    }

    #[test]
    fn p99_over_ceiling_fails_the_gate() {
        let r = serving_chaos_check(&serving_chaos_json(0, true, "90000")).expect("checks");
        assert!(!r.is_clean());
        assert!(r.render().contains("stall-storm.p99_under_ceiling"));
    }

    #[test]
    fn missing_scenario_fails_completeness() {
        let doc = parse(
            r#"{"series": {"p99_ceiling_ms": 30000,
                "invariants": {"lost_absorptions": 0, "duplicated_absorptions": 0,
                               "none_plan_bit_identical": true,
                               "journal_replay_bit_identical": true},
                "scenarios": [{"scenario": "bit-identity", "requests": "8",
                               "served": "8", "failed": "0", "p50_ms": "-",
                               "p99_ms": "-", "injections": "0", "absorbed": "-"}]}}"#,
        )
        .expect("parses");
        let r = serving_chaos_check(&doc).expect("checks");
        assert!(!r.is_clean());
        assert!(r.render().contains("scenarios.complete"));
    }

    #[test]
    fn malformed_serving_chaos_report_errors() {
        let doc = parse(r#"{"series": {}}"#).expect("parses");
        assert!(serving_chaos_check(&doc).is_err());
    }
}
