//! A minimal, span-accurate Rust lexer for the invariant lint pass.
//!
//! The pass needs exactly three things from a lexer: identifiers and
//! punctuation with `line:col` spans, comments surfaced separately (so
//! `// vesta-lint:` directives can be parsed and doc-comment examples are
//! never linted), and correct skipping of string/char literals so tokens
//! inside `"thread_rng"` string data are not mistaken for code. It is
//! deliberately dependency-free: the workspace registry must stay buildable
//! offline, and none of the lints need full parse trees — only token
//! patterns plus item-level brace matching (see `lints.rs`).

/// A lexed token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: Kind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
}

/// Token kind. Literals carry no text — no lint inspects literal contents.
#[derive(Debug, Clone, PartialEq)]
pub enum Kind {
    /// Identifier or keyword; the text is the identifier itself.
    Ident(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// String/char/byte/numeric literal (contents dropped).
    Lit,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            Kind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when the token is the punctuation char `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }

    /// True when the token is exactly the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }
}

/// A comment that mentions `vesta-lint` or `vesta-mutants` (all other
/// comments are dropped).
#[derive(Debug, Clone)]
pub struct LintComment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body with the leading `//`/`/*` markers stripped.
    pub text: String,
}

/// Lex `src` into tokens plus any `vesta-lint`/`vesta-mutants` comments.
pub fn lex(src: &str) -> (Vec<Token>, Vec<LintComment>) {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: Vec<LintComment>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            src,
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> (Vec<Token>, Vec<LintComment>) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line, col),
                'r' | 'b' if self.raw_or_byte_literal(line, col) => {}
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                _ => {
                    self.bump();
                    self.tokens.push(Token {
                        kind: Kind::Punct(c),
                        line,
                        col,
                    });
                }
            }
        }
        (self.tokens, self.comments)
    }

    fn line_comment(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.keep_if_directive(start, self.pos, line);
    }

    fn block_comment(&mut self, line: u32) {
        let start = self.pos;
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.keep_if_directive(start, self.pos, line);
    }

    fn keep_if_directive(&mut self, start: usize, end: usize, line: u32) {
        // `chars` indices equal byte indices only for ASCII sources, so
        // re-slice through the char vector to stay correct on UTF-8.
        let text: String = self.chars[start..end].iter().collect();
        if text.contains("vesta-lint") || text.contains("vesta-mutants") {
            let body = text
                .trim_start_matches('/')
                .trim_start_matches('*')
                .trim_end_matches('/')
                .trim_end_matches('*')
                .trim()
                .to_string();
            self.comments.push(LintComment { line, text: body });
        }
        // Silence the unused-field warning path: `src` anchors the lifetime.
        let _ = self.src;
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.tokens.push(Token {
            kind: Kind::Lit,
            line,
            col,
        });
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns false if
    /// the `r`/`b` starts a plain identifier instead.
    fn raw_or_byte_literal(&mut self, line: u32, col: u32) -> bool {
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1, c2) {
            (Some('r'), Some('"'), _) | (Some('r'), Some('#'), _) if self.is_raw_start(1) => {
                self.bump();
                self.raw_string_tail(line, col);
                true
            }
            (Some('b'), Some('"'), _) => {
                self.bump();
                self.string_literal(line, col);
                true
            }
            (Some('b'), Some('\''), _) => {
                self.bump();
                self.char_literal_tail(line, col);
                true
            }
            (Some('b'), Some('r'), Some('"')) | (Some('b'), Some('r'), Some('#'))
                if self.is_raw_start(2) =>
            {
                self.bump();
                self.bump();
                self.raw_string_tail(line, col);
                true
            }
            _ => false,
        }
    }

    /// True when, at `offset` chars ahead, `#*"` begins a raw string.
    fn is_raw_start(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    /// Consume a raw string starting at the current `#*"` position.
    fn raw_string_tail(&mut self, line: u32, col: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.tokens.push(Token {
            kind: Kind::Lit,
            line,
            col,
        });
    }

    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        // `'a` / `'static` (lifetime) vs `'x'` / `'\n'` (char literal):
        // a lifetime is `'` + ident-start NOT followed by a closing `'`.
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime =
            matches!(c1, Some(c) if c.is_alphabetic() || c == '_') && c2 != Some('\'');
        if is_lifetime {
            self.bump(); // the quote
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    self.bump();
                } else {
                    break;
                }
            }
            // Lifetimes are invisible to every lint: drop them.
        } else {
            self.char_literal_tail(line, col);
        }
    }

    fn char_literal_tail(&mut self, line: u32, col: u32) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.tokens.push(Token {
            kind: Kind::Lit,
            line,
            col,
        });
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.tokens.push(Token {
            kind: Kind::Ident(text),
            line,
            col,
        });
    }

    fn number(&mut self, line: u32, col: u32) {
        while let Some(c) = self.peek(0) {
            if c == '.' {
                // A dot continues the literal (`1.5`, `2.`) unless it
                // starts a method call or field access (`a.1.partial_cmp`,
                // `1.max(2)`): a following identifier-start ends the number
                // so the method name lexes as its own ident.
                if matches!(self.peek(1), Some(n) if n.is_alphabetic() || n == '_') {
                    break;
                }
                self.bump();
            } else if c.is_alphanumeric() || c == '_' {
                // `1e-3` / `1E+3`: pull the sign into the literal.
                let was_exp = (c == 'e' || c == 'E')
                    && matches!(self.peek(1), Some('+') | Some('-'))
                    && matches!(self.peek(2), Some(d) if d.is_ascii_digit());
                self.bump();
                if was_exp {
                    self.bump();
                }
            } else {
                break;
            }
        }
        self.tokens.push(Token {
            kind: Kind::Lit,
            line,
            col,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .0
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // thread_rng in a comment
            /* HashMap in a block */
            let s = "thread_rng()";
            let r = r#"HashMap"#;
            let c = '"';
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { unwrap_me(x) }";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap_me".to_string()));
    }

    #[test]
    fn spans_are_one_based() {
        let (toks, _) = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn directive_comments_are_surfaced() {
        let (_, comments) = lex("x(); // vesta-lint: allow(panic-in-lib, reason = \"ok\")\n");
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].line, 1);
        assert!(comments[0].text.starts_with("vesta-lint:"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let ids = idents("/* a /* b */ still comment */ code()");
        assert_eq!(ids, vec!["code".to_string()]);
    }

    #[test]
    fn numeric_exponents_stay_single_literals() {
        let (toks, _) = lex("1.0e-3 + x");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Lit).count(), 1);
        assert!(toks.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn method_calls_on_numeric_literals_keep_the_method_ident() {
        // `a.1.partial_cmp(...)`: the tuple index must not swallow the
        // method name into the literal.
        let (toks, _) = lex("a.1.partial_cmp(&b.1)");
        assert!(toks.iter().any(|t| t.is_ident("partial_cmp")));
        let (toks, _) = lex("1.0f64.max(x)");
        assert!(toks.iter().any(|t| t.is_ident("max")));
        // Trailing-dot floats and exclusive ranges still lex.
        let (toks, _) = lex("2. + 0..n");
        assert!(toks.iter().any(|t| t.is_ident("n")));
    }
}
