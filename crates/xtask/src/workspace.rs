//! Workspace file discovery and role classification for the lint pass.
//!
//! The pass never consults `Cargo.toml`: the repo's layout is regular
//! enough that path shape determines crate and role, and staying
//! manifest-free keeps the xtask dependency-free.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What kind of code a file holds — lints scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// Library code (`crates/<c>/src/**`, `src/lib.rs`).
    Lib,
    /// Binary code (`src/bin/**`, `crates/<c>/src/bin/**`).
    Bin,
    /// Integration tests (`tests/**`, `crates/<c>/tests/**`).
    Test,
    /// Criterion benches (`crates/<c>/benches/**`).
    Bench,
    /// Examples — exempt from every lint.
    Example,
}

/// One workspace source file as the lints see it.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Crate name (`core`, `ml`, …; the facade crate is `vesta-suite`).
    pub krate: String,
    /// Role within its crate.
    pub role: FileRole,
}

/// Discover every lintable `.rs` file under `root`. The xtask crate itself
/// (including its fixtures) and generated/vendored trees are excluded.
pub fn discover(root: &Path) -> io::Result<Vec<(SourceFile, PathBuf)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue, // unreadable dirs are skipped, not fatal
        };
        for entry in entries {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    ".git" | "target" | "results" | "node_modules"
                ) {
                    continue;
                }
                // The lint pass must not lint itself or its fixtures.
                if path
                    .strip_prefix(root)
                    .is_ok_and(|r| r == Path::new("crates/xtask"))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                if let Some(file) = classify(&rel) {
                    files.push((file, path));
                }
            }
        }
    }
    files.sort_by(|a, b| a.0.rel_path.cmp(&b.0.rel_path));
    Ok(files)
}

/// Map a workspace-relative path to its crate and role; `None` exempts the
/// file from the pass entirely.
pub fn classify(rel: &str) -> Option<SourceFile> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (krate, role) = match parts.as_slice() {
        ["crates", "xtask", ..] => return None,
        ["crates", c, "src", "bin", ..] => ((*c).to_string(), FileRole::Bin),
        ["crates", c, "src", ..] => ((*c).to_string(), FileRole::Lib),
        ["crates", c, "tests", ..] => ((*c).to_string(), FileRole::Test),
        ["crates", c, "benches", ..] => ((*c).to_string(), FileRole::Bench),
        ["crates", c, "examples", ..] => ((*c).to_string(), FileRole::Example),
        ["src", "bin", ..] => ("vesta-suite".to_string(), FileRole::Bin),
        ["src", ..] => ("vesta-suite".to_string(), FileRole::Lib),
        ["tests", ..] => ("vesta-suite".to_string(), FileRole::Test),
        ["examples", ..] => ("vesta-suite".to_string(), FileRole::Example),
        _ => return None,
    };
    Some(SourceFile {
        rel_path: rel.to_string(),
        krate,
        role,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let f = classify("crates/core/src/engine.rs").unwrap();
        assert_eq!((f.krate.as_str(), f.role), ("core", FileRole::Lib));
        let f = classify("crates/bench/src/bin/experiments.rs").unwrap();
        assert_eq!((f.krate.as_str(), f.role), ("bench", FileRole::Bin));
        let f = classify("tests/supervisor.rs").unwrap();
        assert_eq!((f.krate.as_str(), f.role), ("vesta-suite", FileRole::Test));
        let f = classify("src/bin/vesta.rs").unwrap();
        assert_eq!((f.krate.as_str(), f.role), ("vesta-suite", FileRole::Bin));
        assert!(classify("crates/xtask/src/lints.rs").is_none());
        assert!(classify("build.rs").is_none());
    }
}
