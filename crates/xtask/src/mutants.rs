//! `vesta-xtask mutants` — a zero-dependency mutation-testing engine.
//!
//! Reuses the invariant pass's lexer ([`crate::lexer`]) to discover
//! mutation sites by token pattern, applies each mutant to a temp
//! checkout of the workspace, runs that target's scoped test command, and
//! classifies every mutant as caught / survived / timeout / unviable /
//! skipped. The full per-mutant ledger lands in `results/MUTANTS.json`;
//! `mutants --check` re-validates the committed ledger offline (file
//! hashes, site set, statuses, score) so CI can gate on it without
//! re-running the sweep.
//!
//! ## Mutation operators
//!
//! * `cmp-swap`   — `<` ↔ `<=`, `>` ↔ `>=`, `==` ↔ `!=` (boundary shifts)
//! * `arith-swap` — `+` ↔ `-`, `*` ↔ `/`
//! * `logic-swap` — `&&` ↔ `||`
//! * `const-perturb` — integer literal `n` → `n + 1`
//! * `fn-stub`    — replace a fn body with its default value
//!   (`{}`, `{ false }`, `{ 0 }`, `{ 0.0 }`, `{ Ok(()) }`, `{ None }`, …)
//!
//! Operator sites are *line-granular* by default: the first eligible
//! operator/constant site on each line is mutated (fn stubs are a
//! separate class and always generated). This keeps sweep time and
//! triage load proportional to line count, not expression density;
//! `--exhaustive` lifts the cap. Binary operators are only recognized
//! with whitespace on both sides — the convention `rustfmt` enforces —
//! which cleanly excludes generics (`Vec<f64>`), arrows (`->`), unary
//! minus/deref and compound assignment.
//!
//! ## Escape hatch
//!
//! `// vesta-mutants: skip(reason = "…")` on a site's line or the line
//! above excludes it from execution (status `skipped`) but keeps it in
//! the ledger, mirroring the lint pass's `vesta-lint: allow` syntax. A
//! reason is required; a reasonless skip fails discovery. Skipped sites
//! count *against* the score — the gate bounds how much of the mutation
//! surface may be waived:
//!
//! ```text
//! score = (caught + timeout) / (caught + timeout + survived + skipped)
//! ```
//!
//! Unviable mutants (the mutated tree fails to compile) measure nothing
//! about test strength and are excluded from the denominator. Test
//! regions (`#[cfg(test)]` / `#[test]`, via [`crate::lints::test_regions`])
//! are never mutated: mutating an assertion proves nothing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Read as _;
use std::path::Path;
use std::time::{Duration, Instant};

use vesta_obs::json::JsonValue;

use crate::lexer::{self, Kind, Token};
use crate::lints;

/// Ledger schema tag.
pub const SCHEMA: &str = "vesta-mutants/1";

/// Default minimum mutation score for `--check`.
pub const DEFAULT_THRESHOLD: f64 = 0.8;

/// Default per-mutant test timeout floor (seconds); the effective timeout
/// is `max(3 × baseline, floor)`. A run past it is classified `timeout`
/// (an infinite-loop mutant *is* caught behavior).
pub const DEFAULT_TIMEOUT_FLOOR_SECS: u64 = 60;

/// One file under mutation plus the scoped command that must kill its
/// mutants.
#[derive(Debug, Clone)]
pub struct MutationTarget {
    /// Workspace-relative path of the file to mutate.
    pub file: String,
    /// Package the file belongs to (recorded in the ledger).
    pub package: String,
    /// `cargo` arguments of the scoped test command, e.g.
    /// `["test", "-p", "vesta-ml", "--lib"]`.
    pub test_args: Vec<String>,
}

/// The two files the committed ledger covers: the CMF learning core and
/// the serving supervisor, each killed by its crate's `--lib` tests.
pub fn default_targets() -> Vec<MutationTarget> {
    let t = |file: &str, package: &str| MutationTarget {
        file: file.to_string(),
        package: package.to_string(),
        test_args: ["test", "-p", package, "--lib"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    };
    vec![
        t("crates/ml/src/cmf.rs", "vesta-ml"),
        t("crates/core/src/supervisor.rs", "vesta-core"),
    ]
}

/// One discovered mutant.
#[derive(Debug, Clone, PartialEq)]
pub struct Mutant {
    /// Stable id, `"<file-stem>-<NNN>"` in (line, col) order.
    pub id: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the mutated site.
    pub line: u32,
    /// 1-based column of the mutated site.
    pub col: u32,
    /// Operator class (`cmp-swap`, `arith-swap`, `logic-swap`,
    /// `const-perturb`, `fn-stub`).
    pub op: &'static str,
    /// Source text being replaced.
    pub original: String,
    /// Replacement text.
    pub replacement: String,
    /// Byte range of `original` within the file.
    pub span: (usize, usize),
    /// `Some(reason)` when a `vesta-mutants: skip` directive covers the
    /// site.
    pub skip_reason: Option<String>,
}

impl Mutant {
    /// `"original -> replacement"`, truncated for table display.
    pub fn describe(&self) -> String {
        let clip = |s: &str| -> String {
            let mut c: String = s.chars().take(28).collect();
            if c.len() < s.len() {
                c.push('…');
            }
            c.replace('\n', "\\n")
        };
        format!("{} -> {}", clip(&self.original), clip(&self.replacement))
    }
}

/// What the sweep concluded about one mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutantStatus {
    /// The scoped tests failed — the mutant was killed.
    Caught,
    /// The scoped tests passed — a gap in the suite.
    Survived,
    /// The scoped tests ran past the timeout; counted as caught.
    Timeout,
    /// The mutated tree failed to compile; excluded from the score.
    Unviable,
    /// Excluded by a `vesta-mutants: skip(reason = …)` directive.
    Skipped,
}

impl MutantStatus {
    /// Stable ledger label.
    pub fn label(&self) -> &'static str {
        match self {
            MutantStatus::Caught => "caught",
            MutantStatus::Survived => "survived",
            MutantStatus::Timeout => "timeout",
            MutantStatus::Unviable => "unviable",
            MutantStatus::Skipped => "skipped",
        }
    }

    /// Inverse of [`MutantStatus::label`].
    pub fn from_label(s: &str) -> Option<MutantStatus> {
        Some(match s {
            "caught" => MutantStatus::Caught,
            "survived" => MutantStatus::Survived,
            "timeout" => MutantStatus::Timeout,
            "unviable" => MutantStatus::Unviable,
            "skipped" => MutantStatus::Skipped,
            _ => return None,
        })
    }
}

/// A classified mutant: discovery output plus its sweep status.
#[derive(Debug, Clone)]
pub struct MutantResult {
    /// The mutant.
    pub mutant: Mutant,
    /// Its fate.
    pub status: MutantStatus,
    /// Skip reason or a one-line note from the runner.
    pub note: String,
}

/// Aggregate counts and the gated score.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MutantSummary {
    /// Mutants generated (all statuses).
    pub total: usize,
    /// Killed by a failing test run.
    pub caught: usize,
    /// Test run passed under the mutant.
    pub survived: usize,
    /// Test run exceeded the timeout (counted as caught in the score).
    pub timeout: usize,
    /// Mutated tree failed to compile.
    pub unviable: usize,
    /// Waived by skip directives.
    pub skipped: usize,
    /// `(caught + timeout) / (caught + timeout + survived + skipped)`;
    /// 1.0 when the denominator is zero.
    pub score: f64,
}

impl MutantSummary {
    /// Tally `results` into a summary.
    pub fn tally(results: &[MutantResult]) -> MutantSummary {
        let mut s = MutantSummary {
            total: results.len(),
            ..Default::default()
        };
        for r in results {
            match r.status {
                MutantStatus::Caught => s.caught += 1,
                MutantStatus::Survived => s.survived += 1,
                MutantStatus::Timeout => s.timeout += 1,
                MutantStatus::Unviable => s.unviable += 1,
                MutantStatus::Skipped => s.skipped += 1,
            }
        }
        let killed = s.caught + s.timeout;
        let denom = killed + s.survived + s.skipped;
        s.score = if denom == 0 {
            1.0
        } else {
            killed as f64 / denom as f64
        };
        s
    }
}

/// Everything `MUTANTS.json` records.
#[derive(Debug, Clone)]
pub struct Ledger {
    /// Score the `--check` gate enforces.
    pub threshold: f64,
    /// Whether discovery ran site-exhaustive (vs line-granular).
    pub exhaustive: bool,
    /// `(target, fnv1a64 hex hash of the file at sweep time)`.
    pub targets: Vec<(MutationTarget, String)>,
    /// Per-mutant results in (file, line, col, op) order.
    pub results: Vec<MutantResult>,
    /// Aggregates.
    pub summary: MutantSummary,
}

// ---------------------------------------------------------------------------
// Discovery
// ---------------------------------------------------------------------------

/// A parsed `vesta-mutants: skip(reason = "…")` directive. Covers its own
/// line and the next (same rule as `vesta-lint: allow`).
#[derive(Debug)]
struct SkipDirective {
    line: u32,
    reason: String,
}

fn parse_skip_directives(
    file: &str,
    comments: &[lexer::LintComment],
) -> Result<Vec<SkipDirective>, String> {
    let mut out = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim().strip_prefix("vesta-mutants:") else {
            continue;
        };
        let rest = rest.trim();
        let reason = rest
            .strip_prefix("skip(")
            .and_then(|r| r.strip_suffix(')'))
            .and_then(|r| r.trim().strip_prefix("reason"))
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.strip_suffix('"'))
            .map(str::trim)
            .unwrap_or_default();
        if reason.is_empty() {
            return Err(format!(
                "{file}:{}: malformed mutants directive `{rest}`; expected \
                 `vesta-mutants: skip(reason = \"…\")` with a non-empty reason",
                c.line
            ));
        }
        out.push(SkipDirective {
            line: c.line,
            reason: reason.to_string(),
        });
    }
    Ok(out)
}

/// Byte offset of 1-based `(line, col)` (col counted in chars).
fn byte_offset(src: &str, line: u32, col: u32) -> Option<usize> {
    let (mut cur_line, mut cur_col) = (1u32, 1u32);
    for (i, ch) in src.char_indices() {
        if cur_line == line && cur_col == col {
            return Some(i);
        }
        if ch == '\n' {
            cur_line += 1;
            cur_col = 1;
        } else {
            cur_col += 1;
        }
    }
    (cur_line == line && cur_col == col).then_some(src.len())
}

fn char_before(src: &str, at: usize) -> Option<char> {
    src[..at].chars().next_back()
}

fn char_at(src: &str, at: usize) -> Option<char> {
    src[at..].chars().next()
}

/// Whitespace on both sides of `[start, end)` — the binary-operator
/// context `rustfmt` guarantees.
fn spaced(src: &str, start: usize, end: usize) -> bool {
    char_before(src, start).is_some_and(char::is_whitespace)
        && char_at(src, end).is_some_and(char::is_whitespace)
}

fn in_test_region(regions: &[(usize, usize)], token_idx: usize) -> bool {
    regions.iter().any(|&(s, e)| token_idx >= s && token_idx < e)
}

/// A site candidate before line-granularity and id assignment.
struct Candidate {
    line: u32,
    col: u32,
    op: &'static str,
    original: String,
    replacement: String,
    span: (usize, usize),
}

/// Single-char punct of `tokens[i]`, if any.
fn punct(tokens: &[Token], i: usize) -> Option<char> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(&Kind::Punct(c)) => Some(c),
        _ => None,
    }
}

/// True when `tokens[i + 1]` is the punct `c` immediately adjacent (same
/// line, next column) — how the lexer delivers `==`, `&&`, `->`, …
fn adjacent(tokens: &[Token], i: usize, c: char) -> bool {
    punct(tokens, i + 1) == Some(c)
        && tokens[i + 1].line == tokens[i].line
        && tokens[i + 1].col == tokens[i].col + 1
}

fn operator_candidates(src: &str, tokens: &[Token], regions: &[(usize, usize)]) -> Vec<Candidate> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let Some(c) = punct(tokens, i) else {
            i += 1;
            continue;
        };
        if in_test_region(regions, i) {
            i += 1;
            continue;
        }
        let t = &tokens[i];
        // Two-char operators first; the pair is consumed together.
        let pair: Option<(&str, &str, &'static str)> = match c {
            '=' if adjacent(tokens, i, '=') => Some(("==", "!=", "cmp-swap")),
            '!' if adjacent(tokens, i, '=') => Some(("!=", "==", "cmp-swap")),
            '<' if adjacent(tokens, i, '=') => Some(("<=", "<", "cmp-swap")),
            '>' if adjacent(tokens, i, '=') => Some((">=", ">", "cmp-swap")),
            '&' if adjacent(tokens, i, '&') => Some(("&&", "||", "logic-swap")),
            '|' if adjacent(tokens, i, '|') => Some(("||", "&&", "logic-swap")),
            _ => None,
        };
        if let Some((orig, repl, op)) = pair {
            if let Some(start) = byte_offset(src, t.line, t.col) {
                let end = start + orig.len();
                if spaced(src, start, end) && &src[start..end] == orig {
                    out.push(Candidate {
                        line: t.line,
                        col: t.col,
                        op,
                        original: orig.to_string(),
                        replacement: repl.to_string(),
                        span: (start, end),
                    });
                }
            }
            i += 2;
            continue;
        }
        // Compound assignment (`+=`, `-=`, `*=`, `/=`, `<<=`, …) and
        // arrows are never mutated: skip the operator char when `=` or
        // `>` follows immediately.
        let single: Option<(&str, &str, &'static str)> = match c {
            _ if adjacent(tokens, i, '=') || adjacent(tokens, i, '>') => None,
            '<' if !adjacent(tokens, i, '<') => Some(("<", "<=", "cmp-swap")),
            '>' => Some((">", ">=", "cmp-swap")),
            '+' if !adjacent(tokens, i, '+') => Some(("+", "-", "arith-swap")),
            '-' if !adjacent(tokens, i, '-') => Some(("-", "+", "arith-swap")),
            '*' => Some(("*", "/", "arith-swap")),
            '/' if !adjacent(tokens, i, '/') => Some(("/", "*", "arith-swap")),
            _ => None,
        };
        if let Some((orig, repl, op)) = single {
            if let Some(start) = byte_offset(src, t.line, t.col) {
                let end = start + 1;
                if spaced(src, start, end) {
                    out.push(Candidate {
                        line: t.line,
                        col: t.col,
                        op,
                        original: orig.to_string(),
                        replacement: repl.to_string(),
                        span: (start, end),
                    });
                }
            }
        }
        i += 1;
    }
    out
}

/// Integer-literal perturbation sites: plain decimal literals become
/// `value + 1`. Floats, hex/octal/binary literals, string/char literals
/// and tuple indices (`pair.0`) are excluded.
fn const_candidates(src: &str, tokens: &[Token], regions: &[(usize, usize)]) -> Vec<Candidate> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != Kind::Lit || in_test_region(regions, i) {
            continue;
        }
        let Some(start) = byte_offset(src, t.line, t.col) else {
            continue;
        };
        // The lexer drops literal text; re-read it from the span. Only
        // plain decimal integers qualify.
        if char_before(src, start) == Some('.') {
            continue; // tuple index / method on a float's fraction
        }
        let rest = &src[start..];
        let digits: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '_')
            .collect();
        if digits.is_empty() || !digits.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue; // string/char/raw literal
        }
        let after = rest[digits.len()..].chars().next();
        if matches!(after, Some('.')) {
            continue; // float
        }
        if matches!(after, Some(c) if c.is_ascii_alphabetic())
            && !matches!(after, Some('u') | Some('i'))
        {
            continue; // `0x…`, `0b…`, `1e9`, float suffixes
        }
        let Ok(value) = digits.replace('_', "").parse::<u128>() else {
            continue;
        };
        let suffix_len = rest[digits.len()..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .map(char::len_utf8)
            .sum::<usize>();
        let original = &rest[..digits.len() + suffix_len];
        let suffix = &rest[digits.len()..digits.len() + suffix_len];
        out.push(Candidate {
            line: t.line,
            col: t.col,
            op: "const-perturb",
            original: original.to_string(),
            replacement: format!("{}{}", value + 1, suffix),
            span: (start, start + original.len()),
        });
    }
    out
}

/// The stub body for a return type spelled by `ret` tokens, if the type
/// has an obvious default. `None` (no stub) for types we cannot default
/// confidently — a wrong guess only produces unviable noise.
fn stub_body(ret: &[&str]) -> Option<&'static str> {
    match ret {
        [] => Some("{}"),
        ["bool"] => Some("{ false }"),
        ["f64"] | ["f32"] => Some("{ 0.0 }"),
        ["usize"] | ["u8"] | ["u16"] | ["u32"] | ["u64"] | ["u128"] | ["isize"] | ["i8"]
        | ["i16"] | ["i32"] | ["i64"] | ["i128"] => Some("{ 0 }"),
        ["String"] => Some("{ String::new() }"),
        ["Result", "<", "(", ")", ",", ..] => Some("{ Ok(()) }"),
        ["Option", "<", ..] => Some("{ None }"),
        ["Vec", "<", ..] => Some("{ Vec::new() }"),
        _ => None,
    }
}

/// Fn-body stub sites: each non-test `fn` with a confidently-defaultable
/// return type gets one mutant replacing its whole body.
fn stub_candidates(src: &str, tokens: &[Token], regions: &[(usize, usize)]) -> Vec<Candidate> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_ident("fn") || in_test_region(regions, i) {
            i += 1;
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            break;
        };
        let Some(name) = name_tok.ident() else {
            i += 1;
            continue;
        };
        // Find the parameter list and skip it (depth-matched parens).
        let mut j = i + 2;
        while j < tokens.len() && !tokens[j].is_punct('(') {
            if tokens[j].is_punct('{') || tokens[j].is_punct(';') {
                break; // not a normal fn shape; bail
            }
            j += 1;
        }
        if !tokens.get(j).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        while j < tokens.len() {
            if tokens[j].is_punct('(') {
                depth += 1;
            } else if tokens[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        // Collect return-type tokens between `->` and the body `{` (or a
        // trait declaration's `;`, which has no body to stub).
        let mut ret: Vec<String> = Vec::new();
        let mut k = j + 1;
        let has_arrow = punct(tokens, k) == Some('-') && adjacent(tokens, k, '>');
        if has_arrow {
            k += 2;
        }
        let mut body_open = None;
        while k < tokens.len() {
            if tokens[k].is_punct('{') {
                body_open = Some(k);
                break;
            }
            if tokens[k].is_punct(';') || tokens[k].is_ident("where") {
                break;
            }
            ret.push(match &tokens[k].kind {
                Kind::Ident(s) => s.clone(),
                Kind::Punct(c) => c.to_string(),
                Kind::Lit => "<lit>".to_string(),
            });
            k += 1;
        }
        let Some(open) = body_open else {
            i += 1;
            continue;
        };
        let ret_strs: Vec<&str> = ret.iter().map(String::as_str).collect();
        let Some(stub) = stub_body(&ret_strs) else {
            i = open + 1;
            continue;
        };
        // Match the body braces to find the span to replace.
        let mut depth = 0i32;
        let mut close = None;
        for (idx, t) in tokens.iter().enumerate().skip(open) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    close = Some(idx);
                    break;
                }
            }
        }
        let Some(close) = close else {
            i += 1;
            continue;
        };
        let (Some(start), Some(end)) = (
            byte_offset(src, tokens[open].line, tokens[open].col),
            byte_offset(src, tokens[close].line, tokens[close].col),
        ) else {
            i = close + 1;
            continue;
        };
        let end = end + 1; // include the closing brace
        out.push(Candidate {
            line: tokens[i].line,
            col: tokens[i].col,
            op: "fn-stub",
            original: format!("fn {name} body"),
            replacement: stub.to_string(),
            span: (start, end),
        });
        // Continue *inside* the body: nested fns are rare but legal.
        i = open + 1;
    }
    out
}

/// Discover every mutant of `src` (a file at workspace-relative `rel`).
/// Line-granular unless `exhaustive`: operator/constant sites collapse to
/// the first per line; fn stubs are always kept.
pub fn discover_file(rel: &str, src: &str, exhaustive: bool) -> Result<Vec<Mutant>, String> {
    let (tokens, comments) = lexer::lex(src);
    let regions = lints::test_regions(&tokens);
    let skips = parse_skip_directives(rel, &comments)?;

    let mut sites = operator_candidates(src, &tokens, &regions);
    sites.extend(const_candidates(src, &tokens, &regions));
    sites.sort_by_key(|c| (c.line, c.col));
    if !exhaustive {
        let mut last_line = 0u32;
        sites.retain(|c| {
            let keep = c.line != last_line;
            if keep {
                last_line = c.line;
            }
            keep
        });
    }
    sites.extend(stub_candidates(src, &tokens, &regions));
    sites.sort_by_key(|c| (c.line, c.col, c.op));

    let stem = Path::new(rel)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("file");
    Ok(sites
        .into_iter()
        .enumerate()
        .map(|(n, c)| {
            let skip_reason = skips
                .iter()
                .find(|d| c.line == d.line || c.line == d.line + 1)
                .map(|d| d.reason.clone());
            Mutant {
                id: format!("{stem}-{:03}", n + 1),
                file: rel.to_string(),
                line: c.line,
                col: c.col,
                op: c.op,
                original: c.original,
                replacement: c.replacement,
                span: c.span,
                skip_reason,
            }
        })
        .collect())
}

/// `src` with `mutant` applied.
pub fn apply_mutant(src: &str, mutant: &Mutant) -> String {
    let (start, end) = mutant.span;
    let mut out = String::with_capacity(src.len() + mutant.replacement.len());
    out.push_str(&src[..start]);
    out.push_str(&mutant.replacement);
    out.push_str(&src[end..]);
    out
}

// ---------------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------------

/// FNV-1a 64-bit over the file bytes, rendered `fnv1a64:<16 hex>`. Cheap,
/// dependency-free, and plenty for staleness detection (not security).
pub fn file_fingerprint(bytes: &[u8]) -> String {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("fnv1a64:{h:016x}")
}

// ---------------------------------------------------------------------------
// Sweep runner
// ---------------------------------------------------------------------------

/// Knobs of [`run_sweep`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Site-exhaustive discovery instead of line-granular.
    pub exhaustive: bool,
    /// Score threshold recorded in the ledger and enforced by `--check`.
    pub threshold: f64,
    /// Per-mutant timeout floor in seconds (effective timeout is
    /// `max(3 × baseline, floor)`).
    pub timeout_floor_secs: u64,
    /// Restrict the sweep to targets whose file is in this list (empty =
    /// all targets).
    pub only_files: Vec<String>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            exhaustive: false,
            threshold: DEFAULT_THRESHOLD,
            timeout_floor_secs: DEFAULT_TIMEOUT_FLOOR_SECS,
            only_files: Vec::new(),
        }
    }
}

/// Copy the tree at `from` into `to`, skipping VCS metadata and build
/// artifacts. The sweep mutates the copy, never the real tree.
fn copy_tree(from: &Path, to: &Path) -> Result<(), String> {
    let err = |e: std::io::Error, p: &Path| format!("copy {}: {e}", p.display());
    fs::create_dir_all(to).map_err(|e| err(e, to))?;
    let entries = fs::read_dir(from).map_err(|e| err(e, from))?;
    for entry in entries {
        let entry = entry.map_err(|e| err(e, from))?;
        let name = entry.file_name();
        if matches!(
            name.to_str(),
            Some(".git") | Some("target") | Some("node_modules")
        ) {
            continue;
        }
        let src = entry.path();
        let dst = to.join(&name);
        let ty = entry.file_type().map_err(|e| err(e, &src))?;
        if ty.is_dir() {
            copy_tree(&src, &dst)?;
        } else if ty.is_file() {
            fs::copy(&src, &dst).map_err(|e| err(e, &src))?;
        }
        // Symlinks are dropped: nothing the sweep builds follows them.
    }
    Ok(())
}

/// Outcome of one scoped test invocation.
enum RunVerdict {
    Pass(Duration),
    Fail { compile_error: bool },
    TimedOut,
}

/// Classify a finished test run from its exit status and stderr. Split
/// out (and pure) so the compile-vs-test failure heuristic is unit
/// testable without spawning cargo.
fn classify_output(success: bool, stderr: &str) -> RunVerdict {
    if success {
        RunVerdict::Pass(Duration::ZERO)
    } else {
        let compile_error = stderr.contains("error[E")
            || stderr.contains("error: could not compile")
            || stderr.contains("error: expected");
        RunVerdict::Fail { compile_error }
    }
}

/// SIGKILL the whole process group of `pid`. A timed-out `cargo test`
/// has a grandchild test binary spinning in the mutant's infinite loop;
/// killing only cargo would orphan it — and the orphan holds the stderr
/// pipe open, which would block the reader thread forever.
#[cfg(unix)]
fn kill_group(pid: u32) {
    // vesta-lint: allow(swallowed-result, reason = "group kill is best-effort; the direct child.kill() fallback still reaps cargo itself")
    let _ = std::process::Command::new("kill")
        .args(["-9", "--", &format!("-{pid}")])
        .status();
}

#[cfg(not(unix))]
fn kill_group(_pid: u32) {}

/// Run `cargo <args>` in `dir` with a hard timeout. Stdout/stderr are
/// captured; the child (and its process group) is killed on timeout.
fn run_cargo(dir: &Path, args: &[String], target_dir: &Path, timeout: Duration) -> RunVerdict {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let started = Instant::now();
    let mut command = std::process::Command::new(cargo);
    command
        .args(args)
        .current_dir(dir)
        .env("CARGO_TARGET_DIR", target_dir)
        .env("CARGO_TERM_COLOR", "never")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped());
    #[cfg(unix)]
    {
        use std::os::unix::process::CommandExt;
        command.process_group(0);
    }
    let spawned = command.spawn();
    let mut child = match spawned {
        Ok(c) => c,
        Err(_) => {
            return RunVerdict::Fail {
                compile_error: false,
            }
        }
    };
    // Drain stderr on a thread so a chatty build cannot dead-lock the
    // pipe while we poll for exit.
    let mut stderr_pipe = child.stderr.take();
    let reader = std::thread::spawn(move || {
        let mut buf = String::new();
        if let Some(pipe) = stderr_pipe.as_mut() {
            // vesta-lint: allow(swallowed-result, reason = "best-effort capture: a broken stderr pipe just yields an empty classification buffer")
            let _ = pipe.read_to_string(&mut buf);
        }
        buf
    });
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                let stderr = reader.join().unwrap_or_default();
                return match classify_output(status.success(), &stderr) {
                    RunVerdict::Pass(_) => RunVerdict::Pass(started.elapsed()),
                    v => v,
                };
            }
            Ok(None) => {
                if started.elapsed() > timeout {
                    kill_group(child.id());
                    // vesta-lint: allow(swallowed-result, reason = "kill on an already-dead child races benignly; the follow-up wait reaps either way")
                    let _ = child.kill();
                    // vesta-lint: allow(swallowed-result, reason = "reaping after kill; the verdict is TimedOut regardless of the wait result")
                    let _ = child.wait();
                    drop(reader.join());
                    return RunVerdict::TimedOut;
                }
                std::thread::sleep(Duration::from_millis(30));
            }
            Err(_) => {
                drop(reader.join());
                return RunVerdict::Fail {
                    compile_error: false,
                };
            }
        }
    }
}

/// Run the full mutation sweep for `targets` over the workspace at
/// `root`. Returns the ledger; the caller decides where to write it.
pub fn run_sweep(
    root: &Path,
    targets: &[MutationTarget],
    opts: &SweepOptions,
) -> Result<Ledger, String> {
    let selected: Vec<&MutationTarget> = targets
        .iter()
        .filter(|t| opts.only_files.is_empty() || opts.only_files.contains(&t.file))
        .collect();
    if selected.is_empty() {
        return Err("no targets selected (check --file filters)".to_string());
    }

    // One temp checkout for the whole sweep; each mutant rewrites one
    // file and restores it, so the shared incremental target dir stays
    // warm across mutants.
    let scratch = std::env::temp_dir().join(format!("vesta-mutants-{}", std::process::id()));
    // vesta-lint: allow(swallowed-result, reason = "pre-clean of a stale scratch dir; a failure surfaces in the copy_tree right after")
    let _ = fs::remove_dir_all(&scratch);
    let checkout = scratch.join("checkout");
    let target_dir = scratch.join("target");
    copy_tree(root, &checkout)?;

    let mut ledger_targets = Vec::new();
    let mut results: Vec<MutantResult> = Vec::new();
    for target in &selected {
        let abs = root.join(&target.file);
        let bytes =
            fs::read(&abs).map_err(|e| format!("read target {}: {e}", abs.display()))?;
        let src = String::from_utf8(bytes.clone())
            .map_err(|_| format!("target {} is not UTF-8", abs.display()))?;
        ledger_targets.push(((*target).clone(), file_fingerprint(&bytes)));
        let mutants = discover_file(&target.file, &src, opts.exhaustive)?;

        // Baseline: the unmutated tree must pass, and its duration sets
        // the timeout.
        eprintln!(
            "mutants: baseline `cargo {}` for {} ({} mutants)…",
            target.test_args.join(" "),
            target.file,
            mutants.len()
        );
        let baseline = match run_cargo(
            &checkout,
            &target.test_args,
            &target_dir,
            Duration::from_secs(20 * 60),
        ) {
            RunVerdict::Pass(t) => t,
            RunVerdict::TimedOut => {
                return Err(format!("baseline for {} timed out", target.file))
            }
            RunVerdict::Fail { .. } => {
                return Err(format!(
                    "baseline `cargo {}` fails on the unmutated tree; fix the tests first",
                    target.test_args.join(" ")
                ))
            }
        };
        let timeout = (baseline * 3).max(Duration::from_secs(opts.timeout_floor_secs));

        let mutated_path = checkout.join(&target.file);
        for m in mutants {
            let (status, note) = if let Some(reason) = &m.skip_reason {
                (MutantStatus::Skipped, reason.clone())
            } else {
                let mutated = apply_mutant(&src, &m);
                fs::write(&mutated_path, &mutated)
                    .map_err(|e| format!("write mutant {}: {e}", m.id))?;
                let verdict = run_cargo(&checkout, &target.test_args, &target_dir, timeout);
                fs::write(&mutated_path, &src)
                    .map_err(|e| format!("restore {}: {e}", target.file))?;
                match verdict {
                    RunVerdict::Pass(_) => (
                        MutantStatus::Survived,
                        "tests passed under the mutant".to_string(),
                    ),
                    RunVerdict::TimedOut => (
                        MutantStatus::Timeout,
                        format!("no verdict within {}s", timeout.as_secs()),
                    ),
                    RunVerdict::Fail {
                        compile_error: true,
                    } => (MutantStatus::Unviable, "mutant does not compile".to_string()),
                    RunVerdict::Fail {
                        compile_error: false,
                    } => (MutantStatus::Caught, "killed by scoped tests".to_string()),
                }
            };
            eprintln!(
                "mutants: {} {}:{}:{} {} [{}] {}",
                m.id,
                m.file,
                m.line,
                m.col,
                m.op,
                status.label(),
                m.describe()
            );
            results.push(MutantResult {
                mutant: m,
                status,
                note,
            });
        }
    }
    // vesta-lint: allow(swallowed-result, reason = "scratch cleanup is best-effort; the OS temp dir reaps leftovers")
    let _ = fs::remove_dir_all(&scratch);

    let summary = MutantSummary::tally(&results);
    Ok(Ledger {
        threshold: opts.threshold,
        exhaustive: opts.exhaustive,
        targets: ledger_targets,
        results,
        summary,
    })
}

// ---------------------------------------------------------------------------
// Ledger serialization
// ---------------------------------------------------------------------------

impl Ledger {
    /// Render the ledger as the pretty `MUTANTS.json` document.
    pub fn render_json(&self) -> String {
        let num = |n: usize| JsonValue::Num(n as f64);
        let targets = self
            .targets
            .iter()
            .map(|(t, hash)| {
                JsonValue::Object(vec![
                    ("file".into(), JsonValue::Str(t.file.clone())),
                    ("package".into(), JsonValue::Str(t.package.clone())),
                    (
                        "test_cmd".into(),
                        JsonValue::Str(format!("cargo {}", t.test_args.join(" "))),
                    ),
                    ("hash".into(), JsonValue::Str(hash.clone())),
                ])
            })
            .collect();
        let mutants = self
            .results
            .iter()
            .map(|r| {
                JsonValue::Object(vec![
                    ("id".into(), JsonValue::Str(r.mutant.id.clone())),
                    ("file".into(), JsonValue::Str(r.mutant.file.clone())),
                    ("line".into(), num(r.mutant.line as usize)),
                    ("col".into(), num(r.mutant.col as usize)),
                    ("op".into(), JsonValue::Str(r.mutant.op.to_string())),
                    ("replace".into(), JsonValue::Str(r.mutant.describe())),
                    (
                        "status".into(),
                        JsonValue::Str(r.status.label().to_string()),
                    ),
                    ("note".into(), JsonValue::Str(r.note.clone())),
                ])
            })
            .collect();
        let summary = JsonValue::Object(vec![
            ("total".into(), num(self.summary.total)),
            ("caught".into(), num(self.summary.caught)),
            ("survived".into(), num(self.summary.survived)),
            ("timeout".into(), num(self.summary.timeout)),
            ("unviable".into(), num(self.summary.unviable)),
            ("skipped".into(), num(self.summary.skipped)),
            (
                "score".into(),
                JsonValue::Num((self.summary.score * 1e4).round() / 1e4),
            ),
        ]);
        JsonValue::Object(vec![
            ("schema".into(), JsonValue::Str(SCHEMA.to_string())),
            ("threshold".into(), JsonValue::Num(self.threshold)),
            ("exhaustive".into(), JsonValue::Bool(self.exhaustive)),
            ("targets".into(), JsonValue::Array(targets)),
            ("summary".into(), summary),
            ("mutants".into(), JsonValue::Array(mutants)),
        ])
        .to_json_pretty()
    }

    /// Human summary table.
    pub fn render_summary(&self) -> String {
        let s = &self.summary;
        let mut out = String::new();
        for (t, hash) in &self.targets {
            let _ = writeln!(out, "target {} ({}) {}", t.file, t.package, hash);
        }
        let _ = writeln!(
            out,
            "mutants: {} total | {} caught + {} timeout / {} survived / {} skipped / {} unviable",
            s.total, s.caught, s.timeout, s.survived, s.skipped, s.unviable
        );
        let _ = writeln!(
            out,
            "score: {:.1}% (threshold {:.0}%)",
            s.score * 100.0,
            self.threshold * 100.0
        );
        out
    }

    /// True when the sweep meets the gate: no survivors and score at or
    /// above threshold.
    pub fn is_clean(&self) -> bool {
        self.summary.survived == 0 && self.summary.score + 1e-9 >= self.threshold
    }
}

fn field<'a>(obj: &'a JsonValue, key: &str, ctx: &str) -> Result<&'a JsonValue, String> {
    obj.get(key)
        .ok_or_else(|| format!("ledger {ctx}: missing `{key}`"))
}

fn str_field(obj: &JsonValue, key: &str, ctx: &str) -> Result<String, String> {
    field(obj, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("ledger {ctx}: `{key}` must be a string"))
}

fn num_field(obj: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    field(obj, key, ctx)?
        .as_f64()
        .filter(|n| n.is_finite())
        .ok_or_else(|| format!("ledger {ctx}: `{key}` must be a number"))
}

/// Parsed essentials of a committed ledger (what `--check` validates).
#[derive(Debug)]
pub struct ParsedLedger {
    /// Gate threshold recorded at sweep time.
    pub threshold: f64,
    /// Discovery granularity recorded at sweep time.
    pub exhaustive: bool,
    /// `(file, package, hash)` per target.
    pub targets: Vec<(String, String, String)>,
    /// `(file, line, col, op, status)` per mutant.
    pub mutants: Vec<(String, u32, u32, String, MutantStatus)>,
    /// Committed summary block, re-derived during `--check`.
    pub summary: MutantSummary,
}

/// Parse `MUTANTS.json` text.
pub fn parse_ledger(text: &str) -> Result<ParsedLedger, String> {
    let doc = vesta_obs::json::parse(text).map_err(|e| format!("ledger: {e}"))?;
    let schema = str_field(&doc, "schema", "root")?;
    if schema != SCHEMA {
        return Err(format!("ledger schema `{schema}`, expected `{SCHEMA}`"));
    }
    let threshold = num_field(&doc, "threshold", "root")?;
    let exhaustive = field(&doc, "exhaustive", "root")?
        .as_bool()
        .ok_or("ledger root: `exhaustive` must be a bool")?;
    let mut targets = Vec::new();
    for t in field(&doc, "targets", "root")?
        .as_array()
        .ok_or("ledger root: `targets` must be an array")?
    {
        targets.push((
            str_field(t, "file", "target")?,
            str_field(t, "package", "target")?,
            str_field(t, "hash", "target")?,
        ));
    }
    let mut mutants = Vec::new();
    for m in field(&doc, "mutants", "root")?
        .as_array()
        .ok_or("ledger root: `mutants` must be an array")?
    {
        let status_str = str_field(m, "status", "mutant")?;
        let status = MutantStatus::from_label(&status_str)
            .ok_or_else(|| format!("ledger mutant: unknown status `{status_str}`"))?;
        mutants.push((
            str_field(m, "file", "mutant")?,
            num_field(m, "line", "mutant")? as u32,
            num_field(m, "col", "mutant")? as u32,
            str_field(m, "op", "mutant")?,
            status,
        ));
    }
    let s = field(&doc, "summary", "root")?;
    let summary = MutantSummary {
        total: num_field(s, "total", "summary")? as usize,
        caught: num_field(s, "caught", "summary")? as usize,
        survived: num_field(s, "survived", "summary")? as usize,
        timeout: num_field(s, "timeout", "summary")? as usize,
        unviable: num_field(s, "unviable", "summary")? as usize,
        skipped: num_field(s, "skipped", "summary")? as usize,
        score: num_field(s, "score", "summary")?,
    };
    Ok(ParsedLedger {
        threshold,
        exhaustive,
        targets,
        mutants,
        summary,
    })
}

// ---------------------------------------------------------------------------
// The --check gate
// ---------------------------------------------------------------------------

/// Validate the committed ledger at `ledger_path` against the tree at
/// `root`, offline: no cargo runs. Checks, in order —
///
/// 1. the ledger parses and carries the current schema;
/// 2. every target file's fingerprint matches the ledger (stale ledgers
///    after edits to a target file fail loudly);
/// 3. re-running discovery reproduces exactly the ledger's site set, and
///    `skipped` statuses line up 1:1 with in-source skip directives;
/// 4. zero mutants are `survived`;
/// 5. the recomputed score matches the committed summary and meets the
///    ledger's threshold.
///
/// Returns a human report; `Err` carries the first violation.
pub fn check_ledger(root: &Path, ledger_path: &Path) -> Result<String, String> {
    let text = fs::read_to_string(ledger_path)
        .map_err(|e| format!("read {}: {e}", ledger_path.display()))?;
    let ledger = parse_ledger(&text)?;

    let mut discovered: BTreeMap<(String, u32, u32, String), Option<String>> = BTreeMap::new();
    for (file, _package, hash) in &ledger.targets {
        let abs = root.join(file);
        let bytes = fs::read(&abs).map_err(|e| format!("read target {}: {e}", abs.display()))?;
        let now = file_fingerprint(&bytes);
        if &now != hash {
            return Err(format!(
                "{file} changed since the ledger was generated ({hash} -> {now}); \
                 re-run `vesta-xtask mutants` and commit the fresh MUTANTS.json"
            ));
        }
        let src = String::from_utf8(bytes).map_err(|_| format!("{file} is not UTF-8"))?;
        for m in discover_file(file, &src, ledger.exhaustive)? {
            discovered.insert((m.file, m.line, m.col, m.op.to_string()), m.skip_reason);
        }
    }

    let mut ledger_sites = BTreeMap::new();
    for (file, line, col, op, status) in &ledger.mutants {
        ledger_sites.insert((file.clone(), *line, *col, op.clone()), *status);
    }
    for key in discovered.keys() {
        if !ledger_sites.contains_key(key) {
            return Err(format!(
                "discovered mutant {}:{}:{} {} is missing from the ledger; re-run the sweep",
                key.0, key.1, key.2, key.3
            ));
        }
    }
    for (key, status) in &ledger_sites {
        let Some(skip) = discovered.get(key) else {
            return Err(format!(
                "ledger mutant {}:{}:{} {} no longer discoverable; re-run the sweep",
                key.0, key.1, key.2, key.3
            ));
        };
        match (status, skip) {
            (MutantStatus::Skipped, None) => {
                return Err(format!(
                    "{}:{} is `skipped` in the ledger but carries no \
                     `vesta-mutants: skip(reason = …)` directive",
                    key.0, key.1
                ))
            }
            (s, Some(_)) if *s != MutantStatus::Skipped => {
                return Err(format!(
                    "{}:{} carries a skip directive but the ledger ran it ({}); re-run the sweep",
                    key.0,
                    key.1,
                    s.label()
                ))
            }
            _ => {}
        }
    }

    if let Some((file, line, col, op, _)) = ledger
        .mutants
        .iter()
        .find(|(.., status)| *status == MutantStatus::Survived)
    {
        return Err(format!(
            "surviving mutant at {file}:{line}:{col} ({op}); kill it with a test \
             or justify a `vesta-mutants: skip(reason = …)`"
        ));
    }

    let mut recount = MutantSummary {
        total: ledger.mutants.len(),
        ..Default::default()
    };
    for (.., status) in &ledger.mutants {
        match status {
            MutantStatus::Caught => recount.caught += 1,
            MutantStatus::Survived => recount.survived += 1,
            MutantStatus::Timeout => recount.timeout += 1,
            MutantStatus::Unviable => recount.unviable += 1,
            MutantStatus::Skipped => recount.skipped += 1,
        }
    }
    let killed = recount.caught + recount.timeout;
    let denom = killed + recount.survived + recount.skipped;
    let score = if denom == 0 {
        1.0
    } else {
        killed as f64 / denom as f64
    };
    let committed = ledger.summary;
    if committed.total != recount.total
        || committed.caught != recount.caught
        || committed.survived != recount.survived
        || committed.timeout != recount.timeout
        || committed.unviable != recount.unviable
        || committed.skipped != recount.skipped
        || (committed.score - score).abs() > 1e-3
    {
        return Err(format!(
            "ledger summary disagrees with its own mutant list \
             (committed score {:.4}, recomputed {score:.4}); re-run the sweep",
            committed.score
        ));
    }
    if score + 1e-9 < ledger.threshold {
        return Err(format!(
            "mutation score {:.1}% below threshold {:.1}%",
            score * 100.0,
            ledger.threshold * 100.0
        ));
    }

    Ok(format!(
        "mutants-check: {} sites across {} target(s); {} caught + {} timeout, \
         {} skipped, {} unviable; score {:.1}% >= {:.0}% — ok\n",
        recount.total,
        ledger.targets.len(),
        recount.caught,
        recount.timeout,
        recount.skipped,
        recount.unviable,
        score * 100.0,
        ledger.threshold * 100.0
    ))
}

/// Render the `--list` table of discovered mutants (no cargo runs).
pub fn render_list(root: &Path, targets: &[MutationTarget], exhaustive: bool) -> Result<String, String> {
    let mut out = String::new();
    let mut total = 0usize;
    for t in targets {
        let abs = root.join(&t.file);
        let src = fs::read_to_string(&abs)
            .map_err(|e| format!("read target {}: {e}", abs.display()))?;
        let mutants = discover_file(&t.file, &src, exhaustive)?;
        for m in &mutants {
            let skip = match &m.skip_reason {
                Some(r) => format!(" [skip: {r}]"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "{}\t{}:{}:{}\t{}\t{}{}",
                m.id,
                m.file,
                m.line,
                m.col,
                m.op,
                m.describe(),
                skip
            );
        }
        total += mutants.len();
    }
    let _ = writeln!(out, "{total} mutant(s) across {} target(s)", targets.len());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn discover(src: &str) -> Vec<Mutant> {
        discover_file("crates/demo/src/lib.rs", src, false).unwrap()
    }

    fn ops_at(mutants: &[Mutant], line: u32) -> Vec<&str> {
        mutants
            .iter()
            .filter(|m| m.line == line)
            .map(|m| m.op)
            .collect()
    }

    #[test]
    fn comparison_and_logic_swaps_are_discovered() {
        let src = "pub fn f(a: u32, b: u32) -> bool {\n    let lo = a <= b;\n    let hi = a > b;\n    lo && hi\n}\n";
        let ms = discover(src);
        assert_eq!(ops_at(&ms, 2), vec!["cmp-swap"]);
        assert_eq!(ops_at(&ms, 3), vec!["cmp-swap"]);
        assert_eq!(ops_at(&ms, 4), vec!["logic-swap"]);
        let le = ms.iter().find(|m| m.line == 2).unwrap();
        assert_eq!((le.original.as_str(), le.replacement.as_str()), ("<=", "<"));
        // The fn-stub for `-> bool` rides along.
        assert!(ms.iter().any(|m| m.op == "fn-stub" && m.replacement == "{ false }"));
    }

    #[test]
    fn generics_arrows_and_compound_assignment_are_not_sites() {
        let src = "pub fn f(v: Vec<u32>) -> Option<u32> {\n    let mut acc = 0u32;\n    acc += 1;\n    v.first().copied().map(|x| x.wrapping_add(acc))\n}\n";
        let ms = discover(src);
        // No operator mutants at all: `Vec<u32>`, `->`, `+=` and closure
        // pipes are all excluded contexts. Only the const 0u32 / 1 sites
        // and the Option stub remain.
        assert!(ms.iter().all(|m| m.op != "cmp-swap" && m.op != "arith-swap"));
        assert!(ms.iter().any(|m| m.op == "fn-stub" && m.replacement == "{ None }"));
    }

    #[test]
    fn const_perturbation_hits_plain_integers_only() {
        let src = "pub fn f(x: f64) -> f64 {\n    let cap = 120;\n    let scale = 0.75;\n    let mask = 0xFF;\n    x * scale + cap as f64 + mask as f64\n}\n";
        let ms = discover(src);
        let consts: Vec<&Mutant> = ms.iter().filter(|m| m.op == "const-perturb").collect();
        assert_eq!(consts.len(), 1, "{consts:?}");
        assert_eq!(consts[0].original, "120");
        assert_eq!(consts[0].replacement, "121");
        assert_eq!(consts[0].line, 2);
    }

    #[test]
    fn suffixed_integers_keep_their_suffix() {
        let src = "pub fn f() {\n    let a = 7u32;\n    assert_ne!(a, 0);\n}\n";
        let ms = discover(src);
        let c = ms.iter().find(|m| m.op == "const-perturb").unwrap();
        assert_eq!((c.original.as_str(), c.replacement.as_str()), ("7u32", "8u32"));
    }

    #[test]
    fn line_granular_keeps_first_site_exhaustive_keeps_all() {
        let src = "pub fn f(a: f64, b: f64, c: f64) -> f64 {\n    a * b + c * c\n}\n";
        let line = |ms: &[Mutant]| {
            ms.iter()
                .filter(|m| m.line == 2 && m.op == "arith-swap")
                .count()
        };
        let granular = discover(src);
        assert_eq!(line(&granular), 1);
        let all = discover_file("crates/demo/src/lib.rs", src, true).unwrap();
        assert_eq!(line(&all), 3);
    }

    #[test]
    fn test_regions_are_never_mutated() {
        let src = "pub fn f(a: u32) -> u32 {\n    a + 1\n}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        assert_eq!(super::f(1), 2);\n        assert!(1 + 1 == 2);\n    }\n}\n";
        let ms = discover(src);
        assert!(ms.iter().all(|m| m.line <= 3), "{ms:?}");
    }

    #[test]
    fn skip_directive_marks_sites_and_requires_reason() {
        let src = "pub fn f(a: u32) -> u32 {\n    // vesta-mutants: skip(reason = \"documented tuning constant\")\n    a + 3\n}\n";
        let ms = discover(src);
        let site = ms.iter().find(|m| m.line == 3).unwrap();
        assert_eq!(site.skip_reason.as_deref(), Some("documented tuning constant"));
        // The fn line is NOT covered by a directive two lines up.
        let stub = ms.iter().find(|m| m.op == "fn-stub").unwrap();
        assert!(stub.skip_reason.is_none());

        let bad = "pub fn f() {\n    // vesta-mutants: skip\n}\n";
        assert!(discover_file("x.rs", bad, false).is_err());
        let no_reason = "pub fn f() {\n    // vesta-mutants: skip(reason = \"\")\n}\n";
        assert!(discover_file("x.rs", no_reason, false).is_err());
    }

    #[test]
    fn apply_splices_the_span_exactly() {
        let src = "fn f(a: u32, b: u32) -> bool {\n    a < b\n}\n";
        let ms = discover(src);
        let lt = ms.iter().find(|m| m.op == "cmp-swap").unwrap();
        let mutated = apply_mutant(src, lt);
        assert!(mutated.contains("a <= b"), "{mutated}");
        assert_eq!(mutated.len(), src.len() + 1);
    }

    #[test]
    fn fn_stub_replaces_whole_body() {
        let src = "pub fn g(n: u64) -> u64 {\n    let mut s = 0;\n    for i in 0..n {\n        s += i;\n    }\n    s\n}\n";
        let ms = discover(src);
        let stub = ms.iter().find(|m| m.op == "fn-stub").unwrap();
        let mutated = apply_mutant(src, stub);
        assert_eq!(mutated, "pub fn g(n: u64) -> u64 { 0 }\n");
    }

    #[test]
    fn unit_and_result_unit_fns_get_stubs_unknown_types_do_not() {
        let src = "pub fn a(x: &mut Vec<u32>) {\n    x.push(1);\n}\npub fn b() -> Result<(), String> {\n    Err(\"nope\".into())\n}\npub fn c() -> std::time::Duration {\n    std::time::Duration::ZERO\n}\n";
        let ms = discover(src);
        let stubs: Vec<&Mutant> = ms.iter().filter(|m| m.op == "fn-stub").collect();
        assert_eq!(stubs.len(), 2, "{stubs:?}");
        assert_eq!(stubs[0].replacement, "{}");
        assert_eq!(stubs[1].replacement, "{ Ok(()) }");
    }

    #[test]
    fn ids_are_stable_and_ordered() {
        let src = "pub fn f(a: u32, b: u32) -> bool {\n    a < b\n}\n";
        let ms = discover(src);
        assert!(ms.iter().enumerate().all(|(i, m)| {
            m.id == format!("lib-{:03}", i + 1)
        }));
        let again = discover(src);
        assert_eq!(ms, again);
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let a = file_fingerprint(b"hello");
        assert_eq!(a, file_fingerprint(b"hello"));
        assert_ne!(a, file_fingerprint(b"hellp"));
        assert!(a.starts_with("fnv1a64:"));
        assert_eq!(a.len(), "fnv1a64:".len() + 16);
    }

    #[test]
    fn classify_distinguishes_compile_errors_from_test_failures() {
        assert!(matches!(
            classify_output(false, "error[E0308]: mismatched types"),
            RunVerdict::Fail { compile_error: true }
        ));
        assert!(matches!(
            classify_output(false, "error: could not compile `demo`"),
            RunVerdict::Fail { compile_error: true }
        ));
        assert!(matches!(
            classify_output(false, "test t ... FAILED\nfailures:\n    t"),
            RunVerdict::Fail { compile_error: false }
        ));
        assert!(matches!(classify_output(true, ""), RunVerdict::Pass(_)));
    }

    #[test]
    fn summary_score_counts_timeouts_as_caught_and_skips_against() {
        let m = |status| MutantResult {
            mutant: Mutant {
                id: "x-001".into(),
                file: "f.rs".into(),
                line: 1,
                col: 1,
                op: "cmp-swap",
                original: "<".into(),
                replacement: "<=".into(),
                span: (0, 1),
                skip_reason: None,
            },
            status,
            note: String::new(),
        };
        let results = vec![
            m(MutantStatus::Caught),
            m(MutantStatus::Caught),
            m(MutantStatus::Timeout),
            m(MutantStatus::Skipped),
            m(MutantStatus::Unviable),
        ];
        let s = MutantSummary::tally(&results);
        assert_eq!((s.caught, s.timeout, s.skipped, s.unviable), (2, 1, 1, 1));
        // (2 + 1) / (2 + 1 + 0 + 1): unviable excluded from the denominator.
        assert!((s.score - 0.75).abs() < 1e-12);
        assert_eq!(MutantSummary::tally(&[]).score, 1.0);
    }

    #[test]
    fn ledger_json_round_trips_through_parse() {
        let mutant = Mutant {
            id: "lib-001".into(),
            file: "crates/demo/src/lib.rs".into(),
            line: 2,
            col: 7,
            op: "cmp-swap",
            original: "<".into(),
            replacement: "<=".into(),
            span: (30, 31),
            skip_reason: None,
        };
        let ledger = Ledger {
            threshold: 0.8,
            exhaustive: false,
            targets: vec![(
                MutationTarget {
                    file: "crates/demo/src/lib.rs".into(),
                    package: "demo".into(),
                    test_args: vec!["test".into(), "-p".into(), "demo".into()],
                },
                file_fingerprint(b"demo"),
            )],
            results: vec![MutantResult {
                mutant,
                status: MutantStatus::Caught,
                note: "killed by scoped tests".into(),
            }],
            summary: MutantSummary {
                total: 1,
                caught: 1,
                score: 1.0,
                ..Default::default()
            },
        };
        let text = ledger.render_json();
        let parsed = parse_ledger(&text).unwrap();
        assert_eq!(parsed.threshold, 0.8);
        assert!(!parsed.exhaustive);
        assert_eq!(parsed.targets.len(), 1);
        assert_eq!(
            parsed.mutants,
            vec![(
                "crates/demo/src/lib.rs".to_string(),
                2,
                7,
                "cmp-swap".to_string(),
                MutantStatus::Caught
            )]
        );
        assert_eq!(parsed.summary.caught, 1);
        assert!(parsed.summary.score >= 1.0 - 1e-9);
    }

    #[test]
    fn parse_ledger_rejects_foreign_schemas_and_bad_statuses() {
        assert!(parse_ledger("{\"schema\": \"other/9\"}").is_err());
        let bad_status = "{\"schema\": \"vesta-mutants/1\", \"threshold\": 0.8, \
             \"exhaustive\": false, \"targets\": [], \"summary\": {\"total\": 0, \
             \"caught\": 0, \"survived\": 0, \"timeout\": 0, \"unviable\": 0, \
             \"skipped\": 0, \"score\": 1}, \"mutants\": [{\"file\": \"f\", \
             \"line\": 1, \"col\": 1, \"op\": \"cmp-swap\", \"status\": \"vibing\"}]}";
        let err = parse_ledger(bad_status).unwrap_err();
        assert!(err.contains("unknown status"), "{err}");
    }
}
