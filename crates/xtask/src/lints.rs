//! The Vesta invariant-lint catalogue.
//!
//! Every lint is a named token-pattern check over the lexed source of one
//! workspace file, scoped by crate and file role. The catalogue encodes the
//! determinism and panic-safety invariants the reproduction's headline
//! claims rest on (see DESIGN.md "Invariant catalogue"); `lib.rs` drives
//! the passes and applies `// vesta-lint: allow(...)` suppressions.

use crate::lexer::{Kind, Token};
use crate::workspace::{FileRole, SourceFile};
use std::collections::BTreeSet;

/// Machine name of every lint, in catalogue order.
pub const LINT_NAMES: [&str; 8] = [
    "nondeterministic-map",
    "unseeded-rng",
    "float-total-order",
    "panic-in-lib",
    "wallclock-in-core",
    "error-hygiene",
    "swallowed-result",
    "invalid-allow",
];

/// True when `name` is a known lint (including the directive meta-lint).
pub fn is_known_lint(name: &str) -> bool {
    LINT_NAMES.contains(&name)
}

/// One diagnostic produced by the pass.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Lint name from [`LINT_NAMES`].
    pub lint: &'static str,
    /// Human diagnostic.
    pub message: String,
}

/// The four crates whose model-state / snapshot / serialization paths carry
/// the bit-identity claims (`FaultPlan::none()`, batch == sequential,
/// journal replay).
const DETERMINISM_CRATES: [&str; 4] = ["core", "ml", "graph", "cloud-sim"];

fn is_determinism_crate(krate: &str) -> bool {
    DETERMINISM_CRATES.contains(&krate)
}

/// Hash-container iteration methods whose visit order is the hasher's.
const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Identifiers declared with a `HashMap`/`HashSet` type somewhere in a
/// crate (fields, lets, params). An over-approximation is fine: a false
/// positive needs one justified allow, a false negative silently ships a
/// nondeterministic snapshot.
#[derive(Debug, Default)]
pub struct HashNames {
    names: BTreeSet<String>,
}

impl HashNames {
    /// Scan one file for hash-typed declarations and fold them in.
    pub fn collect(&mut self, tokens: &[Token]) {
        let mut i = 0;
        while i < tokens.len() {
            // `name : [path ::] HashMap <` and `name : [path ::] HashSet <`
            if let Some(name) = tokens[i].ident() {
                if tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && !tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                {
                    let mut j = i + 2;
                    // Skip path prefixes (`std :: collections ::`), `&`.
                    loop {
                        match tokens.get(j).map(|t| &t.kind) {
                            Some(Kind::Punct('&')) => j += 1,
                            Some(Kind::Ident(id)) if id == "HashMap" || id == "HashSet" => {
                                self.names.insert(name.to_string());
                                break;
                            }
                            Some(Kind::Ident(_))
                                if tokens.get(j + 1).is_some_and(|t| t.is_punct(':'))
                                    && tokens.get(j + 2).is_some_and(|t| t.is_punct(':')) =>
                            {
                                j += 3;
                            }
                            _ => break,
                        }
                    }
                }
                // `let name = HashMap :: new ( … )` / `HashSet :: with_capacity`
                if name == "let" {
                    if let Some(bound) = tokens.get(i + 1).and_then(|t| t.ident()) {
                        let mut j = i + 2;
                        if tokens.get(j).is_some_and(|t| t.is_punct('=')) {
                            j += 1;
                            if tokens
                                .get(j)
                                .and_then(|t| t.ident())
                                .is_some_and(|id| id == "HashMap" || id == "HashSet")
                            {
                                self.names.insert(bound.to_string());
                            }
                        }
                    }
                }
            }
            i += 1;
        }
    }

    fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }
}

/// Function names declared with a `Result`-bearing return type somewhere
/// in a crate. Like [`HashNames`], an over-approximation: a false
/// positive costs one justified allow, a false negative silently drops
/// an error on the floor.
#[derive(Debug, Default)]
pub struct ResultFns {
    names: BTreeSet<String>,
}

impl ResultFns {
    /// Scan one file for `fn name(…) -> … Result …` signatures (free
    /// functions, methods and trait declarations alike) and fold the
    /// names in.
    pub fn collect(&mut self, tokens: &[Token]) {
        let mut i = 0;
        while i < tokens.len() {
            if tokens[i].is_ident("fn") {
                if let Some(name) = tokens.get(i + 1).and_then(|t| t.ident()) {
                    let mut j = i + 2;
                    let mut after_arrow = false;
                    while j < tokens.len() {
                        match &tokens[j].kind {
                            Kind::Punct('{') | Kind::Punct(';') => break,
                            Kind::Punct('-')
                                if tokens.get(j + 1).is_some_and(|t| t.is_punct('>')) =>
                            {
                                after_arrow = true;
                                j += 2;
                                continue;
                            }
                            Kind::Ident(id) if after_arrow && id == "where" => break,
                            Kind::Ident(id) if after_arrow && id == "Result" => {
                                self.names.insert(name.to_string());
                                break;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
            }
            i += 1;
        }
    }

    fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }
}

/// Context handed to each lint for one file.
pub struct FileCtx<'a> {
    pub file: &'a SourceFile,
    pub tokens: &'a [Token],
    /// Token-index ranges inside `#[cfg(test)]` / `#[test]` items.
    pub test_regions: &'a [(usize, usize)],
    /// Hash-typed identifiers of this file's crate.
    pub hash_names: &'a HashNames,
    /// Per-crate names of `impl` targets that define `fn is_transient`.
    pub transient_impls: &'a BTreeSet<String>,
    /// Per-crate names of functions whose return type mentions `Result`.
    pub result_fns: &'a ResultFns,
}

impl FileCtx<'_> {
    fn in_test_region(&self, idx: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| idx >= a && idx < b)
    }

    fn finding(&self, idx: usize, lint: &'static str, message: String) -> Finding {
        let t = &self.tokens[idx];
        Finding {
            file: self.file.rel_path.clone(),
            line: t.line,
            col: t.col,
            lint,
            message,
        }
    }
}

/// Compute the `#[cfg(test)]`/`#[test]`-gated token-index ranges of a file:
/// an attribute whose identifier list contains `test` or `bench` gates the
/// item that follows it (through the matching close brace, or to the `;`
/// for brace-less items).
pub fn test_regions(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let (attr_end, gated) = scan_attribute(tokens, i + 2);
            if gated {
                let start = i;
                let end = skip_item(tokens, attr_end);
                regions.push((start, end));
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    regions
}

/// Scan an attribute body starting after `#[`; returns (index after the
/// closing `]`, whether the attribute mentions ident `test`/`bench`).
fn scan_attribute(tokens: &[Token], mut i: usize) -> (usize, bool) {
    let mut depth = 1usize; // the `[` already consumed
    let mut gated = false;
    while i < tokens.len() {
        match &tokens[i].kind {
            Kind::Punct('[') => depth += 1,
            Kind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (i + 1, gated);
                }
            }
            Kind::Ident(id) if id == "test" || id == "bench" => gated = true,
            _ => {}
        }
        i += 1;
    }
    (i, gated)
}

/// Skip the item that starts at `i` (possibly more attributes first):
/// returns the index one past its closing `}` or `;`.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let (end, _) = scan_attribute(tokens, i + 2);
        i = end;
    }
    let mut brace_depth = 0usize;
    let mut entered = false;
    while i < tokens.len() {
        match &tokens[i].kind {
            Kind::Punct('{') => {
                brace_depth += 1;
                entered = true;
            }
            Kind::Punct('}') => {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    return i + 1;
                }
            }
            Kind::Punct(';') if !entered => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Run every applicable lint over one file.
pub fn run_file(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    nondeterministic_map(ctx, &mut findings);
    unseeded_rng(ctx, &mut findings);
    float_total_order(ctx, &mut findings);
    panic_in_lib(ctx, &mut findings);
    wallclock_in_core(ctx, &mut findings);
    error_hygiene(ctx, &mut findings);
    swallowed_result(ctx, &mut findings);
    findings
}

/// **nondeterministic-map** — in the determinism crates' library code, no
/// ordered traversal of `HashMap`/`HashSet` may reach model state,
/// snapshots or serialized output: (a) iteration methods on hash-typed
/// receivers, (b) `for … in` over hash-typed names, (c) hash containers
/// inside `#[derive(Serialize/Deserialize)]` structs (serde walks them in
/// hasher order). Keyed access is fine; ordered iteration must go through
/// `BTreeMap`/`BTreeSet` or an explicit sort.
fn nondeterministic_map(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !is_determinism_crate(&ctx.file.krate) || ctx.file.role != FileRole::Lib {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test_region(i) {
            continue;
        }
        // (a) `<hash-name> . iter ( …`
        if toks[i].is_punct('.') {
            let recv = i.checked_sub(1).and_then(|p| toks[p].ident());
            let method = toks.get(i + 1).and_then(|t| t.ident());
            let called = toks.get(i + 2).is_some_and(|t| t.is_punct('('));
            if let (Some(recv), Some(method), true) = (recv, method, called) {
                if ctx.hash_names.contains(recv) && HASH_ITER_METHODS.contains(&method) {
                    out.push(ctx.finding(
                        i + 1,
                        "nondeterministic-map",
                        format!(
                            "`.{method}()` on hash-typed `{recv}` visits entries in hasher \
                             order; iterate a `BTreeMap`/`BTreeSet` or sort explicitly"
                        ),
                    ));
                }
            }
        }
        // (b) `for … in [& [mut]] <hash-name> {`
        if toks[i].is_ident("in") {
            let mut j = i + 1;
            while toks
                .get(j)
                .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
            {
                j += 1;
            }
            if let Some(name) = toks.get(j).and_then(|t| t.ident()) {
                if ctx.hash_names.contains(name) && toks.get(j + 1).is_some_and(|t| t.is_punct('{'))
                {
                    out.push(ctx.finding(
                        j,
                        "nondeterministic-map",
                        format!(
                            "`for` loop over hash-typed `{name}` visits entries in hasher \
                             order; iterate a `BTreeMap`/`BTreeSet` or sort explicitly"
                        ),
                    ));
                }
            }
        }
    }
    // (c) hash containers inside serde-derived structs.
    serde_struct_regions(toks, |start, end| {
        for (k, tok) in toks.iter().enumerate().take(end).skip(start) {
            if ctx.in_test_region(k) {
                continue;
            }
            if let Some(id) = tok.ident() {
                if id == "HashMap" || id == "HashSet" {
                    out.push(ctx.finding(
                        k,
                        "nondeterministic-map",
                        format!(
                            "`{id}` field inside a `#[derive(Serialize)]` struct serializes \
                             in hasher order; use `BTreeMap`/`BTreeSet` for stable output"
                        ),
                    ));
                }
            }
        }
    });
}

/// Invoke `f(start, end)` with the token range of every struct/enum body
/// whose derive list contains `Serialize` or `Deserialize`.
fn serde_struct_regions(tokens: &[Token], mut f: impl FnMut(usize, usize)) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_start = i + 2;
            let (attr_end, _) = scan_attribute(tokens, attr_start);
            let is_serde_derive = tokens.get(attr_start).is_some_and(|t| t.is_ident("derive"))
                && tokens[attr_start..attr_end]
                    .iter()
                    .any(|t| t.is_ident("Serialize") || t.is_ident("Deserialize"));
            if is_serde_derive {
                let end = skip_item(tokens, attr_end);
                f(attr_end, end);
                i = end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
}

/// **unseeded-rng** — outside the bench crate, all randomness must flow
/// from seeded `StdRng` streams: no `thread_rng()`, `from_entropy()`,
/// `OsRng`, or `rand::random`.
fn unseeded_rng(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.file.krate == "bench" {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        let Some(id) = toks[i].ident() else { continue };
        let hit = match id {
            "thread_rng" | "from_entropy" | "OsRng" => true,
            "random" => {
                // `rand :: random`
                i >= 3
                    && toks[i - 1].is_punct(':')
                    && toks[i - 2].is_punct(':')
                    && toks[i - 3].is_ident("rand")
            }
            _ => false,
        };
        if hit {
            out.push(ctx.finding(
                i,
                "unseeded-rng",
                format!(
                    "`{id}` draws from ambient entropy; every random stream must be a \
                     seeded `StdRng` so reruns are bit-identical"
                ),
            ));
        }
    }
}

/// **float-total-order** — in scoring paths (determinism crates plus the
/// baselines they are compared against), float ranking must use
/// `total_cmp`: no `partial_cmp` and no `f64::max`/`f64::min`-style path
/// calls (which silently drop NaN instead of ordering it).
fn float_total_order(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let in_scope = is_determinism_crate(&ctx.file.krate) || ctx.file.krate == "baselines";
    if !in_scope || ctx.file.role != FileRole::Lib {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test_region(i) {
            continue;
        }
        let Some(id) = toks[i].ident() else { continue };
        if id == "partial_cmp" {
            out.push(
                ctx.finding(
                    i,
                    "float-total-order",
                    "`partial_cmp` on floats yields `None` for NaN and destabilizes ranking; \
                 use `total_cmp`"
                        .to_string(),
                ),
            );
        }
        if (id == "max" || id == "min")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3]
                .ident()
                .is_some_and(|t| t == "f64" || t == "f32")
        {
            out.push(ctx.finding(
                i,
                "float-total-order",
                format!(
                    "`{}::{id}` silently drops NaN; rank through `total_cmp` so corrupt \
                     samples surface as errors, not reordered results",
                    toks[i - 3].ident().unwrap_or("f64")
                ),
            ));
        }
    }
}

/// **panic-in-lib** — library code must not panic on reachable paths: no
/// `unwrap()` / `expect(…)` / `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!` outside test and bench code. Invariant-guarded uses
/// carry a `vesta-lint: allow` with the proof in its reason.
fn panic_in_lib(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.file.krate == "bench" || ctx.file.role != FileRole::Lib {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test_region(i) {
            continue;
        }
        let Some(id) = toks[i].ident() else { continue };
        match id {
            "unwrap" | "expect"
                if i >= 1
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) =>
            {
                out.push(ctx.finding(
                    i,
                    "panic-in-lib",
                    format!(
                        "`.{id}(…)` panics in library code; return a typed `VestaError`/\
                         crate error, or justify the invariant with an allow"
                    ),
                ));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if toks.get(i + 1).is_some_and(|t| t.is_punct('!')) =>
            {
                out.push(ctx.finding(
                    i,
                    "panic-in-lib",
                    format!("`{id}!` aborts the caller; surface a typed error instead"),
                ));
            }
            _ => {}
        }
    }
}

/// **wallclock-in-core** — deterministic check-budget paths must stay
/// wallclock-free: `Instant::now` / `SystemTime` appear only at sanctioned,
/// individually-justified sites (supervisor deadline construction, the
/// bench stopwatch helper).
fn wallclock_in_core(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !matches!(ctx.file.role, FileRole::Lib | FileRole::Bin) {
        return;
    }
    let toks = ctx.tokens;
    for i in 0..toks.len() {
        if ctx.in_test_region(i) {
            continue;
        }
        let Some(id) = toks[i].ident() else { continue };
        if id == "now"
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3]
                .ident()
                .is_some_and(|t| t == "Instant" || t == "SystemTime")
        {
            out.push(ctx.finding(
                i - 3,
                "wallclock-in-core",
                format!(
                    "`{}::now()` reads the wall clock; deterministic paths must take \
                     budgets/deadlines as inputs (sanctioned sites carry an allow)",
                    toks[i - 3].ident().unwrap_or("Instant")
                ),
            ));
        }
    }
}

/// **error-hygiene** — every public error enum (`pub enum *Error`) is
/// `#[non_exhaustive]` and classified by an `is_transient` method, so
/// retry/shed policy branches on types, never on rendered text.
fn error_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.file.krate == "bench" || ctx.file.role != FileRole::Lib {
        return;
    }
    let toks = ctx.tokens;
    let mut i = 0;
    // Attributes seen since the last item boundary, so the check can look
    // back for `#[non_exhaustive]` when it reaches `pub enum`.
    let mut pending_attrs: Vec<String> = Vec::new();
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let start = i + 2;
            let (end, _) = scan_attribute(toks, start);
            pending_attrs.extend(
                toks[start..end]
                    .iter()
                    .filter_map(|t| t.ident().map(str::to_string)),
            );
            i = end;
            continue;
        }
        if toks[i].is_ident("pub")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("enum"))
            && toks
                .get(i + 2)
                .and_then(|t| t.ident())
                .is_some_and(|n| n.ends_with("Error"))
        {
            let name = toks[i + 2].ident().unwrap_or_default().to_string();
            if !ctx.in_test_region(i) {
                if !pending_attrs.iter().any(|a| a == "non_exhaustive") {
                    out.push(ctx.finding(
                        i + 2,
                        "error-hygiene",
                        format!(
                            "public error enum `{name}` is not `#[non_exhaustive]`; future \
                             variants must not break downstream matches"
                        ),
                    ));
                }
                if !ctx.transient_impls.contains(&name) {
                    out.push(ctx.finding(
                        i + 2,
                        "error-hygiene",
                        format!(
                            "public error enum `{name}` has no `is_transient()` \
                             classification; retry/shed policy must branch on it"
                        ),
                    ));
                }
            }
            pending_attrs.clear();
            i = skip_item(toks, i);
            continue;
        }
        // Any other substantive token ends the attribute run.
        if !matches!(toks[i].kind, Kind::Punct(_)) || toks[i].is_punct('{') || toks[i].is_punct(';')
        {
            pending_attrs.clear();
        }
        i += 1;
    }
}

/// **swallowed-result** — in library code, `let _ = <expr>` must not
/// discard a call to a crate function whose return type mentions
/// `Result`: a swallowed `Err` is an error path that silently vanishes
/// (the historical silent-peer hang rode exactly this shape). Keyed on
/// the per-crate [`ResultFns`] set, so std calls (`set_nodelay`,
/// `remove_dir_all`) and infallible `write!`-to-`String` macros are out
/// of scope; deliberate best-effort discards carry a reasoned allow.
fn swallowed_result(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.file.krate == "bench" || ctx.file.role != FileRole::Lib {
        return;
    }
    let toks = ctx.tokens;
    let mut i = 0;
    while i < toks.len() {
        let is_discard = toks[i].is_ident("let")
            && toks.get(i + 1).is_some_and(|t| t.is_ident("_"))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('='));
        if is_discard && !ctx.in_test_region(i) {
            // Walk the discarded expression (to the `;` closing the
            // statement) and flag the first call whose callee is a known
            // Result-returning crate function.
            let mut j = i + 3;
            let mut depth = 0i32;
            while j < toks.len() {
                match &toks[j].kind {
                    Kind::Punct('(') | Kind::Punct('[') | Kind::Punct('{') => depth += 1,
                    Kind::Punct(')') | Kind::Punct(']') | Kind::Punct('}') => depth -= 1,
                    Kind::Punct(';') if depth <= 0 => break,
                    Kind::Ident(name)
                        if toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                            && ctx.result_fns.contains(name) =>
                    {
                        out.push(ctx.finding(
                            j,
                            "swallowed-result",
                            format!(
                                "`let _ = …` discards the `Result` of `{name}`; handle or \
                                 propagate the error, or justify the discard with an allow"
                            ),
                        ));
                        // One finding per statement; skip to its end.
                        while j < toks.len() && !(toks[j].is_punct(';') && depth <= 0) {
                            match &toks[j].kind {
                                Kind::Punct('(') | Kind::Punct('[') | Kind::Punct('{') => {
                                    depth += 1
                                }
                                Kind::Punct(')') | Kind::Punct(']') | Kind::Punct('}') => {
                                    depth -= 1
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

/// Collect, per crate, the names of `impl` targets whose block defines
/// `fn is_transient` (e.g. `impl SimError { … fn is_transient … }`).
pub fn collect_transient_impls(tokens: &[Token], into: &mut BTreeSet<String>) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("impl") {
            if let Some(target) = tokens.get(i + 1).and_then(|t| t.ident()) {
                // Find the impl body and scan it for `fn is_transient`.
                let mut j = i + 2;
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                    let end = skip_item(tokens, j);
                    if tokens[j..end]
                        .windows(2)
                        .any(|w| w[0].is_ident("fn") && w[1].is_ident("is_transient"))
                    {
                        into.insert(target.to_string());
                    }
                    i = end;
                    continue;
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::workspace::{FileRole, SourceFile};

    fn ctx_file(krate: &str, role: FileRole) -> SourceFile {
        SourceFile {
            rel_path: format!("crates/{krate}/src/lib.rs"),
            krate: krate.to_string(),
            role,
        }
    }

    fn run(src: &str, krate: &str, role: FileRole) -> Vec<Finding> {
        let (tokens, _) = lex(src);
        let mut hash_names = HashNames::default();
        hash_names.collect(&tokens);
        let mut transient = BTreeSet::new();
        collect_transient_impls(&tokens, &mut transient);
        let mut result_fns = ResultFns::default();
        result_fns.collect(&tokens);
        let regions = test_regions(&tokens);
        let file = ctx_file(krate, role);
        let ctx = FileCtx {
            file: &file,
            tokens: &tokens,
            test_regions: &regions,
            hash_names: &hash_names,
            transient_impls: &transient,
            result_fns: &result_fns,
        };
        run_file(&ctx)
    }

    #[test]
    fn hash_iteration_is_flagged_keyed_access_is_not() {
        let src = "
            struct S { by_name: HashMap<String, usize> }
            fn keyed(s: &S) { s.by_name.get(\"x\"); }
            fn iterated(s: &S) { for v in s.by_name.values() { drop(v); } }
        ";
        let f = run(src, "cloud-sim", FileRole::Lib);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "nondeterministic-map");
        assert!(f[0].message.contains("values"));
    }

    #[test]
    fn serde_struct_with_hashmap_is_flagged() {
        let src = "
            #[derive(Debug, Clone, Serialize, Deserialize)]
            pub struct Catalog { types: Vec<VmType>, by_name: HashMap<String, usize> }
        ";
        let f = run(src, "cloud-sim", FileRole::Lib);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("Serialize"));
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let x: Option<u8> = None; x.unwrap(); }
            }
        ";
        assert!(run(src, "core", FileRole::Lib).is_empty());
    }

    #[test]
    fn panics_in_lib_code_are_flagged() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.expect(\"set\") }";
        let f = run(src, "ml", FileRole::Lib);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "panic-in-lib");
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }";
        assert!(run(src, "ml", FileRole::Lib).is_empty());
    }

    #[test]
    fn error_enum_without_hygiene_flagged_twice() {
        let src = "pub enum FooError { A, B }";
        let f = run(src, "graph", FileRole::Lib);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.lint == "error-hygiene"));
    }

    #[test]
    fn hygienic_error_enum_is_clean() {
        let src = "
            #[derive(Debug)]
            #[non_exhaustive]
            pub enum FooError { A }
            impl FooError { pub fn is_transient(&self) -> bool { false } }
        ";
        assert!(run(src, "graph", FileRole::Lib).is_empty());
    }

    #[test]
    fn swallowed_crate_result_is_flagged() {
        let src = "
            pub fn send(x: u8) -> Result<(), String> { Err(format!(\"{x}\")) }
            pub fn fire_and_forget(x: u8) { let _ = send(x); }
        ";
        let f = run(src, "core", FileRole::Lib);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "swallowed-result");
        assert!(f[0].message.contains("send"));
    }

    #[test]
    fn swallowed_method_call_is_flagged() {
        let src = "
            struct S;
            impl S { fn flush_all(&self) -> io::Result<()> { Ok(()) } }
            pub fn teardown(s: &S) { let _ = s.flush_all(); }
        ";
        let f = run(src, "served", FileRole::Lib);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, "swallowed-result");
    }

    #[test]
    fn swallows_of_non_result_calls_and_std_macros_are_clean() {
        let src = "
            pub fn count(x: u8) -> u8 { x }
            pub fn ok(out: &mut String, x: u8) {
                let _ = count(x);
                let _ = write!(out, \"{x}\");
            }
        ";
        assert!(run(src, "core", FileRole::Lib).is_empty());
    }

    #[test]
    fn swallowed_result_in_tests_and_binds_are_clean() {
        let src = "
            pub fn send(x: u8) -> Result<(), String> { Err(format!(\"{x}\")) }
            pub fn bound(x: u8) { let _ignored = send(x); let r = send(x); drop(r); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let _ = super::send(1); }
            }
        ";
        assert!(run(src, "core", FileRole::Lib).is_empty());
    }

    #[test]
    fn result_fn_collection_sees_trait_decls_and_io_results() {
        let mut fns = ResultFns::default();
        let (tokens, _) = lex("
            trait T { fn try_it(&self) -> Result<u8, E>; }
            fn plain() -> u8 { 0 }
            fn io_ish() -> std::io::Result<()> { Ok(()) }
        ");
        fns.collect(&tokens);
        assert!(fns.contains("try_it"));
        assert!(fns.contains("io_ish"));
        assert!(!fns.contains("plain"));
    }

    #[test]
    fn wallclock_and_rng_and_floats() {
        let src = "
            pub fn t() -> Instant { Instant::now() }
            pub fn r() -> u64 { thread_rng().gen() }
            pub fn c(a: f64, b: f64) -> Ordering { a.partial_cmp(&b).unwrap() }
        ";
        let f = run(src, "core", FileRole::Lib);
        let lints: Vec<&str> = f.iter().map(|x| x.lint).collect();
        assert!(lints.contains(&"wallclock-in-core"), "{f:?}");
        assert!(lints.contains(&"unseeded-rng"), "{f:?}");
        assert!(lints.contains(&"float-total-order"), "{f:?}");
        assert!(lints.contains(&"panic-in-lib"), "{f:?}");
    }
}
