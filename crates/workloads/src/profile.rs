//! Framework-independent demand profiles of the benchmark algorithms.
//!
//! The paper's transfer-learning premise (Fig. 1) is that an *algorithm* —
//! TeraSort, K-Means, PageRank — has an intrinsic resource character that
//! survives the move between Hadoop, Hive and Spark, even though the raw
//! utilizations change. We encode that intrinsic character as a
//! [`DemandProfile`]: per-GB coefficients that a
//! [`crate::framework::Framework`] transform later turns into a concrete
//! [`vesta_cloud_sim::ExecutionDemand`].
//!
//! Profiles are calibrated to the qualitative behaviour reported for
//! BigDataBench (Wang et al., HPCA '14) and HiBench (Huang et al.,
//! ICDEW '10): micro benchmarks are I/O-bound, ML workloads are iterative
//! and compute-bound, SQL operators are scan/shuffle-bound, search-engine
//! workloads shuffle heavily, and streaming workloads are sync-heavy with
//! small working sets.

use serde::{Deserialize, Serialize};

/// Use-case families of Section 3.1's benchmark taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UseCase {
    /// TeraSort, WordCount, Sort, Count, Grep, …
    MicroBenchmark,
    /// Linear/Logistic regression, K-Means, Bayes, PCA, ALS, CF, BFS, SVD…
    MachineLearning,
    /// Select, Join, Scan, Aggregation.
    SqlProcessing,
    /// PageRank, Index, Nutch.
    SearchEngine,
    /// Twitter, PageReview.
    Streaming,
}

impl std::fmt::Display for UseCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UseCase::MicroBenchmark => "micro benchmark",
            UseCase::MachineLearning => "machine learning",
            UseCase::SqlProcessing => "SQL-like processing",
            UseCase::SearchEngine => "search engine",
            UseCase::Streaming => "streaming",
        };
        f.write_str(s)
    }
}

/// Intrinsic, framework-independent resource character of one algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandProfile {
    /// Normalized core-seconds of CPU work per GB of input.
    pub compute_per_gb: f64,
    /// Peak working set as a multiple of the input size.
    pub working_set_ratio: f64,
    /// Network shuffle per iteration as a multiple of the input size.
    pub shuffle_ratio: f64,
    /// Disk I/O per iteration as a multiple of the input size.
    pub disk_ratio: f64,
    /// Algorithmic supersteps (MapReduce rounds / Spark stages).
    pub iterations: u32,
    /// Useful parallel tasks per GB of input.
    pub parallelism_per_gb: f64,
    /// Synchronization barriers per iteration.
    pub sync_intensity: f64,
    /// Intrinsic run-to-run variability (CV).
    pub variance_cv: f64,
}

/// The distinct algorithms behind the 30 applications of Table 3.
///
/// The same [`AlgorithmKind`] appearing under two frameworks (e.g.
/// `KMeans` as Hadoop-kmeans and Spark-kmeans) shares one base profile —
/// this is precisely the cross-framework similarity Vesta's knowledge
/// transfer exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    TeraSort,
    WordCount,
    PageReview,
    LinearRegression,
    LogisticRegression,
    Twitter,
    Bayes,
    Index,
    Identify,
    Select,
    Join,
    Scan,
    FullJoin,
    Nutch,
    Pca,
    Als,
    KMeans,
    Aggregation,
    Spearman,
    SvdPlusPlus,
    PageRank,
    Bfs,
    Cf,
    Sort,
    Grep,
    Count,
}

impl AlgorithmKind {
    /// Which benchmark use case the algorithm belongs to.
    pub fn use_case(self) -> UseCase {
        use AlgorithmKind::*;
        match self {
            TeraSort | WordCount | Sort | Grep | Count | Identify => UseCase::MicroBenchmark,
            LinearRegression | LogisticRegression | Bayes | Pca | Als | KMeans | Spearman
            | SvdPlusPlus | Bfs | Cf => UseCase::MachineLearning,
            Select | Join | Scan | FullJoin | Aggregation => UseCase::SqlProcessing,
            Index | Nutch | PageRank => UseCase::SearchEngine,
            Twitter | PageReview => UseCase::Streaming,
        }
    }

    /// The intrinsic demand profile of the algorithm.
    pub fn profile(self) -> DemandProfile {
        use AlgorithmKind::*;
        let p = |compute_per_gb,
                 working_set_ratio,
                 shuffle_ratio,
                 disk_ratio,
                 iterations,
                 parallelism_per_gb,
                 sync_intensity,
                 variance_cv| DemandProfile {
            compute_per_gb,
            working_set_ratio,
            shuffle_ratio,
            disk_ratio,
            iterations,
            parallelism_per_gb,
            sync_intensity,
            variance_cv,
        };
        match self {
            // -- micro benchmarks: I/O bound, few iterations ---------------
            TeraSort => p(60.0, 1.1, 0.9, 2.2, 2, 4.0, 1.0, 0.05),
            WordCount => p(90.0, 0.35, 0.15, 1.1, 1, 4.0, 1.0, 0.04),
            Sort => p(50.0, 1.0, 0.8, 2.0, 2, 4.0, 1.0, 0.05),
            Grep => p(70.0, 0.2, 0.05, 1.0, 1, 4.0, 0.5, 0.04),
            Count => p(40.0, 0.15, 0.08, 1.0, 1, 4.0, 0.5, 0.04),
            Identify => p(55.0, 0.25, 0.1, 1.2, 1, 4.0, 0.8, 0.05),
            // -- machine learning: compute bound, iterative ----------------
            LinearRegression => p(420.0, 1.4, 0.25, 0.5, 8, 8.0, 2.0, 0.06),
            LogisticRegression => p(520.0, 1.5, 0.3, 0.5, 10, 8.0, 2.0, 0.06),
            Bayes => p(300.0, 0.9, 0.35, 0.8, 3, 6.0, 1.5, 0.06),
            Pca => p(480.0, 1.8, 0.4, 0.6, 6, 8.0, 2.5, 0.07),
            Als => p(560.0, 2.0, 0.55, 0.5, 12, 8.0, 3.0, 0.08),
            KMeans => p(450.0, 1.6, 0.3, 0.5, 10, 8.0, 2.0, 0.06),
            Spearman => p(380.0, 1.7, 0.45, 0.6, 5, 8.0, 2.0, 0.07),
            // svd++ is the paper's high-variance outlier (~40% CV).
            SvdPlusPlus => p(620.0, 2.2, 0.6, 0.5, 14, 8.0, 3.0, 0.40),
            Bfs => p(240.0, 1.3, 0.7, 0.4, 9, 6.0, 3.5, 0.08),
            // CF is the paper's non-converging outlier: extreme sync- and
            // shuffle-skew gives it a correlation signature far from the
            // source knowledge.
            Cf => p(180.0, 3.2, 1.8, 0.2, 24, 2.0, 7.0, 0.12),
            // -- SQL-like processing: scan/shuffle bound -------------------
            Select => p(45.0, 0.3, 0.1, 1.3, 1, 4.0, 0.5, 0.04),
            Scan => p(40.0, 0.25, 0.05, 1.5, 1, 4.0, 0.5, 0.04),
            Join => p(140.0, 1.2, 0.9, 1.6, 2, 6.0, 1.5, 0.06),
            FullJoin => p(190.0, 1.6, 1.3, 1.9, 3, 6.0, 2.0, 0.07),
            Aggregation => p(110.0, 0.8, 0.5, 1.4, 2, 6.0, 1.0, 0.05),
            // -- search engine: shuffle heavy, iterative -------------------
            PageRank => p(260.0, 1.5, 1.1, 0.7, 10, 8.0, 2.5, 0.07),
            Index => p(150.0, 0.7, 0.6, 1.5, 2, 6.0, 1.0, 0.05),
            Nutch => p(200.0, 0.9, 0.8, 1.6, 3, 6.0, 1.5, 0.07),
            // -- streaming: sync heavy, small working set ------------------
            Twitter => p(120.0, 0.4, 0.5, 0.6, 16, 4.0, 4.0, 0.08),
            PageReview => p(100.0, 0.35, 0.4, 0.7, 12, 4.0, 3.5, 0.07),
        }
    }

    /// Canonical lowercase name fragment as Table 3 spells it.
    pub fn table_name(self) -> &'static str {
        use AlgorithmKind::*;
        match self {
            TeraSort => "terasort",
            WordCount => "wordcount",
            PageReview => "page-review",
            LinearRegression => "linear",
            LogisticRegression => "lr",
            Twitter => "twitter",
            Bayes => "bayes",
            Index => "index",
            Identify => "identify",
            Select => "select",
            Join => "join",
            Scan => "scan",
            FullJoin => "full-join",
            Nutch => "nutch",
            Pca => "pca",
            Als => "als",
            KMeans => "kmeans",
            Aggregation => "aggregation",
            Spearman => "spearman",
            SvdPlusPlus => "svd++",
            PageRank => "page-rank",
            Bfs => "BFS",
            Cf => "CF",
            Sort => "sort",
            Grep => "grep",
            Count => "count",
        }
    }
}

/// Input-dataset scales following the benchmark conventions of Section 5.1:
/// HiBench's named tiers ("gigantic" = 30 GB, "huge" = 3 GB, "large" =
/// 300 MB) plus free-form sizes for BigDataBench.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DatasetScale {
    /// HiBench "large": 300 MB.
    Large,
    /// HiBench "huge": 3 GB.
    Huge,
    /// HiBench "gigantic": 30 GB.
    Gigantic,
    /// BigDataBench custom size in GB.
    CustomGb(f64),
}

impl DatasetScale {
    /// Input size in GB.
    pub fn gb(self) -> f64 {
        match self {
            DatasetScale::Large => 0.3,
            DatasetScale::Huge => 3.0,
            DatasetScale::Gigantic => 30.0,
            DatasetScale::CustomGb(g) => g,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [AlgorithmKind; 26] = [
        AlgorithmKind::TeraSort,
        AlgorithmKind::WordCount,
        AlgorithmKind::PageReview,
        AlgorithmKind::LinearRegression,
        AlgorithmKind::LogisticRegression,
        AlgorithmKind::Twitter,
        AlgorithmKind::Bayes,
        AlgorithmKind::Index,
        AlgorithmKind::Identify,
        AlgorithmKind::Select,
        AlgorithmKind::Join,
        AlgorithmKind::Scan,
        AlgorithmKind::FullJoin,
        AlgorithmKind::Nutch,
        AlgorithmKind::Pca,
        AlgorithmKind::Als,
        AlgorithmKind::KMeans,
        AlgorithmKind::Aggregation,
        AlgorithmKind::Spearman,
        AlgorithmKind::SvdPlusPlus,
        AlgorithmKind::PageRank,
        AlgorithmKind::Bfs,
        AlgorithmKind::Cf,
        AlgorithmKind::Sort,
        AlgorithmKind::Grep,
        AlgorithmKind::Count,
    ];

    #[test]
    fn every_algorithm_has_valid_profile() {
        for alg in ALL {
            let p = alg.profile();
            assert!(p.compute_per_gb > 0.0, "{alg:?}");
            assert!(p.working_set_ratio > 0.0);
            assert!(p.shuffle_ratio >= 0.0);
            assert!(p.disk_ratio >= 0.0);
            assert!(p.iterations >= 1);
            assert!(p.parallelism_per_gb > 0.0);
            assert!(p.sync_intensity > 0.0);
            assert!((0.0..1.0).contains(&p.variance_cv));
        }
    }

    #[test]
    fn table_names_unique() {
        let mut names: Vec<&str> = ALL.iter().map(|a| a.table_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }

    #[test]
    fn use_case_taxonomy_matches_section_3_1() {
        assert_eq!(AlgorithmKind::TeraSort.use_case(), UseCase::MicroBenchmark);
        assert_eq!(AlgorithmKind::KMeans.use_case(), UseCase::MachineLearning);
        assert_eq!(AlgorithmKind::Join.use_case(), UseCase::SqlProcessing);
        assert_eq!(AlgorithmKind::PageRank.use_case(), UseCase::SearchEngine);
        assert_eq!(AlgorithmKind::Twitter.use_case(), UseCase::Streaming);
        assert_eq!(UseCase::Streaming.to_string(), "streaming");
    }

    #[test]
    fn ml_is_more_compute_bound_than_micro() {
        let kmeans = AlgorithmKind::KMeans.profile();
        let sort = AlgorithmKind::Sort.profile();
        assert!(kmeans.compute_per_gb > 3.0 * sort.compute_per_gb);
        assert!(kmeans.iterations > sort.iterations);
        assert!(sort.disk_ratio > kmeans.disk_ratio);
    }

    #[test]
    fn paper_outliers_are_encoded() {
        // Spark-svd++: ~40% run variance (Section 5.3).
        assert!((AlgorithmKind::SvdPlusPlus.profile().variance_cv - 0.40).abs() < 1e-9);
        // Spark-CF: extreme profile that resists matching source knowledge.
        let cf = AlgorithmKind::Cf.profile();
        assert!(cf.sync_intensity > 5.0);
        assert!(cf.working_set_ratio > 3.0);
    }

    #[test]
    fn dataset_scales_match_hibench_doc() {
        assert!((DatasetScale::Gigantic.gb() - 30.0).abs() < 1e-12);
        assert!((DatasetScale::Huge.gb() - 3.0).abs() < 1e-12);
        assert!((DatasetScale::Large.gb() - 0.3).abs() < 1e-12);
        assert!((DatasetScale::CustomGb(12.5).gb() - 12.5).abs() < 1e-12);
    }
}
