//! The 30 big-data application workloads of Table 3, with the paper's
//! source / testing / target split.
//!
//! * **Source training set** (1-13): Hadoop and Hive workloads that train
//!   the offline model.
//! * **Source testing set** (14-18): Hadoop and Hive workloads held out to
//!   test the offline model (used by the Fig. 11 k-tuning CV).
//! * **Target set** (19-30): Spark workloads — the *new framework* whose
//!   best VM types Vesta predicts by transfer.
//!
//! Workloads in the paper come from HiBench (italic) and BigDataBench
//! (regular); we record the provenance and follow the benchmarks' dataset
//! scales (HiBench "gigantic" = 30 GB etc., BigDataBench sized for
//! reasonable execution time, Section 5.1).

use serde::{Deserialize, Serialize};
use vesta_cloud_sim::ExecutionDemand;

use crate::framework::Framework;
use crate::profile::{AlgorithmKind, DatasetScale, UseCase};

/// Which benchmark suite a workload is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Benchmark {
    /// HiBench (Huang et al., ICDEW '10) — italic rows of Table 3.
    HiBench,
    /// BigDataBench (Wang et al., HPCA '14) — regular rows of Table 3.
    BigDataBench,
}

/// Which of the paper's three sets a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitSet {
    /// Source set, training portion (Nos. 1-13).
    SourceTraining,
    /// Source set, testing portion (Nos. 14-18).
    SourceTesting,
    /// Target set (Nos. 19-30, all Spark).
    Target,
}

/// One application workload of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    /// Table 3 number (1-30); also the deterministic noise identity.
    pub id: u64,
    /// The framework the application runs on.
    pub framework: Framework,
    /// The underlying algorithm.
    pub algorithm: AlgorithmKind,
    /// Input dataset scale.
    pub scale: DatasetScale,
    /// Provenance benchmark.
    pub benchmark: Benchmark,
    /// Which evaluation split the workload belongs to.
    pub split: SplitSet,
}

impl Workload {
    /// Full name as Table 3 prints it, e.g. `"Spark-page-rank"`.
    pub fn name(&self) -> String {
        format!("{}-{}", self.framework.name(), self.algorithm.table_name())
    }

    /// Benchmark use-case family.
    pub fn use_case(&self) -> UseCase {
        self.algorithm.use_case()
    }

    /// Resolve into the concrete demand the simulator executes.
    pub fn demand(&self) -> ExecutionDemand {
        self.framework
            .resolve(&self.algorithm.profile(), self.scale.gb(), self.id)
    }

    /// Resolve at an alternative input size (Ernest-style scaled-down
    /// training runs use fractions of the real dataset).
    pub fn demand_with_input(&self, input_gb: f64) -> ExecutionDemand {
        self.framework
            .resolve(&self.algorithm.profile(), input_gb, self.id)
    }
}

/// The full evaluation suite.
///
/// ```
/// use vesta_workloads::Suite;
///
/// let suite = Suite::paper();
/// assert_eq!(suite.len(), 30);
/// assert_eq!(suite.target().len(), 12); // the Spark set
/// assert_eq!(suite.by_name("Spark-svd++").unwrap().id, 20);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Suite {
    workloads: Vec<Workload>,
}

impl Suite {
    /// Build the exact 30-workload suite of Table 3.
    pub fn paper() -> Suite {
        use AlgorithmKind::*;
        use Benchmark::*;
        use DatasetScale::*;
        use Framework::*;
        use SplitSet::*;
        let w = |id, framework, algorithm, scale, benchmark, split| Workload {
            id,
            framework,
            algorithm,
            scale,
            benchmark,
            split,
        };
        let workloads = vec![
            // ---- source set / training (1-13) ---------------------------
            w(1, Hadoop, TeraSort, Gigantic, HiBench, SourceTraining),
            w(2, Hadoop, WordCount, Gigantic, HiBench, SourceTraining),
            w(3, Hadoop, PageReview, Huge, BigDataBench, SourceTraining),
            w(
                4,
                Hadoop,
                LinearRegression,
                CustomGb(10.0),
                BigDataBench,
                SourceTraining,
            ),
            w(
                5,
                Hadoop,
                LogisticRegression,
                CustomGb(10.0),
                HiBench,
                SourceTraining,
            ),
            w(6, Hadoop, Twitter, Huge, BigDataBench, SourceTraining),
            w(7, Hadoop, Bayes, CustomGb(10.0), HiBench, SourceTraining),
            w(8, Hadoop, Index, Huge, BigDataBench, SourceTraining),
            w(9, Hadoop, Identify, Huge, BigDataBench, SourceTraining),
            w(10, Hive, Select, Gigantic, BigDataBench, SourceTraining),
            w(11, Hive, Join, CustomGb(10.0), HiBench, SourceTraining),
            w(12, Hive, Scan, Gigantic, HiBench, SourceTraining),
            w(
                13,
                Hive,
                FullJoin,
                CustomGb(10.0),
                BigDataBench,
                SourceTraining,
            ),
            // ---- source set / testing (14-18) ----------------------------
            w(14, Hadoop, Nutch, Huge, HiBench, SourceTesting),
            w(15, Hadoop, Pca, CustomGb(8.0), BigDataBench, SourceTesting),
            w(16, Hadoop, Als, CustomGb(8.0), BigDataBench, SourceTesting),
            w(17, Hadoop, KMeans, CustomGb(10.0), HiBench, SourceTesting),
            w(
                18,
                Hive,
                Aggregation,
                CustomGb(10.0),
                HiBench,
                SourceTesting,
            ),
            // ---- target set (19-30), all Spark ---------------------------
            w(19, Spark, Spearman, CustomGb(8.0), BigDataBench, Target),
            w(20, Spark, SvdPlusPlus, CustomGb(8.0), BigDataBench, Target),
            w(
                21,
                Spark,
                LogisticRegression,
                CustomGb(10.0),
                HiBench,
                Target,
            ),
            w(22, Spark, PageRank, CustomGb(10.0), HiBench, Target),
            w(23, Spark, KMeans, CustomGb(10.0), HiBench, Target),
            w(24, Spark, Bayes, CustomGb(10.0), HiBench, Target),
            w(25, Spark, Bfs, CustomGb(8.0), BigDataBench, Target),
            w(26, Spark, Cf, CustomGb(8.0), BigDataBench, Target),
            w(27, Spark, Sort, Gigantic, HiBench, Target),
            w(28, Spark, Pca, CustomGb(8.0), BigDataBench, Target),
            w(29, Spark, Grep, Gigantic, BigDataBench, Target),
            w(30, Spark, Count, Gigantic, BigDataBench, Target),
        ];
        Suite { workloads }
    }

    /// The extended suite: Table 3 plus six Flink workloads (ids 31-36) —
    /// a *second* new framework for the Section 7 generality extension.
    /// Flink workloads reuse algorithms the source knowledge has seen
    /// (kmeans, lr, page-rank, sort) and two it has not (BFS, spearman).
    pub fn extended() -> Suite {
        use AlgorithmKind::*;
        use Benchmark::*;
        use DatasetScale::*;
        use Framework::*;
        use SplitSet::*;
        let mut suite = Suite::paper();
        let w = |id, algorithm, scale| Workload {
            id,
            framework: Flink,
            algorithm,
            scale,
            benchmark: BigDataBench,
            split: Target,
        };
        suite.workloads.extend([
            w(31, KMeans, CustomGb(10.0)),
            w(32, LogisticRegression, CustomGb(10.0)),
            w(33, PageRank, CustomGb(10.0)),
            w(34, Sort, Gigantic),
            w(35, Bfs, CustomGb(8.0)),
            w(36, Spearman, CustomGb(8.0)),
        ]);
        suite
    }

    /// All workloads in id order (30 for the paper suite, 36 extended).
    pub fn all(&self) -> &[Workload] {
        &self.workloads
    }

    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// The 13 source training workloads.
    pub fn source_training(&self) -> Vec<&Workload> {
        self.split(SplitSet::SourceTraining)
    }

    /// The 5 source testing workloads.
    pub fn source_testing(&self) -> Vec<&Workload> {
        self.split(SplitSet::SourceTesting)
    }

    /// All 18 source workloads (training + testing).
    pub fn source(&self) -> Vec<&Workload> {
        self.workloads
            .iter()
            .filter(|w| w.split != SplitSet::Target)
            .collect()
    }

    /// The 12 Spark target workloads.
    pub fn target(&self) -> Vec<&Workload> {
        self.split(SplitSet::Target)
    }

    fn split(&self, s: SplitSet) -> Vec<&Workload> {
        self.workloads.iter().filter(|w| w.split == s).collect()
    }

    /// Lookup by Table 3 number.
    pub fn by_id(&self, id: u64) -> Option<&Workload> {
        self.workloads.iter().find(|w| w.id == id)
    }

    /// Lookup by printed name, e.g. `"Spark-kmeans"`.
    pub fn by_name(&self, name: &str) -> Option<&Workload> {
        self.workloads.iter().find(|w| w.name() == name)
    }

    /// Workloads of one framework.
    pub fn by_framework(&self, f: Framework) -> Vec<&Workload> {
        self.workloads.iter().filter(|w| w.framework == f).collect()
    }
}

impl Default for Suite {
    fn default() -> Self {
        Suite::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_workloads_with_paper_split() {
        let s = Suite::paper();
        assert_eq!(s.len(), 30);
        assert_eq!(s.source_training().len(), 13);
        assert_eq!(s.source_testing().len(), 5);
        assert_eq!(s.source().len(), 18);
        assert_eq!(s.target().len(), 12);
        assert!(!s.is_empty());
    }

    #[test]
    fn ids_are_1_to_30_in_order() {
        let s = Suite::paper();
        for (i, w) in s.all().iter().enumerate() {
            assert_eq!(w.id, i as u64 + 1);
        }
    }

    #[test]
    fn source_is_hadoop_hive_target_is_spark() {
        let s = Suite::paper();
        for w in s.source() {
            assert_ne!(w.framework, Framework::Spark, "{}", w.name());
        }
        for w in s.target() {
            assert_eq!(w.framework, Framework::Spark, "{}", w.name());
        }
    }

    #[test]
    fn names_match_table_3() {
        let s = Suite::paper();
        assert_eq!(s.by_id(1).unwrap().name(), "Hadoop-terasort");
        assert_eq!(s.by_id(13).unwrap().name(), "Hive-full-join");
        assert_eq!(s.by_id(18).unwrap().name(), "Hive-aggregation");
        assert_eq!(s.by_id(20).unwrap().name(), "Spark-svd++");
        assert_eq!(s.by_id(25).unwrap().name(), "Spark-BFS");
        assert_eq!(s.by_id(30).unwrap().name(), "Spark-count");
    }

    #[test]
    fn name_lookup_roundtrips() {
        let s = Suite::paper();
        for w in s.all() {
            assert_eq!(s.by_name(&w.name()).unwrap().id, w.id);
        }
        assert!(s.by_name("Flink-kmeans").is_none());
        assert!(s.by_id(31).is_none());
    }

    #[test]
    fn all_demands_validate() {
        let s = Suite::paper();
        for w in s.all() {
            w.demand()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
            assert_eq!(w.demand().workload_id, w.id);
        }
    }

    #[test]
    fn shared_algorithms_across_frameworks_exist() {
        // The transfer premise: kmeans/pca/lr/bayes appear in both the
        // source (Hadoop) and target (Spark) sets.
        let s = Suite::paper();
        for alg in [
            AlgorithmKind::KMeans,
            AlgorithmKind::Pca,
            AlgorithmKind::LogisticRegression,
            AlgorithmKind::Bayes,
        ] {
            let frameworks: Vec<Framework> = s
                .all()
                .iter()
                .filter(|w| w.algorithm == alg)
                .map(|w| w.framework)
                .collect();
            assert!(frameworks.len() >= 2, "{alg:?} appears once");
            assert!(frameworks.contains(&Framework::Spark));
        }
    }

    #[test]
    fn frameworks_partition_correctly() {
        let s = Suite::paper();
        let h = s.by_framework(Framework::Hadoop).len();
        let v = s.by_framework(Framework::Hive).len();
        let p = s.by_framework(Framework::Spark).len();
        assert_eq!(h + v + p, 30);
        assert_eq!(p, 12);
        assert_eq!(v, 5);
        assert_eq!(h, 13);
    }

    #[test]
    fn extended_suite_adds_flink_targets() {
        let s = Suite::extended();
        assert_eq!(s.len(), 36);
        let flink = s.by_framework(Framework::Flink);
        assert_eq!(flink.len(), 6);
        for w in &flink {
            assert_eq!(w.split, SplitSet::Target);
            w.demand().validate().unwrap();
            assert!(w.name().starts_with("Flink-"));
        }
        // the paper suite is untouched
        assert_eq!(Suite::paper().len(), 30);
    }

    #[test]
    fn flink_transform_is_pipelined() {
        let p = AlgorithmKind::PageRank.profile();
        let f = Framework::Flink.resolve(&p, 10.0, 1);
        let s = Framework::Spark.resolve(&p, 10.0, 1);
        let h = Framework::Hadoop.resolve(&p, 10.0, 1);
        // barriers nearly vanish, shuffle rises, no hard OOM
        assert!(f.sync_barriers_per_iter < s.sync_barriers_per_iter);
        assert!(f.shuffle_gb_per_iter > s.shuffle_gb_per_iter);
        assert!(f.disk_gb_per_iter < h.disk_gb_per_iter);
        assert!(!f.memory_hard);
    }

    #[test]
    fn use_cases_span_all_five_families() {
        let s = Suite::paper();
        for case in [
            UseCase::MicroBenchmark,
            UseCase::MachineLearning,
            UseCase::SqlProcessing,
            UseCase::SearchEngine,
            UseCase::Streaming,
        ] {
            assert!(
                s.all().iter().any(|w| w.use_case() == case),
                "no workload for {case}"
            );
        }
    }
}
