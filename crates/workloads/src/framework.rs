//! Framework execution semantics: how Hadoop, Hive and Spark turn an
//! algorithm's intrinsic [`DemandProfile`]
//! into the concrete resource demand a VM actually sees.
//!
//! This transform is the heart of the reproduction's simulation argument:
//! the paper observes (Fig. 1, Fig. 2) that *low-level metrics look
//! completely different across frameworks* — a PARIS-style model trained on
//! Hadoop mispredicts Spark — *while high-level correlation similarities
//! persist*. The transform produces exactly that: each framework rescales
//! the demand components differently (Hadoop materializes between phases,
//! Hive adds planning and scan overhead on MapReduce, Spark holds working
//! sets in executor memory), so raw utilizations diverge, but the
//! underlying phase structure — which drives the correlation features —
//! stays recognizably the algorithm's own.
//!
//! The module also carries the Mesos-style [`MemoryWatcher`] of
//! Section 5.1: the paper watches real executor memory usage and sizes
//! Spark executors to prevent OOM; our watcher rewrites a Spark demand the
//! same way (process the working set in waves when it cannot fit).

use serde::{Deserialize, Serialize};
use vesta_cloud_sim::{ExecutionDemand, VmType};

use crate::profile::DemandProfile;

/// The data-processing frameworks: the paper's three (Hadoop, Hive,
/// Spark) plus Flink, this reproduction's Section 7 extension — the
/// paper argues the method "can cover a wide range of existing big data
/// frameworks since they follow a basic architecture design of Bulk
/// Synchronous Parallelism"; a fourth framework the knowledge has never
/// seen tests exactly that.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// Hadoop MapReduce: every phase boundary materializes to HDFS.
    Hadoop,
    /// Hive: SQL compiled onto MapReduce, plus planning and scan overhead.
    Hive,
    /// Spark: in-memory RDDs, executor memory pressure, fast iterations.
    Spark,
    /// Flink (extension): pipelined dataflow — operators stream records
    /// instead of materializing between supersteps, managed off-heap
    /// memory softens the OOM cliff, network is the backbone.
    Flink,
}

impl Framework {
    /// Display name as Table 3 spells it.
    pub fn name(self) -> &'static str {
        match self {
            Framework::Hadoop => "Hadoop",
            Framework::Hive => "Hive",
            Framework::Spark => "Spark",
            Framework::Flink => "Flink",
        }
    }

    /// Resolve an algorithm profile at a given input scale into the
    /// framework's concrete [`ExecutionDemand`].
    ///
    /// `workload_id` seeds the deterministic noise streams downstream.
    pub fn resolve(
        self,
        profile: &DemandProfile,
        input_gb: f64,
        workload_id: u64,
    ) -> ExecutionDemand {
        // Start from the intrinsic, framework-free demand.
        let base = ExecutionDemand {
            workload_id,
            input_gb,
            compute_units: profile.compute_per_gb * input_gb,
            working_set_gb: profile.working_set_ratio * input_gb,
            shuffle_gb_per_iter: profile.shuffle_ratio * input_gb,
            disk_gb_per_iter: profile.disk_ratio * input_gb,
            iterations: profile.iterations,
            parallelism: (profile.parallelism_per_gb * input_gb).max(1.0),
            sync_barriers_per_iter: profile.sync_intensity,
            startup_s: 0.0,
            spill_penalty: 2.0,
            memory_hard: false,
            variance_cv: profile.variance_cv,
        };
        match self {
            Framework::Hadoop => ExecutionDemand {
                // Map output and reduce input hit HDFS; working set streams
                // from disk so the memory footprint is modest.
                disk_gb_per_iter: base.disk_gb_per_iter * 2.5 + base.shuffle_gb_per_iter * 0.8,
                working_set_gb: base.working_set_gb * 0.55,
                compute_units: base.compute_units * 1.30, // serde + JVM per-record cost
                startup_s: 25.0 + 6.0 * base.iterations as f64, // per-round job setup
                sync_barriers_per_iter: base.sync_barriers_per_iter + 1.0, // map/reduce barrier
                memory_hard: false,
                spill_penalty: 1.6, // spilling is the designed-for path
                ..base
            },
            Framework::Hive => ExecutionDemand {
                // Hive compiles to MapReduce, then adds query planning and
                // full-table scan amplification.
                disk_gb_per_iter: base.disk_gb_per_iter * 2.8 + base.shuffle_gb_per_iter * 0.8,
                working_set_gb: base.working_set_gb * 0.6,
                compute_units: base.compute_units * 1.50, // plan + deserialization
                startup_s: 40.0 + 6.0 * base.iterations as f64, // metastore + plan + job setup
                sync_barriers_per_iter: base.sync_barriers_per_iter + 1.0,
                memory_hard: false,
                spill_penalty: 1.6,
                ..base
            },
            Framework::Spark => ExecutionDemand {
                // RDD caching keeps data in executor memory: little disk,
                // bigger working set, hard OOM semantics, cheap stages.
                disk_gb_per_iter: base.disk_gb_per_iter * 0.30,
                working_set_gb: base.working_set_gb * 1.55, // cached RDD + JVM overhead
                compute_units: base.compute_units * 0.60,   // in-memory reuse + whole-stage codegen
                startup_s: 12.0 + 0.8 * base.iterations as f64, // driver + executor launch
                sync_barriers_per_iter: base.sync_barriers_per_iter * 0.7, // stage barriers only
                memory_hard: true,
                spill_penalty: 3.0, // spill means serialization + recompute
                ..base
            },
            Framework::Flink => ExecutionDemand {
                // Pipelined dataflow: records stream between operators, so
                // barriers nearly vanish and shuffle traffic rises (data
                // moves over the network instead of resting in memory);
                // managed off-heap memory spills gracefully.
                disk_gb_per_iter: base.disk_gb_per_iter * 0.25,
                shuffle_gb_per_iter: base.shuffle_gb_per_iter * 1.35,
                working_set_gb: base.working_set_gb * 1.15, // managed segments, no JVM bloat
                compute_units: base.compute_units * 0.70,
                startup_s: 10.0 + 0.5 * base.iterations as f64, // jobmanager + taskmanagers
                sync_barriers_per_iter: (base.sync_barriers_per_iter * 0.3).max(0.2),
                memory_hard: false, // managed memory spills instead of OOM
                spill_penalty: 2.2,
                ..base
            },
        }
    }
}

/// Executor sizing report from the memory watcher.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutorPlan {
    /// Number of waves the working set is split into (1 = fits in memory).
    pub waves: u32,
    /// Executor memory in GB (per wave working set).
    pub executor_memory_gb: f64,
    /// Whether the watcher had to intervene at all.
    pub adjusted: bool,
}

/// Mesos-style memory watcher for Spark (Section 5.1): observes the real
/// memory requirement and sizes executors so the job never OOMs, at the
/// price of processing the data in waves (more iterations, less
/// parallelism per wave).
#[derive(Debug, Clone, Copy)]
pub struct MemoryWatcher {
    /// Maximum tolerated memory pressure before splitting into waves.
    /// Matches the simulator's hard-OOM threshold with a safety margin.
    pub max_pressure: f64,
    /// Fraction of VM memory usable by executors.
    pub usable_memory_frac: f64,
}

impl Default for MemoryWatcher {
    fn default() -> Self {
        MemoryWatcher {
            max_pressure: 1.2,
            usable_memory_frac: 0.85,
        }
    }
}

impl MemoryWatcher {
    /// Plan executor sizing of `demand` on `vm` (single node).
    pub fn plan(&self, demand: &ExecutionDemand, vm: &VmType) -> ExecutorPlan {
        let usable = vm.memory_gb * self.usable_memory_frac;
        let pressure = demand.working_set_gb / usable.max(1e-9);
        if pressure <= self.max_pressure {
            return ExecutorPlan {
                waves: 1,
                executor_memory_gb: demand.working_set_gb,
                adjusted: false,
            };
        }
        let waves = (pressure / self.max_pressure).ceil() as u32;
        ExecutorPlan {
            waves,
            executor_memory_gb: demand.working_set_gb / waves as f64,
            adjusted: true,
        }
    }

    /// Rewrite a Spark demand so it runs within `vm`'s memory: the working
    /// set is processed in waves, multiplying iterations and dividing
    /// per-iteration parallelism and working set. Non-Spark (soft-memory)
    /// demands are returned unchanged — they spill instead.
    pub fn apply(&self, demand: &ExecutionDemand, vm: &VmType) -> ExecutionDemand {
        if !demand.memory_hard {
            return demand.clone();
        }
        let plan = self.plan(demand, vm);
        if !plan.adjusted {
            return demand.clone();
        }
        let waves = plan.waves.max(1);
        ExecutionDemand {
            working_set_gb: demand.working_set_gb / waves as f64,
            iterations: demand.iterations.saturating_mul(waves),
            parallelism: (demand.parallelism / waves as f64).max(1.0),
            // Each wave re-reads its partition from storage.
            disk_gb_per_iter: demand.disk_gb_per_iter + demand.working_set_gb * 0.15 / waves as f64,
            ..demand.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AlgorithmKind;
    use vesta_cloud_sim::{Catalog, Simulator};

    fn resolve_all(
        alg: AlgorithmKind,
        gb: f64,
    ) -> (ExecutionDemand, ExecutionDemand, ExecutionDemand) {
        let p = alg.profile();
        (
            Framework::Hadoop.resolve(&p, gb, 1),
            Framework::Hive.resolve(&p, gb, 2),
            Framework::Spark.resolve(&p, gb, 3),
        )
    }

    #[test]
    fn framework_names() {
        assert_eq!(Framework::Hadoop.name(), "Hadoop");
        assert_eq!(Framework::Hive.name(), "Hive");
        assert_eq!(Framework::Spark.name(), "Spark");
    }

    #[test]
    fn resolved_demands_validate() {
        for alg in [
            AlgorithmKind::TeraSort,
            AlgorithmKind::KMeans,
            AlgorithmKind::Join,
        ] {
            let (h, v, s) = resolve_all(alg, 30.0);
            h.validate().unwrap();
            v.validate().unwrap();
            s.validate().unwrap();
        }
    }

    #[test]
    fn hadoop_is_disk_heavy_spark_is_memory_heavy() {
        let (h, v, s) = resolve_all(AlgorithmKind::KMeans, 30.0);
        assert!(h.disk_gb_per_iter > 3.0 * s.disk_gb_per_iter);
        assert!(v.disk_gb_per_iter >= h.disk_gb_per_iter);
        assert!(s.working_set_gb > 2.0 * h.working_set_gb);
        assert!(s.memory_hard && !h.memory_hard && !v.memory_hard);
    }

    #[test]
    fn hive_carries_planning_overhead() {
        let (h, v, _) = resolve_all(AlgorithmKind::Select, 3.0);
        assert!(v.startup_s > h.startup_s);
        assert!(v.compute_units > h.compute_units);
    }

    #[test]
    fn spark_startup_is_cheapest() {
        let (h, v, s) = resolve_all(AlgorithmKind::PageRank, 30.0);
        assert!(s.startup_s < h.startup_s);
        assert!(s.startup_s < v.startup_s);
    }

    #[test]
    fn low_level_demand_differs_but_structure_persists() {
        // The Fig. 1 phenomenon: same algorithm, very different raw demand
        // across frameworks…
        let (h, _, s) = resolve_all(AlgorithmKind::TeraSort, 30.0);
        assert!((h.disk_gb_per_iter - s.disk_gb_per_iter).abs() / h.disk_gb_per_iter > 0.5);
        // …but the intrinsic compute:shuffle ratio moves far less.
        let ratio_h = h.compute_units / (h.shuffle_gb_per_iter * h.iterations as f64);
        let ratio_s = s.compute_units / (s.shuffle_gb_per_iter * s.iterations as f64);
        let rel = (ratio_h - ratio_s).abs() / ratio_h;
        assert!(rel < 0.7, "structure drift {rel}");
    }

    #[test]
    fn watcher_passes_through_fitting_demands() {
        let cat = Catalog::aws_ec2();
        let vm = cat.by_name("r5.8xlarge").unwrap(); // 512 GB
        let (_, _, s) = resolve_all(AlgorithmKind::KMeans, 3.0);
        let w = MemoryWatcher::default();
        let plan = w.plan(&s, vm);
        assert_eq!(plan.waves, 1);
        assert!(!plan.adjusted);
        assert_eq!(w.apply(&s, vm), s);
    }

    #[test]
    fn watcher_splits_oversized_spark_jobs_into_waves() {
        let cat = Catalog::aws_ec2();
        let vm = cat.by_name("m5.large").unwrap(); // 8 GB
        let (_, _, mut s) = resolve_all(AlgorithmKind::Pca, 30.0);
        s.working_set_gb = 80.0;
        let w = MemoryWatcher::default();
        let plan = w.plan(&s, vm);
        assert!(plan.adjusted);
        assert!(plan.waves >= 2);
        let adjusted = w.apply(&s, vm);
        assert!(adjusted.working_set_gb < s.working_set_gb);
        assert!(adjusted.iterations > s.iterations);
        // And critically: the adjusted job actually runs (no OOM).
        let sim = Simulator::default();
        assert!(sim.expected_time(&adjusted, vm, 1).is_ok());
        assert!(sim.expected_time(&s, vm, 1).is_err());
    }

    #[test]
    fn watcher_leaves_soft_memory_frameworks_alone() {
        let cat = Catalog::aws_ec2();
        let vm = cat.by_name("m5.large").unwrap();
        let (h, _, _) = resolve_all(AlgorithmKind::Pca, 30.0);
        let w = MemoryWatcher::default();
        assert_eq!(w.apply(&h, vm), h);
    }

    #[test]
    fn bigger_input_means_bigger_demand() {
        let p = AlgorithmKind::Join.profile();
        let small = Framework::Spark.resolve(&p, 3.0, 1);
        let big = Framework::Spark.resolve(&p, 30.0, 1);
        assert!(big.compute_units > small.compute_units);
        assert!(big.working_set_gb > small.working_set_gb);
        assert!(big.parallelism > small.parallelism);
    }
}
