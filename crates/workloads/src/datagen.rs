//! Synthetic dataset generation — the role BigDataBench's and HiBench's
//! data generators play in the paper's setup (Section 5.1: "we can set the
//! input data size when required").
//!
//! A [`DatasetSpec`] describes the *shape* of an input — size, record
//! structure, and most importantly **skew** (Zipf-distributed keys, hub
//! nodes in graphs) — and resolves, together with a workload, into a
//! demand adjustment: skewed data concentrates work on few partitions,
//! cutting effective parallelism and amplifying shuffle imbalance. The
//! generators are seeded and produce deterministic summary statistics, not
//! gigabytes of bytes: the simulator consumes distributions, so that is
//! what we generate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vesta_cloud_sim::ExecutionDemand;

/// Kind of synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataKind {
    /// Unstructured text (wordcount, grep, sort).
    Text,
    /// Relational rows (Hive operators).
    Table,
    /// Edge list with power-law degrees (PageRank, BFS, CF).
    Graph,
    /// Timestamped events (streaming).
    EventStream,
}

/// Description of a synthetic input dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset kind.
    pub kind: DataKind,
    /// Total size in GB.
    pub size_gb: f64,
    /// Number of records (rows / edges / events).
    pub records: u64,
    /// Zipf exponent of the key distribution; 0 = uniform, ≥ 1 = heavily
    /// skewed (a handful of keys own most of the data).
    pub skew: f64,
    /// Partitions the data is split into.
    pub partitions: u32,
}

impl DatasetSpec {
    /// A uniform text corpus of `size_gb` (≈ 100-byte lines).
    pub fn text(size_gb: f64) -> DatasetSpec {
        DatasetSpec {
            kind: DataKind::Text,
            size_gb,
            records: (size_gb * 1e9 / 100.0) as u64,
            skew: 0.4, // natural-language word frequencies are zipfian
            partitions: (size_gb * 8.0).ceil().max(1.0) as u32,
        }
    }

    /// A relational table of `size_gb` (≈ 256-byte rows).
    pub fn table(size_gb: f64) -> DatasetSpec {
        DatasetSpec {
            kind: DataKind::Table,
            size_gb,
            records: (size_gb * 1e9 / 256.0) as u64,
            skew: 0.2,
            partitions: (size_gb * 8.0).ceil().max(1.0) as u32,
        }
    }

    /// A power-law graph with `nodes` vertices and mean degree `degree`
    /// (≈ 16 bytes per edge).
    pub fn graph(nodes: u64, degree: f64) -> DatasetSpec {
        let edges = (nodes as f64 * degree) as u64;
        DatasetSpec {
            kind: DataKind::Graph,
            size_gb: edges as f64 * 16.0 / 1e9,
            records: edges,
            skew: 1.0, // hub vertices
            partitions: ((edges as f64 * 16.0 / 1e9) * 8.0).ceil().max(1.0) as u32,
        }
    }

    /// An event stream of `size_gb` (≈ 512-byte events).
    pub fn events(size_gb: f64) -> DatasetSpec {
        DatasetSpec {
            kind: DataKind::EventStream,
            size_gb,
            records: (size_gb * 1e9 / 512.0) as u64,
            skew: 0.7, // trending topics
            partitions: (size_gb * 8.0).ceil().max(1.0) as u32,
        }
    }

    /// Override the skew exponent.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew.max(0.0);
        self
    }

    /// Deterministic per-partition load shares for this spec: `partitions`
    /// values summing to 1, Zipf-weighted and shuffled by `seed`.
    pub fn partition_shares(&self, seed: u64) -> Vec<f64> {
        let n = self.partitions.max(1) as usize;
        let mut shares: Vec<f64> = (1..=n)
            .map(|rank| 1.0 / (rank as f64).powf(self.skew))
            .collect();
        let total: f64 = shares.iter().sum();
        for s in &mut shares {
            *s /= total;
        }
        // Shuffle so heavy partitions land in random slots.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDA7A);
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            shares.swap(i, j);
        }
        shares
    }

    /// Load-imbalance factor: max partition share over the uniform share.
    /// 1.0 = perfectly balanced; grows with skew.
    pub fn imbalance(&self) -> f64 {
        let shares = self.partition_shares(0);
        let max = shares.iter().cloned().fold(0.0f64, f64::max);
        max * shares.len() as f64
    }

    /// Adjust a resolved demand for this dataset's shape: skew cuts the
    /// *useful* parallelism (stragglers hold the barrier) and inflates
    /// shuffle on the hot partitions.
    pub fn apply(&self, demand: &ExecutionDemand) -> ExecutionDemand {
        let imbalance = self.imbalance();
        ExecutionDemand {
            input_gb: self.size_gb,
            // Work scales with the new input size.
            compute_units: demand.compute_units * self.size_gb / demand.input_gb.max(1e-9),
            working_set_gb: demand.working_set_gb * self.size_gb / demand.input_gb.max(1e-9),
            shuffle_gb_per_iter: demand.shuffle_gb_per_iter * self.size_gb
                / demand.input_gb.max(1e-9)
                * imbalance.sqrt(),
            disk_gb_per_iter: demand.disk_gb_per_iter * self.size_gb / demand.input_gb.max(1e-9),
            // Stragglers: effective parallelism is the balanced parallelism
            // divided by the imbalance factor.
            parallelism: (demand.parallelism / imbalance).max(1.0),
            ..demand.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AlgorithmKind, Framework};

    #[test]
    fn constructors_give_consistent_sizes() {
        let t = DatasetSpec::text(3.0);
        assert_eq!(t.kind, DataKind::Text);
        assert!((t.size_gb - 3.0).abs() < 1e-12);
        assert!(t.records > 10_000_000);
        let g = DatasetSpec::graph(1_000_000, 16.0);
        assert_eq!(g.records, 16_000_000);
        assert!(g.size_gb > 0.2);
        assert!(DatasetSpec::table(1.0).records < t.records);
        assert!(DatasetSpec::events(1.0).records > 0);
    }

    #[test]
    fn partition_shares_sum_to_one_and_are_deterministic() {
        let spec = DatasetSpec::text(2.0);
        let a = spec.partition_shares(42);
        let b = spec.partition_shares(42);
        assert_eq!(a, b);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(a.len(), spec.partitions as usize);
        // different seed shuffles differently but sums identically
        let c = spec.partition_shares(7);
        assert!((c.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_increases_imbalance() {
        let uniform = DatasetSpec::table(4.0).with_skew(0.0);
        let mild = DatasetSpec::table(4.0).with_skew(0.5);
        let heavy = DatasetSpec::table(4.0).with_skew(1.5);
        assert!((uniform.imbalance() - 1.0).abs() < 1e-9);
        assert!(mild.imbalance() > uniform.imbalance());
        assert!(heavy.imbalance() > mild.imbalance());
    }

    #[test]
    fn apply_scales_and_skews_demand() {
        let base = Framework::Spark.resolve(&AlgorithmKind::PageRank.profile(), 10.0, 1);
        let graph = DatasetSpec::graph(50_000_000, 20.0); // ~16 GB, skew 1.0
        let adjusted = graph.apply(&base);
        adjusted.validate().unwrap();
        assert!((adjusted.input_gb - graph.size_gb).abs() < 1e-9);
        // bigger input -> more compute, proportionally
        let ratio = graph.size_gb / 10.0;
        assert!((adjusted.compute_units / base.compute_units - ratio).abs() < 1e-9);
        // skew cut the parallelism
        assert!(adjusted.parallelism < base.parallelism * ratio);
        // and inflated the per-GB shuffle
        assert!(adjusted.shuffle_gb_per_iter / ratio > base.shuffle_gb_per_iter * 0.999);
    }

    #[test]
    fn uniform_dataset_is_a_pure_rescale() {
        let base = Framework::Hadoop.resolve(&AlgorithmKind::WordCount.profile(), 30.0, 2);
        let uniform = DatasetSpec::text(30.0).with_skew(0.0);
        let adjusted = uniform.apply(&base);
        assert!((adjusted.parallelism - base.parallelism).abs() < 1e-9);
        assert!((adjusted.shuffle_gb_per_iter - base.shuffle_gb_per_iter).abs() < 1e-9);
    }

    #[test]
    fn skewed_input_changes_best_vm_story() {
        // A heavily skewed graph run should lower effective parallelism
        // enough to change (or at least not improve) how well huge boxes
        // are utilized.
        use vesta_cloud_sim::{Catalog, Simulator};
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let base = Framework::Spark.resolve(&AlgorithmKind::PageRank.profile(), 10.0, 3);
        let skewed = DatasetSpec::graph(40_000_000, 16.0)
            .with_skew(1.5)
            .apply(&base);
        let big = cat.by_name("c5n.12xlarge").unwrap();
        let small = cat.by_name("c5n.2xlarge").unwrap();
        let speedup_base =
            sim.expected_time(&base, small, 1).unwrap() / sim.expected_time(&base, big, 1).unwrap();
        let speedup_skewed = sim.expected_time(&skewed, small, 1).unwrap()
            / sim.expected_time(&skewed, big, 1).unwrap();
        assert!(
            speedup_skewed < speedup_base,
            "skew should blunt the big box: {speedup_skewed:.2} vs {speedup_base:.2}"
        );
    }
}
