//! # vesta-workloads
//!
//! The 30 big-data application workloads of the Vesta evaluation (Table 3)
//! and the framework semantics that turn each algorithm's intrinsic demand
//! into what Hadoop, Hive or Spark actually asks of a VM:
//!
//! * [`profile`] — framework-independent [`profile::DemandProfile`]s of the
//!   26 distinct algorithms, grouped into the five benchmark use cases of
//!   Section 3.1.
//! * [`framework`] — the Hadoop / Hive / Spark transforms (disk
//!   materialization, planning overhead, in-memory caching + hard OOM) and
//!   the Mesos-style [`framework::MemoryWatcher`] of Section 5.1.
//! * [`datagen`] — seeded synthetic dataset specs (size, records, Zipf
//!   skew) standing in for the BigDataBench / HiBench data generators.
//! * [`suite`] — Table 3 itself: 13 source-training + 5 source-testing
//!   (Hadoop/Hive) and 12 target (Spark) workloads with HiBench /
//!   BigDataBench provenance and dataset scales.

pub mod datagen;
pub mod framework;
pub mod profile;
pub mod suite;

pub use datagen::{DataKind, DatasetSpec};
pub use framework::{ExecutorPlan, Framework, MemoryWatcher};
pub use profile::{AlgorithmKind, DatasetScale, DemandProfile, UseCase};
pub use suite::{Benchmark, SplitSet, Suite, Workload};
