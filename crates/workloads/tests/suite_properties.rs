//! Suite-wide properties: every Table 3 workload must execute on a
//! representative slice of the catalog, demands must scale sensibly, and
//! the framework transforms must keep their qualitative orderings for
//! every shared algorithm.

use vesta_cloud_sim::{Catalog, Objective, Simulator};
use vesta_workloads::{AlgorithmKind, DatasetScale, Framework, MemoryWatcher, Suite, Workload};

#[test]
fn every_workload_runs_on_a_catalog_slice() {
    let cat = Catalog::aws_ec2();
    let sim = Simulator::default();
    let watcher = MemoryWatcher::default();
    let suite = Suite::paper();
    for w in suite.all() {
        for vm in cat.all().iter().step_by(7) {
            let demand = watcher.apply(&w.demand(), vm);
            let t = sim
                .expected_time(&demand, vm, 1)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name(), vm.name));
            assert!(t.is_finite() && t > 0.0);
            // Pathological assignments (Spark-CF wave-split onto a
            // 1 GB burstable micro) legitimately take simulated days;
            // the invariant is finiteness and a loose sanity ceiling.
            assert!(
                t < 30.0 * 86_400.0,
                "{} on {} takes {t:.0}s",
                w.name(),
                vm.name
            );
        }
    }
}

#[test]
fn execution_times_span_a_meaningful_range() {
    // The evaluation needs both quick micro benchmarks and long ML jobs.
    let cat = Catalog::aws_ec2();
    let sim = Simulator::default();
    let watcher = MemoryWatcher::default();
    let suite = Suite::paper();
    let vm = cat.by_name("m5.2xlarge").unwrap();
    let times: Vec<f64> = suite
        .all()
        .iter()
        .map(|w| {
            sim.expected_time(&watcher.apply(&w.demand(), vm), vm, 1)
                .unwrap()
        })
        .collect();
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min > 5.0,
        "suite too homogeneous: {min:.0}s..{max:.0}s"
    );
}

#[test]
fn demand_is_monotone_in_input_scale() {
    for alg in [
        AlgorithmKind::KMeans,
        AlgorithmKind::TeraSort,
        AlgorithmKind::Join,
    ] {
        for fw in [Framework::Hadoop, Framework::Hive, Framework::Spark] {
            let small = fw.resolve(&alg.profile(), 1.0, 1);
            let large = fw.resolve(&alg.profile(), 16.0, 1);
            assert!(large.compute_units > small.compute_units);
            assert!(large.working_set_gb > small.working_set_gb);
            assert!(large.disk_gb_per_iter > small.disk_gb_per_iter);
            assert!(large.shuffle_gb_per_iter >= small.shuffle_gb_per_iter);
            assert!(large.parallelism >= small.parallelism);
            // iterations are an algorithm property, not a data property
            assert_eq!(large.iterations, small.iterations);
        }
    }
}

#[test]
fn framework_orderings_hold_for_every_shared_algorithm() {
    // For every algorithm: Hadoop is disk-heavier than Spark, Spark is
    // memory-heavier than Hadoop, Hive startup exceeds Hadoop startup.
    let suite = Suite::paper();
    let algorithms: Vec<AlgorithmKind> = {
        let mut v: Vec<AlgorithmKind> = suite.all().iter().map(|w| w.algorithm).collect();
        v.dedup();
        v
    };
    for alg in algorithms {
        let p = alg.profile();
        let h = Framework::Hadoop.resolve(&p, 10.0, 1);
        let v = Framework::Hive.resolve(&p, 10.0, 1);
        let s = Framework::Spark.resolve(&p, 10.0, 1);
        assert!(h.disk_gb_per_iter > s.disk_gb_per_iter, "{alg:?}");
        assert!(s.working_set_gb > h.working_set_gb, "{alg:?}");
        assert!(v.startup_s > h.startup_s, "{alg:?}");
        assert!(s.memory_hard && !h.memory_hard && !v.memory_hard, "{alg:?}");
        assert!(s.compute_units < h.compute_units, "{alg:?}");
    }
}

#[test]
fn spark_is_faster_than_hadoop_on_shared_iterative_algorithms() {
    // The classic result the framework transform encodes: in-memory Spark
    // beats disk-bound Hadoop on iterative ML, given a box with enough
    // memory.
    let cat = Catalog::aws_ec2();
    let sim = Simulator::default();
    let vm = cat.by_name("r5.4xlarge").unwrap(); // 128 GB: no memory games
    for alg in [
        AlgorithmKind::KMeans,
        AlgorithmKind::LogisticRegression,
        AlgorithmKind::Pca,
        AlgorithmKind::Bayes,
    ] {
        let p = alg.profile();
        let th = sim
            .expected_time(&Framework::Hadoop.resolve(&p, 10.0, 1), vm, 1)
            .unwrap();
        let ts = sim
            .expected_time(&Framework::Spark.resolve(&p, 10.0, 2), vm, 1)
            .unwrap();
        assert!(
            ts < th,
            "{alg:?}: Spark {ts:.0}s should beat Hadoop {th:.0}s on a big-memory box"
        );
    }
}

#[test]
fn watcher_is_idempotent_and_only_touches_spark() {
    let cat = Catalog::aws_ec2();
    let watcher = MemoryWatcher::default();
    let suite = Suite::paper();
    for w in suite.all() {
        for vm_name in ["t3.small", "m5.large", "r5.8xlarge"] {
            let vm = cat.by_name(vm_name).unwrap();
            let once = watcher.apply(&w.demand(), vm);
            let twice = watcher.apply(&once, vm);
            assert_eq!(once, twice, "{} on {vm_name} not idempotent", w.name());
            if w.framework != Framework::Spark {
                assert_eq!(once, w.demand(), "{} touched by watcher", w.name());
            }
        }
    }
}

#[test]
fn best_vm_types_differ_across_the_suite() {
    // The selection problem must be non-trivial: across 30 workloads the
    // ground-truth best VM under budget must span several families.
    let cat = Catalog::aws_ec2();
    let sim = Simulator::default();
    let watcher = MemoryWatcher::default();
    let suite = Suite::paper();
    let mut best_families: Vec<String> = suite
        .all()
        .iter()
        .map(|w| {
            let demand = w.demand();
            let mut scored: Vec<(usize, f64)> = cat
                .all()
                .iter()
                .map(|vm| {
                    let d = watcher.apply(&demand, vm);
                    let score = sim
                        .expected_phases(&d, vm, 1)
                        .map(|p| Objective::Budget.score(&p, &d, vm, 1))
                        .unwrap_or(f64::INFINITY);
                    (vm.id, score)
                })
                .collect();
            scored.sort_by(|a, b| a.1.total_cmp(&b.1));
            cat.get(scored[0].0).unwrap().family.clone()
        })
        .collect();
    best_families.sort();
    best_families.dedup();
    assert!(
        best_families.len() >= 3,
        "budget-best collapses to too few families: {best_families:?}"
    );
}

#[test]
fn dataset_scales_resolve_for_custom_workloads() {
    // Any (framework, algorithm, scale) triple must produce a valid demand.
    let scales = [
        DatasetScale::Large,
        DatasetScale::Huge,
        DatasetScale::Gigantic,
        DatasetScale::CustomGb(0.1),
        DatasetScale::CustomGb(100.0),
    ];
    for fw in [Framework::Hadoop, Framework::Hive, Framework::Spark] {
        for scale in scales {
            let w = Workload {
                id: 99,
                framework: fw,
                algorithm: AlgorithmKind::Sort,
                scale,
                benchmark: vesta_workloads::Benchmark::HiBench,
                split: vesta_workloads::SplitSet::Target,
            };
            w.demand().validate().unwrap();
        }
    }
}
