//! # vesta-ml
//!
//! From-scratch machine-learning substrate for the Vesta reproduction
//! (ICPP '21, "Best VM Selection for Big Data Applications across Multiple
//! Frameworks by Transfer Learning").
//!
//! Every algorithm the paper's pipeline touches lives here, implemented on a
//! small dense [`matrix::Matrix`] type with no external linear-algebra
//! dependency:
//!
//! * [`stats`] — Pearson correlations over the 20 low-level metrics
//!   (Section 3.1), P90 conservative estimates over repeated cloud runs
//!   (Section 4.1), MAPE (Eq. 7), Euclidean consistency (Fig. 10).
//! * [`pca`] — the correlation-importance analysis of Fig. 9 (Jacobi
//!   eigensolver + importance index + feature selection).
//! * [`kmeans`] — the offline VM-grouping model (k = 9, Fig. 11) and the
//!   warm-started online retrain of Algorithm 1 line 13.
//! * [`forest`] — CART random forests, substrate of the PARIS baseline.
//! * [`linear`] — OLS / NNLS and the Ernest feature map, substrate of the
//!   Ernest baseline.
//! * [`sgd`] — the alternating-SGD driver with a convergence cap
//!   (the Spark-CF "converge limitation" of Section 5.3).
//! * [`cmf`] — collective matrix factorization (Eq. 4-6) that completes a
//!   sparse target workload-label matrix by reusing source knowledge.

pub mod cmf;
pub mod error;
pub mod forest;
pub mod kmeans;
pub mod linear;
pub mod matrix;
pub mod pca;
pub mod sgd;
pub mod stats;

pub use error::MlError;
pub use matrix::Matrix;
