//! Principal Components Analysis over correlation features.
//!
//! Section 3.1 of the paper uses PCA to "analyze the importance of
//! correlation values … and determine which of them is more relevant to find
//! the best VM types". Figure 9 plots an *importance index* per correlation
//! feature and framework; the filtered pipeline drops ~49 % of the data.
//!
//! The implementation is self-contained: the covariance matrix comes from
//! [`crate::matrix::Matrix::covariance`] and eigen-decomposition is done with
//! the cyclic Jacobi rotation method, which is simple, robust and exact
//! enough for the ≤ 20 × 20 symmetric matrices Vesta sees.

use serde::{Deserialize, Serialize};

use crate::error::MlError;
use crate::matrix::Matrix;

/// Result of an eigen-decomposition of a symmetric matrix: pairs of
/// (eigenvalue, eigenvector), sorted by descending eigenvalue.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Row `i` is the unit eigenvector for `values[i]`.
    pub vectors: Matrix,
}

/// Jacobi eigen-decomposition of a symmetric matrix.
///
/// Errors when the matrix is not square. The input is *assumed* symmetric;
/// the routine symmetrizes defensively by averaging `a_ij` and `a_ji`.
pub fn jacobi_eigen(m: &Matrix, max_sweeps: usize) -> Result<EigenDecomposition, MlError> {
    let n = m.rows();
    if n != m.cols() {
        return Err(MlError::Shape(format!(
            "eigen-decomposition needs a square matrix, got {}x{}",
            m.rows(),
            m.cols()
        )));
    }
    if n == 0 {
        return Ok(EigenDecomposition {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        });
    }
    // Work on a symmetrized copy.
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = 0.5 * (m[(i, j)] + m[(j, i)]);
        }
    }
    let mut v = Matrix::identity(n);

    for _sweep in 0..max_sweeps {
        // Off-diagonal magnitude; stop when numerically diagonal.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[(i, j)] * a[(i, j)];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan(phi).
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, phi) on both sides: A <- GᵀAG.
                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                // Accumulate eigenvectors: V <- VG.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n).map(|i| (a[(i, i)], v.col(i))).collect();
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0));
    let values = pairs.iter().map(|p| p.0).collect();
    let vectors = Matrix::from_rows(&pairs.into_iter().map(|p| p.1).collect::<Vec<_>>())?;
    Ok(EigenDecomposition { values, vectors })
}

/// A fitted PCA model over a feature matrix (rows = observations,
/// columns = features such as the 10 correlation similarities).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    /// Eigen-decomposition of the sample covariance matrix.
    pub eigen: EigenDecomposition,
    /// Column means of the training data (for projecting new points).
    pub means: Vec<f64>,
    /// Fraction of total variance captured by each component, descending.
    pub explained_variance_ratio: Vec<f64>,
}

impl Pca {
    /// Fit PCA on `data` (rows = observations, columns = features).
    pub fn fit(data: &Matrix) -> Result<Self, MlError> {
        if data.rows() < 2 {
            return Err(MlError::InsufficientData(
                "PCA needs at least 2 observations".into(),
            ));
        }
        let cov = data.covariance();
        let eigen = jacobi_eigen(&cov, 100)?;
        let total: f64 = eigen.values.iter().map(|v| v.max(0.0)).sum();
        let explained_variance_ratio = if total > 0.0 {
            eigen.values.iter().map(|v| v.max(0.0) / total).collect()
        } else {
            vec![0.0; eigen.values.len()]
        };
        Ok(Pca {
            eigen,
            means: data.col_means(),
            explained_variance_ratio,
        })
    }

    /// Number of components.
    pub fn n_components(&self) -> usize {
        self.eigen.values.len()
    }

    /// Project an observation onto the first `k` principal components.
    pub fn transform(&self, x: &[f64], k: usize) -> Result<Vec<f64>, MlError> {
        if x.len() != self.means.len() {
            return Err(MlError::Shape(format!(
                "transform: point of dim {} vs model dim {}",
                x.len(),
                self.means.len()
            )));
        }
        let k = k.min(self.n_components());
        let centered: Vec<f64> = x.iter().zip(&self.means).map(|(a, m)| a - m).collect();
        Ok((0..k)
            .map(|c| {
                self.eigen
                    .vectors
                    .row(c)
                    .iter()
                    .zip(&centered)
                    .map(|(v, x)| v * x)
                    .sum()
            })
            .collect())
    }

    /// The paper's *importance index* per original feature (Fig. 9): how much
    /// each feature contributes to the variance-weighted principal
    /// components. Computed as `Σ_c ratio_c · vector_c[f]²`, which sums to 1
    /// over features when all components are kept.
    pub fn feature_importance(&self) -> Vec<f64> {
        let nf = self.means.len();
        let mut imp = vec![0.0; nf];
        for (c, ratio) in self.explained_variance_ratio.iter().enumerate() {
            let vec = self.eigen.vectors.row(c);
            for (f, v) in vec.iter().enumerate() {
                imp[f] += ratio * v * v;
            }
        }
        imp
    }

    /// Indices of the features whose importance is at least `threshold`.
    /// Vesta uses this to "reduce irrelevant information" before labeling;
    /// the paper reports ~49 % of the data becomes prunable.
    pub fn select_features(&self, threshold: f64) -> Vec<usize> {
        self.feature_importance()
            .iter()
            .enumerate()
            .filter(|(_, &imp)| imp >= threshold)
            .map(|(i, _)| i)
            .collect()
    }

    /// Smallest number of leading components whose cumulative explained
    /// variance reaches `fraction` (e.g. 0.95).
    pub fn components_for_variance(&self, fraction: f64) -> usize {
        let mut acc = 0.0;
        for (i, r) in self.explained_variance_ratio.iter().enumerate() {
            acc += r;
            if acc >= fraction {
                return i + 1;
            }
        }
        self.n_components()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let m = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&m, 50).unwrap();
        assert!(approx(e.values[0], 3.0, 1e-10));
        assert!(approx(e.values[1], 2.0, 1e-10));
        assert!(approx(e.values[2], 1.0, 1e-10));
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = jacobi_eigen(&m, 50).unwrap();
        assert!(approx(e.values[0], 3.0, 1e-10));
        assert!(approx(e.values[1], 1.0, 1e-10));
        // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
        let v = e.vectors.row(0);
        assert!(approx(v[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-8));
        assert!(approx(v[1].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-8));
    }

    #[test]
    fn jacobi_reconstructs_matrix() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.25],
            vec![0.5, 0.25, 2.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&m, 100).unwrap();
        // Reconstruct A = Σ λ_i v_i v_iᵀ and compare.
        let n = 3;
        let mut recon = Matrix::zeros(n, n);
        for (i, &lam) in e.values.iter().enumerate() {
            let v = e.vectors.row(i);
            for r in 0..n {
                for c in 0..n {
                    recon[(r, c)] += lam * v[r] * v[c];
                }
            }
        }
        assert!(recon.frobenius_distance_sq(&m).unwrap() < 1e-16);
    }

    #[test]
    fn jacobi_rejects_non_square() {
        assert!(jacobi_eigen(&Matrix::zeros(2, 3), 10).is_err());
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.5],
            vec![1.0, 0.5, 3.0],
        ])
        .unwrap();
        let e = jacobi_eigen(&m, 100).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = e
                    .vectors
                    .row(i)
                    .iter()
                    .zip(e.vectors.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx(dot, expect, 1e-8), "rows {i},{j}: {dot}");
            }
        }
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along y = x with tiny orthogonal noise: PC1 ≈ (1,1)/sqrt(2).
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t + noise, t - noise]
            })
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data).unwrap();
        assert!(pca.explained_variance_ratio[0] > 0.99);
        let v = pca.eigen.vectors.row(0);
        assert!(approx(v[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-3));
    }

    #[test]
    fn pca_importance_sums_to_one() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| {
                let t = i as f64;
                vec![t, 2.0 * t + (i % 3) as f64, (i % 5) as f64]
            })
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data).unwrap();
        let sum: f64 = pca.feature_importance().iter().sum();
        assert!(approx(sum, 1.0, 1e-9));
    }

    #[test]
    fn pca_select_features_filters_noise() {
        // Feature 0 carries all the signal; feature 1 is constant.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 1.0]).collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data).unwrap();
        let selected = pca.select_features(0.5);
        assert_eq!(selected, vec![0]);
    }

    #[test]
    fn pca_transform_dimension_checks() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 7.0]]).unwrap();
        let pca = Pca::fit(&data).unwrap();
        assert!(pca.transform(&[1.0], 1).is_err());
        let t = pca.transform(&[1.0, 2.0], 2).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn pca_needs_two_observations() {
        let data = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        assert!(Pca::fit(&data).is_err());
    }

    #[test]
    fn components_for_variance_monotone() {
        let rows: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![i as f64, (i % 7) as f64, (i % 3) as f64])
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let pca = Pca::fit(&data).unwrap();
        assert!(pca.components_for_variance(0.5) <= pca.components_for_variance(0.99));
        assert!(pca.components_for_variance(1.0) <= pca.n_components());
    }
}
