//! Collective matrix factorization (CMF) for cross-framework transfer.
//!
//! This implements the learning core of Section 3.3 (Eq. 4-6). Three
//! relation matrices share one label factor `L ∈ R^{j×g}`:
//!
//! * `U  = X  Lᵀ` — source workload-label matrix (fully observed knowledge),
//! * `V  = T  Lᵀ` — VM-type-label matrix (fully observed knowledge),
//! * `U* = X* Lᵀ` — target workload-label matrix, **sparse**: a target
//!   workload fresh from a new framework has only been run on a sandbox VM
//!   plus 3 randomly picked VM types, so most of its entries are missing.
//!
//! The objective follows Eq. 6 — `min λ‖U* − U‖²_F + (1−λ)‖U* − V‖²_F +
//! R(U, V, U*)` — realized, per Singh & Gordon's CMF, as factor-level
//! coupling: the λ term ties the target factorization to the source
//! knowledge through the shared `L` (and reconstruction of `U`), the (1−λ)
//! term ties it to the VM-side factorization of `V`, and `R` is L2
//! regularization on all factors. Minimization is the alternating SGD of
//! Algorithm 1 lines 7-11: fix two factor groups, update the third, repeat
//! until convergence (or until the online phase's convergence cap fires —
//! surfaced here as [`MlError::NotConverged`] data in the outcome).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::sgd::{run_sgd, run_sgd_cancellable, SgdConfig, SgdOutcome};

/// A sparse observation mask over an `n × j` matrix: `true` entries are
/// observed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mask {
    rows: usize,
    cols: usize,
    observed: Vec<bool>,
}

impl Mask {
    /// All-unobserved mask.
    pub fn none(rows: usize, cols: usize) -> Self {
        Mask {
            rows,
            cols,
            observed: vec![false; rows * cols],
        }
    }

    /// All-observed mask.
    pub fn all(rows: usize, cols: usize) -> Self {
        Mask {
            rows,
            cols,
            observed: vec![true; rows * cols],
        }
    }

    /// Mark entry `(r, c)` observed.
    pub fn observe(&mut self, r: usize, c: usize) {
        self.observed[r * self.cols + c] = true;
    }

    /// Mark a whole row observed.
    pub fn observe_row(&mut self, r: usize) {
        for c in 0..self.cols {
            self.observe(r, c);
        }
    }

    /// Is entry `(r, c)` observed?
    #[inline]
    pub fn is_observed(&self, r: usize, c: usize) -> bool {
        self.observed[r * self.cols + c]
    }

    /// Number of observed entries.
    pub fn count(&self) -> usize {
        self.observed.iter().filter(|&&o| o).count()
    }

    /// Fraction of entries observed.
    pub fn density(&self) -> f64 {
        if self.observed.is_empty() {
            return 0.0;
        }
        self.count() as f64 / self.observed.len() as f64
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
}

/// Hyper-parameters of the CMF solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CmfConfig {
    /// Latent dimensionality `g`.
    pub latent_dim: usize,
    /// Eq. 6's trade-off λ between source coupling and VM coupling; the
    /// paper sets 0.75 "according to our best practice".
    pub lambda: f64,
    /// SGD schedule (learning rate, epochs cap = the convergence limit,
    /// tolerance, L2 regularization = the `R(·)` term).
    pub sgd: SgdConfig,
    /// Seed for factor initialization.
    pub seed: u64,
}

impl Default for CmfConfig {
    fn default() -> Self {
        CmfConfig {
            latent_dim: 8,
            lambda: 0.75,
            sgd: SgdConfig::default(),
            seed: 42,
        }
    }
}

/// Inputs to the CMF solve.
#[derive(Debug, Clone)]
pub struct CmfProblem<'a> {
    /// Source workload-label matrix `U` (`i × j`), fully observed.
    pub source: &'a Matrix,
    /// VM-label matrix `V` (`k × j`), fully observed.
    pub vm: &'a Matrix,
    /// Target workload-label observations `U*` (`n × j`), sparse.
    pub target: &'a Matrix,
    /// Mask of which `target` entries were actually measured.
    pub target_mask: &'a Mask,
}

/// Result of a CMF solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CmfModel {
    /// Source workload factors `X` (`i × g`).
    pub x: Matrix,
    /// Target workload factors `X*` (`n × g`).
    pub x_star: Matrix,
    /// VM factors `T` (`k × g`).
    pub t: Matrix,
    /// Shared label factors `L` (`j × g`).
    pub l: Matrix,
    /// The completed target matrix `U* = X* Lᵀ` (Algorithm 1 line 12).
    pub completed_target: Matrix,
    /// SGD convergence report (lets callers apply the Spark-CF cap policy).
    pub outcome: SgdOutcome,
}

impl CmfModel {
    /// Transfer-suitability score per source workload: negative Euclidean
    /// distance between a target row of `X*` and each row of `X` — "by
    /// calculating the distance between U* and U, we can decide which
    /// x_i ∈ X are suitable for transfer learning" (Section 3.3).
    pub fn source_affinity(&self, target_row: usize) -> Vec<f64> {
        let t = self.x_star.row(target_row);
        (0..self.x.rows())
            .map(|i| {
                let d: f64 = self
                    .x
                    .row(i)
                    .iter()
                    .zip(t)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                -d
            })
            .collect()
    }
}

/// Pre-trained knowledge-side factors shared across many online solves.
///
/// The knowledge matrices `U` and `V` are fixed at training time, yet the
/// cold [`solve`] path re-learns their factors `X`, `T` and the shared label
/// factors `L` from random initialization on every prediction. A
/// [`CmfWarmStart`] captures those factors once (see [`prefit_knowledge`]);
/// [`solve_with`] then starts each online completion from them and only the
/// tiny target factor `X*` starts cold. Every session warm-starts from the
/// *same* immutable factors, so completions stay order-independent across
/// concurrent requests.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CmfWarmStart {
    /// Source workload factors `X` (`i × g`).
    pub x: Matrix,
    /// VM factors `T` (`k × g`).
    pub t: Matrix,
    /// Shared label factors `L` (`j × g`).
    pub l: Matrix,
}

/// Fit the knowledge-side factors `X`, `T`, `L` against the fully observed
/// `U` and `V` alone (no target terms), for use as a [`CmfWarmStart`].
///
/// Runs the same alternating SGD as [`solve`] restricted to the source and
/// VM reconstruction passes, from the same seeded initialization scheme, so
/// the result is deterministic in `config.seed`.
pub fn prefit_knowledge(
    source: &Matrix,
    vm: &Matrix,
    config: &CmfConfig,
) -> Result<CmfWarmStart, MlError> {
    let j = source.cols();
    if vm.cols() != j {
        return Err(MlError::Shape(format!(
            "label dimension disagreement: U has {}, V has {}",
            j,
            vm.cols()
        )));
    }
    if !(0.0..=1.0).contains(&config.lambda) {
        return Err(MlError::InvalidParameter(format!(
            "lambda = {}",
            config.lambda
        )));
    }
    if config.latent_dim == 0 {
        return Err(MlError::InvalidParameter("latent_dim = 0".into()));
    }
    if j == 0 || source.rows() == 0 || vm.rows() == 0 {
        return Err(MlError::InsufficientData("empty knowledge matrices".into()));
    }

    let g = config.latent_dim;
    let (ni, nk) = (source.rows(), vm.rows());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut init = |rows: usize| {
        let mut m = Matrix::zeros(rows, g);
        for v in m.as_mut_slice() {
            *v = rng.gen_range(-0.1..0.1) + 0.3; // vesta-mutants: skip(reason = "seeded init offset is basin-symmetric; flipping it lands in a mirrored factorization of equal quality that threshold tests cannot distinguish")
        }
        m
    };
    let mut x = init(ni);
    let mut t = init(nk);
    let mut l = init(j);

    let (w_src, w_vm) = (config.lambda, 1.0 - config.lambda);
    let reg = config.sgd.l2_reg;
    let src_entries: Vec<(usize, usize)> =
        (0..ni).flat_map(|r| (0..j).map(move |c| (r, c))).collect();
    let vm_entries: Vec<(usize, usize)> =
        (0..nk).flat_map(|r| (0..j).map(move |c| (r, c))).collect();
    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(p, q)| p * q).sum() };

    run_sgd(&config.sgd, |lr| {
        for &(r, c) in &src_entries {
            let e = source[(r, c)] - dot(x.row(r), l.row(c));
            let lrow: Vec<f64> = l.row(c).to_vec();
            for (xv, lv) in x.row_mut(r).iter_mut().zip(&lrow) {
                *xv += lr * (2.0 * w_src * e * lv - 2.0 * reg * *xv);
            }
        }
        for &(r, c) in &vm_entries {
            let e = vm[(r, c)] - dot(t.row(r), l.row(c));
            let lrow: Vec<f64> = l.row(c).to_vec();
            for (tv, lv) in t.row_mut(r).iter_mut().zip(&lrow) {
                *tv += lr * (2.0 * w_vm * e * lv - 2.0 * reg * *tv);
            }
        }
        for &(r, c) in &src_entries {
            let e = source[(r, c)] - dot(x.row(r), l.row(c));
            let xrow: Vec<f64> = x.row(r).to_vec();
            for (lv, xv) in l.row_mut(c).iter_mut().zip(&xrow) {
                *lv += lr * (2.0 * w_src * e * xv - 2.0 * reg * *lv);
            }
        }
        for &(r, c) in &vm_entries {
            let e = vm[(r, c)] - dot(t.row(r), l.row(c));
            let trow: Vec<f64> = t.row(r).to_vec();
            for (lv, tv) in l.row_mut(c).iter_mut().zip(&trow) {
                *lv += lr * (2.0 * w_vm * e * tv - 2.0 * reg * *lv);
            }
        }
        let mut obj = 0.0;
        for &(r, c) in &src_entries {
            let e = source[(r, c)] - dot(x.row(r), l.row(c)); // vesta-mutants: skip(reason = "prefit returns only the factors; its objective closure steers early-stopping alone and is unobservable through the public API")
            obj += w_src * e * e;
        }
        for &(r, c) in &vm_entries {
            let e = vm[(r, c)] - dot(t.row(r), l.row(c)); // vesta-mutants: skip(reason = "prefit returns only the factors; its objective closure steers early-stopping alone and is unobservable through the public API")
            obj += w_vm * e * e;
        }
        let reg_term: f64 = [&x, &t, &l]
            .iter()
            .map(|m| m.as_slice().iter().map(|v| v * v).sum::<f64>()) // vesta-mutants: skip(reason = "prefit returns only the factors; its objective closure steers early-stopping alone and is unobservable through the public API")
            .sum();
        obj + reg * reg_term // vesta-mutants: skip(reason = "prefit returns only the factors; its objective closure steers early-stopping alone and is unobservable through the public API")
    });

    Ok(CmfWarmStart { x, t, l })
}

/// Solve the collective factorization from cold (seeded random) factors.
pub fn solve(problem: &CmfProblem<'_>, config: &CmfConfig) -> Result<CmfModel, MlError> {
    solve_with(problem, config, None)
}

/// Solve the collective factorization, optionally warm-starting the
/// knowledge-side factors `X`, `T`, `L` from a [`CmfWarmStart`].
///
/// With `warm = None` this is exactly [`solve`] (bit-identical, same RNG
/// stream). With `warm = Some(_)`, only the target factor `X*` is
/// initialized from `config.seed`; the knowledge factors start at the
/// prefit point and keep adapting during the alternating SGD.
pub fn solve_with(
    problem: &CmfProblem<'_>,
    config: &CmfConfig,
    warm: Option<&CmfWarmStart>,
) -> Result<CmfModel, MlError> {
    solve_with_cancel(problem, config, warm, &mut || false)
}

/// [`solve_with`] plus a cooperative cancellation check, evaluated between
/// SGD epochs (see [`run_sgd_cancellable`]).
///
/// On cancellation the solve still returns `Ok`: the partially trained
/// factors and completed target are handed back with
/// `outcome.cancelled = true`, so a supervision layer can decide whether the
/// partial progress is usable or must be surfaced as a deadline error. A
/// `cancel` that never fires is bit-identical to [`solve_with`].
pub fn solve_with_cancel(
    problem: &CmfProblem<'_>,
    config: &CmfConfig,
    warm: Option<&CmfWarmStart>,
    cancel: &mut dyn FnMut() -> bool,
) -> Result<CmfModel, MlError> {
    let j = problem.source.cols();
    if problem.vm.cols() != j || problem.target.cols() != j {
        return Err(MlError::Shape(format!(
            "label dimension disagreement: U has {}, V has {}, U* has {}",
            j,
            problem.vm.cols(),
            problem.target.cols()
        )));
    }
    if problem.target_mask.shape() != problem.target.shape() {
        return Err(MlError::Shape("target mask shape mismatch".into()));
    }
    if !(0.0..=1.0).contains(&config.lambda) {
        return Err(MlError::InvalidParameter(format!(
            "lambda = {}",
            config.lambda
        )));
    }
    if config.latent_dim == 0 {
        return Err(MlError::InvalidParameter("latent_dim = 0".into()));
    }
    if j == 0 || problem.source.rows() == 0 || problem.vm.rows() == 0 {
        return Err(MlError::InsufficientData("empty knowledge matrices".into()));
    }

    let g = config.latent_dim;
    let (ni, nn, nk) = (
        problem.source.rows(),
        problem.target.rows(),
        problem.vm.rows(),
    );
    if let Some(w) = warm {
        let ok = |m: &Matrix, rows: usize| m.rows() == rows && m.cols() == g;
        if !ok(&w.x, ni) || !ok(&w.t, nk) || !ok(&w.l, j) {
            return Err(MlError::Shape(format!(
                "warm start shape mismatch: X {}x{} T {}x{} L {}x{}, expected {ni}x{g} / {nk}x{g} / {j}x{g}",
                w.x.rows(),
                w.x.cols(),
                w.t.rows(),
                w.t.cols(),
                w.l.rows(),
                w.l.cols()
            )));
        }
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut init = |rows: usize| {
        let mut m = Matrix::zeros(rows, g);
        for v in m.as_mut_slice() {
            *v = rng.gen_range(-0.1..0.1) + 0.3; // vesta-mutants: skip(reason = "seeded init offset is basin-symmetric; flipping it lands in a mirrored factorization of equal quality that threshold tests cannot distinguish")
        }
        m
    };
    // Factor initialization. Cold path draws X, X*, T, L in that order so
    // the RNG stream (and therefore every historical result) is unchanged;
    // the warm path only draws X*.
    let (mut x, mut x_star, mut t, mut l) = match warm {
        None => {
            let x = init(ni);
            let x_star = init(nn);
            let t = init(nk);
            let l = init(j);
            (x, x_star, t, l)
        }
        Some(w) => (w.x.clone(), init(nn), w.t.clone(), w.l.clone()),
    };

    let lam = config.lambda;
    let reg = config.sgd.l2_reg;
    // Weight on the source / vm reconstruction terms, split by λ per Eq. 6:
    // λ couples U* to the source knowledge, (1-λ) couples it to the VM side.
    // The target's own observed entries always carry unit weight — they are
    // ground truth for this workload.
    let w_src = lam;
    let w_vm = 1.0 - lam;

    // Collect coordinate lists once; SGD sweeps them every epoch.
    let src_entries: Vec<(usize, usize)> =
        (0..ni).flat_map(|r| (0..j).map(move |c| (r, c))).collect();
    let vm_entries: Vec<(usize, usize)> =
        (0..nk).flat_map(|r| (0..j).map(move |c| (r, c))).collect();
    let tgt_entries: Vec<(usize, usize)> = (0..nn)
        .flat_map(|r| (0..j).map(move |c| (r, c)))
        .filter(|&(r, c)| problem.target_mask.is_observed(r, c))
        .collect();
    if tgt_entries.is_empty() {
        return Err(MlError::InsufficientData(
            "target has no observed entries; run the sandbox first".into(),
        ));
    }
    // A corrupted observation would feed NaN into every SGD gradient and
    // silently poison the completion; reject it with a typed error instead.
    if let Some(&(r, c)) = tgt_entries
        .iter()
        .find(|&&(r, c)| !problem.target[(r, c)].is_finite())
    {
        return Err(MlError::NonFinite(format!(
            "observed target entry ({r}, {c}) is {} — mask or impute it before factorization",
            problem.target[(r, c)]
        )));
    }

    let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(p, q)| p * q).sum() };

    let objective = |x: &Matrix, x_star: &Matrix, t: &Matrix, l: &Matrix| -> f64 {
        let mut obj = 0.0;
        for &(r, c) in &src_entries {
            let e = problem.source[(r, c)] - dot(x.row(r), l.row(c));
            obj += w_src * e * e;
        }
        for &(r, c) in &vm_entries {
            let e = problem.vm[(r, c)] - dot(t.row(r), l.row(c));
            obj += w_vm * e * e;
        }
        for &(r, c) in &tgt_entries {
            let e = problem.target[(r, c)] - dot(x_star.row(r), l.row(c));
            obj += e * e;
        }
        let reg_term: f64 = [x, x_star, t, l]
            .iter()
            .map(|m| m.as_slice().iter().map(|v| v * v).sum::<f64>())
            .sum();
        obj + reg * reg_term
    };

    // Alternating SGD (Algorithm 1 lines 7-11): each epoch performs the
    // three fix-two-update-one passes, then reports the joint objective.
    let outcome = run_sgd_cancellable(&config.sgd, &mut *cancel, |lr| {
        // Pass 1: fix X, T, L → update X* from target observations.
        for &(r, c) in &tgt_entries {
            let e = problem.target[(r, c)] - dot(x_star.row(r), l.row(c));
            let lrow: Vec<f64> = l.row(c).to_vec();
            for (xv, lv) in x_star.row_mut(r).iter_mut().zip(&lrow) {
                *xv += lr * (2.0 * e * lv - 2.0 * reg * *xv);
            }
        }
        // Pass 2: fix X*, T (and L) → update X from source knowledge.
        for &(r, c) in &src_entries {
            let e = problem.source[(r, c)] - dot(x.row(r), l.row(c));
            let lrow: Vec<f64> = l.row(c).to_vec();
            for (xv, lv) in x.row_mut(r).iter_mut().zip(&lrow) {
                *xv += lr * (2.0 * w_src * e * lv - 2.0 * reg * *xv);
            }
        }
        // Pass 3: fix X, X* → update T and the shared L.
        for &(r, c) in &vm_entries {
            let e = problem.vm[(r, c)] - dot(t.row(r), l.row(c));
            let lrow: Vec<f64> = l.row(c).to_vec();
            for (tv, lv) in t.row_mut(r).iter_mut().zip(&lrow) {
                *tv += lr * (2.0 * w_vm * e * lv - 2.0 * reg * *tv);
            }
        }
        // Shared L sees gradients from all three reconstructions.
        for &(r, c) in &src_entries {
            let e = problem.source[(r, c)] - dot(x.row(r), l.row(c));
            let xrow: Vec<f64> = x.row(r).to_vec();
            for (lv, xv) in l.row_mut(c).iter_mut().zip(&xrow) {
                *lv += lr * (2.0 * w_src * e * xv - 2.0 * reg * *lv);
            }
        }
        for &(r, c) in &vm_entries {
            let e = problem.vm[(r, c)] - dot(t.row(r), l.row(c));
            let trow: Vec<f64> = t.row(r).to_vec();
            for (lv, tv) in l.row_mut(c).iter_mut().zip(&trow) {
                *lv += lr * (2.0 * w_vm * e * tv - 2.0 * reg * *lv);
            }
        }
        for &(r, c) in &tgt_entries {
            let e = problem.target[(r, c)] - dot(x_star.row(r), l.row(c));
            let xrow: Vec<f64> = x_star.row(r).to_vec();
            for (lv, xv) in l.row_mut(c).iter_mut().zip(&xrow) {
                *lv += lr * (2.0 * e * xv - 2.0 * reg * *lv);
            }
        }
        objective(&x, &x_star, &t, &l)
    });

    let completed_target = x_star.matmul(&l.transpose())?;
    Ok(CmfModel {
        x,
        x_star,
        t,
        l,
        completed_target,
        outcome,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a synthetic rank-`g` problem where source, vm and target share
    /// the exact same label factors.
    fn synthetic(g: usize, seed: u64) -> (Matrix, Matrix, Matrix, Mask, Matrix) {
        let (ni, nn, nk, j) = (8, 4, 10, 12);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = |rows: usize| {
            let mut m = Matrix::zeros(rows, g);
            for v in m.as_mut_slice() {
                *v = rng.gen_range(0.0..1.0);
            }
            m
        };
        let x = gen(ni);
        let xs = gen(nn);
        let t = gen(nk);
        let l = gen(j);
        let lt = l.transpose();
        let source = x.matmul(&lt).unwrap();
        let vm = t.matmul(&lt).unwrap();
        let target_full = xs.matmul(&lt).unwrap();
        // Observe only 1/3 of target entries.
        let mut mask = Mask::none(nn, j);
        let mut rng2 = StdRng::seed_from_u64(seed ^ 0xabcd);
        for r in 0..nn {
            for c in 0..j {
                if rng2.gen::<f64>() < 0.34 {
                    mask.observe(r, c);
                }
            }
        }
        // Each row needs at least one observation for a meaningful test.
        for r in 0..nn {
            mask.observe(r, 0);
        }
        (source, vm, target_full.clone(), mask, target_full)
    }

    #[test]
    fn mask_basics() {
        let mut m = Mask::none(2, 3);
        assert_eq!(m.count(), 0);
        m.observe(1, 2);
        m.observe_row(0);
        assert_eq!(m.count(), 4);
        assert!(m.is_observed(0, 1));
        assert!(!m.is_observed(1, 0));
        assert!((m.density() - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(Mask::all(2, 2).count(), 4);
    }

    #[test]
    fn completes_low_rank_target() {
        let (source, vm, target, mask, truth) = synthetic(3, 11);
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let config = CmfConfig {
            latent_dim: 3,
            sgd: SgdConfig {
                learning_rate: 0.03,
                max_epochs: 4000,
                tolerance: 1e-10,
                l2_reg: 1e-4,
                decay: 0.9995,
            },
            ..Default::default()
        };
        let model = solve(&problem, &config).unwrap();
        // RMSE over *unobserved* entries must beat the trivial predictor.
        let mut err = 0.0;
        let mut base = 0.0;
        let mean_obs = {
            let mut s = 0.0;
            let mut n = 0;
            for r in 0..target.rows() {
                for c in 0..target.cols() {
                    if mask.is_observed(r, c) {
                        s += target[(r, c)];
                        n += 1;
                    }
                }
            }
            s / n as f64
        };
        let mut count = 0;
        for r in 0..target.rows() {
            for c in 0..target.cols() {
                if !mask.is_observed(r, c) {
                    let e = model.completed_target[(r, c)] - truth[(r, c)];
                    err += e * e;
                    let b = mean_obs - truth[(r, c)];
                    base += b * b;
                    count += 1;
                }
            }
        }
        assert!(count > 0);
        let rmse = (err / count as f64).sqrt();
        let baseline = (base / count as f64).sqrt();
        assert!(
            rmse < 0.5 * baseline,
            "CMF rmse {rmse:.4} should beat mean-baseline {baseline:.4} by 2x"
        );
    }

    #[test]
    fn objective_decreases() {
        let (source, vm, target, mask, _) = synthetic(2, 3);
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let config = CmfConfig {
            latent_dim: 2,
            sgd: SgdConfig {
                learning_rate: 0.01,
                max_epochs: 300,
                tolerance: 0.0,
                l2_reg: 1e-3,
                decay: 1.0,
            },
            ..Default::default()
        };
        let model = solve(&problem, &config).unwrap();
        let first = model.outcome.trace[0];
        let last = *model.outcome.trace.last().unwrap();
        assert!(last < first, "objective should decrease: {first} -> {last}");
    }

    #[test]
    fn rejects_invalid_configs() {
        let (source, vm, target, mask, _) = synthetic(2, 5);
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let bad_lambda = CmfConfig {
            lambda: 1.5,
            ..Default::default()
        };
        assert!(solve(&problem, &bad_lambda).is_err());
        let bad_dim = CmfConfig {
            latent_dim: 0,
            ..Default::default()
        };
        assert!(solve(&problem, &bad_dim).is_err());
    }

    #[test]
    fn rejects_empty_observations() {
        let (source, vm, target, _, _) = synthetic(2, 5);
        let empty = Mask::none(target.rows(), target.cols());
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &empty,
        };
        assert!(matches!(
            solve(&problem, &CmfConfig::default()),
            Err(MlError::InsufficientData(_))
        ));
    }

    #[test]
    fn rejects_non_finite_observed_entry() {
        let (source, vm, mut target, mask, _) = synthetic(2, 5);
        // Poison one *observed* cell the way a corrupted metric row would.
        let (r, c) = (0..target.rows())
            .flat_map(|r| (0..target.cols()).map(move |c| (r, c)))
            .find(|&(r, c)| mask.is_observed(r, c))
            .expect("synthetic mask observes something");
        target[(r, c)] = f64::NAN;
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        assert!(matches!(
            solve(&problem, &CmfConfig::default()),
            Err(MlError::NonFinite(_))
        ));
    }

    #[test]
    fn rejects_label_dim_mismatch() {
        let (source, vm, target, mask, _) = synthetic(2, 5);
        let bad_vm = Matrix::zeros(vm.rows(), vm.cols() + 1);
        let problem = CmfProblem {
            source: &source,
            vm: &bad_vm,
            target: &target,
            target_mask: &mask,
        };
        assert!(solve(&problem, &CmfConfig::default()).is_err());
    }

    #[test]
    fn epoch_cap_reports_not_converged() {
        let (source, vm, target, mask, _) = synthetic(3, 7);
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let config = CmfConfig {
            latent_dim: 3,
            sgd: SgdConfig {
                max_epochs: 3,
                tolerance: 0.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let model = solve(&problem, &config).unwrap();
        assert!(!model.outcome.converged);
        assert_eq!(model.outcome.epochs, 3);
    }

    #[test]
    fn source_affinity_prefers_identical_row() {
        let (source, vm, _, _, _) = synthetic(2, 9);
        // Make the target's observed labels literally equal to source row 2.
        let mut target = Matrix::zeros(1, source.cols());
        let row2: Vec<f64> = source.row(2).to_vec();
        target.set_row(0, &row2).unwrap();
        let mask = Mask::all(1, source.cols());
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let config = CmfConfig {
            latent_dim: 2,
            sgd: SgdConfig {
                learning_rate: 0.02,
                max_epochs: 2000,
                tolerance: 1e-11,
                l2_reg: 1e-4,
                decay: 0.999,
            },
            ..Default::default()
        };
        let model = solve(&problem, &config).unwrap();
        let aff = model.source_affinity(0);
        let best = aff
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 2, "affinities: {aff:?}");
    }

    #[test]
    fn prefit_is_deterministic_and_reconstructs_knowledge() {
        let (source, vm, _, _, _) = synthetic(3, 13);
        let config = CmfConfig {
            latent_dim: 3,
            sgd: SgdConfig {
                learning_rate: 0.02,
                max_epochs: 1500,
                tolerance: 1e-10,
                l2_reg: 1e-4,
                decay: 0.999,
            },
            ..Default::default()
        };
        let a = prefit_knowledge(&source, &vm, &config).unwrap();
        let b = prefit_knowledge(&source, &vm, &config).unwrap();
        assert_eq!(a.x, b.x);
        assert_eq!(a.t, b.t);
        assert_eq!(a.l, b.l);
        // X Lᵀ must reconstruct U clearly better than predicting zero.
        let recon = a.x.matmul(&a.l.transpose()).unwrap();
        let mut err = 0.0;
        let mut base = 0.0;
        for r in 0..source.rows() {
            for c in 0..source.cols() {
                let e = recon[(r, c)] - source[(r, c)];
                err += e * e;
                base += source[(r, c)] * source[(r, c)];
            }
        }
        assert!(
            err < 0.25 * base,
            "prefit reconstruction err {err:.4} vs zero-baseline {base:.4}"
        );
    }

    #[test]
    fn warm_solve_is_deterministic_and_completes() {
        let (source, vm, target, mask, _) = synthetic(3, 17);
        let config = CmfConfig {
            latent_dim: 3,
            sgd: SgdConfig {
                learning_rate: 0.02,
                max_epochs: 400,
                tolerance: 1e-9,
                l2_reg: 1e-4,
                decay: 0.999,
            },
            ..Default::default()
        };
        let warm = prefit_knowledge(&source, &vm, &config).unwrap();
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let a = solve_with(&problem, &config, Some(&warm)).unwrap();
        let b = solve_with(&problem, &config, Some(&warm)).unwrap();
        assert_eq!(a.completed_target, b.completed_target);
        assert!(a.completed_target.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn warm_solve_rejects_shape_mismatch() {
        let (source, vm, target, mask, _) = synthetic(2, 19);
        let config = CmfConfig {
            latent_dim: 2,
            ..Default::default()
        };
        let warm = CmfWarmStart {
            x: Matrix::zeros(source.rows() + 1, 2),
            t: Matrix::zeros(vm.rows(), 2),
            l: Matrix::zeros(source.cols(), 2),
        };
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        assert!(matches!(
            solve_with(&problem, &config, Some(&warm)),
            Err(MlError::Shape(_))
        ));
    }

    #[test]
    fn cancelled_solve_returns_partial_progress() {
        let (source, vm, target, mask, _) = synthetic(2, 23);
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let config = CmfConfig {
            latent_dim: 2,
            sgd: SgdConfig {
                max_epochs: 500,
                tolerance: 0.0,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut epochs_allowed = 4;
        let model = solve_with_cancel(&problem, &config, None, &mut || {
            if epochs_allowed == 0 {
                return true;
            }
            epochs_allowed -= 1;
            false
        })
        .unwrap();
        assert!(model.outcome.cancelled);
        assert_eq!(model.outcome.epochs, 4);
        assert!(!model.outcome.converged);
        // Partial progress is still a usable completion (finite entries).
        assert!(model
            .completed_target
            .as_slice()
            .iter()
            .all(|v| v.is_finite()));

        // Never-firing cancel is bit-identical to the plain solve.
        let a = solve_with(&problem, &config, None).unwrap();
        let b = solve_with_cancel(&problem, &config, None, &mut || false).unwrap();
        assert_eq!(a.completed_target, b.completed_target);
        assert!(!b.outcome.cancelled);
    }

    #[test]
    fn deterministic_given_seed() {
        let (source, vm, target, mask, _) = synthetic(2, 21);
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let config = CmfConfig {
            latent_dim: 2,
            sgd: SgdConfig {
                max_epochs: 50,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = solve(&problem, &config).unwrap();
        let b = solve(&problem, &config).unwrap();
        assert_eq!(a.completed_target, b.completed_target);
    }

    #[test]
    fn default_config_matches_the_paper() {
        let cfg = CmfConfig::default();
        assert_eq!(cfg.latent_dim, 8, "g = 8");
        assert!(
            (cfg.lambda - 0.75).abs() < 1e-12,
            "the paper's best-practice lambda"
        );
        assert_eq!(cfg.seed, 42);
    }

    #[test]
    fn source_affinity_is_negative_euclidean_distance() {
        // X = [[1, 1], [4, 5]], X* row 0 = [1, 1]: the first source sits
        // at distance zero, the second across a 3-4-5 triangle, so the
        // affinities are exactly 0 and -5.
        let model = CmfModel {
            x: Matrix::from_rows(&[vec![1.0, 1.0], vec![4.0, 5.0]]).unwrap(),
            x_star: Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap(),
            t: Matrix::zeros(1, 2),
            l: Matrix::zeros(2, 2),
            completed_target: Matrix::zeros(1, 2),
            outcome: SgdOutcome {
                final_objective: 0.0,
                trace: Vec::new(),
                converged: true,
                epochs: 0,
                cancelled: false,
            },
        };
        let aff = model.source_affinity(0);
        assert_eq!(aff.len(), 2);
        assert!(aff[0].abs() < 1e-12, "identical rows, got {}", aff[0]);
        assert!((aff[1] + 5.0).abs() < 1e-12, "-sqrt(9 + 16), got {}", aff[1]);
    }

    #[test]
    fn lambda_one_makes_the_vm_side_inert() {
        let (source, vm, target, mask, _) = synthetic(3, 11);
        let mut garbage = vm.clone();
        for v in garbage.as_mut_slice() {
            *v = -7.5 * *v + 3.0;
        }
        let config = CmfConfig {
            latent_dim: 3,
            lambda: 1.0,
            sgd: SgdConfig {
                learning_rate: 0.02,
                max_epochs: 200,
                tolerance: 0.0,
                l2_reg: 1e-4,
                decay: 1.0,
            },
            ..Default::default()
        };
        // At lambda = 1 the VM weight (1 - lambda) is exactly zero, so
        // prefit and solve must be bit-identical whatever V contains.
        let a = prefit_knowledge(&source, &vm, &config).unwrap();
        let b = prefit_knowledge(&source, &garbage, &config).unwrap();
        assert_eq!(a.x.as_slice(), b.x.as_slice());
        assert_eq!(a.t.as_slice(), b.t.as_slice());
        assert_eq!(a.l.as_slice(), b.l.as_slice());

        let solve_against = |vm_side: &Matrix| {
            let problem = CmfProblem {
                source: &source,
                vm: vm_side,
                target: &target,
                target_mask: &mask,
            };
            solve(&problem, &config).unwrap()
        };
        let pa = solve_against(&vm);
        let pb = solve_against(&garbage);
        assert_eq!(
            pa.completed_target.as_slice(),
            pb.completed_target.as_slice(),
            "lambda = 1 must decouple the completion from V"
        );
    }

    #[test]
    fn reported_trace_matches_an_independent_objective_recomputation() {
        let (source, vm, target, mask, _) = synthetic(2, 3);
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let config = CmfConfig {
            latent_dim: 2,
            sgd: SgdConfig {
                learning_rate: 0.01,
                max_epochs: 120,
                tolerance: 0.0,
                l2_reg: 1e-3,
                decay: 1.0,
            },
            ..Default::default()
        };
        let model = solve(&problem, &config).unwrap();
        // Recompute Eq. 6 at the returned factors, independently of the
        // solver's own objective closure.
        let dot = |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(p, q)| p * q).sum() };
        let (w_src, w_vm) = (config.lambda, 1.0 - config.lambda);
        let mut obj = 0.0;
        for r in 0..source.rows() {
            for c in 0..source.cols() {
                let e = source[(r, c)] - dot(model.x.row(r), model.l.row(c));
                obj += w_src * e * e;
            }
        }
        for r in 0..vm.rows() {
            for c in 0..vm.cols() {
                let e = vm[(r, c)] - dot(model.t.row(r), model.l.row(c));
                obj += w_vm * e * e;
            }
        }
        for r in 0..target.rows() {
            for c in 0..target.cols() {
                if mask.is_observed(r, c) {
                    let e = target[(r, c)] - dot(model.x_star.row(r), model.l.row(c));
                    obj += e * e;
                }
            }
        }
        let reg_term: f64 = [&model.x, &model.x_star, &model.t, &model.l]
            .iter()
            .map(|m| m.as_slice().iter().map(|v| v * v).sum::<f64>())
            .sum();
        obj += config.sgd.l2_reg * reg_term;
        let reported = *model.outcome.trace.last().unwrap();
        let tol = 1e-9 * obj.abs().max(1.0);
        assert!(
            (obj - reported).abs() < tol,
            "reported {reported}, recomputed {obj}"
        );
    }
}
