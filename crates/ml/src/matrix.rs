//! Dense row-major `f64` matrix with the small set of linear-algebra
//! operations the Vesta pipeline needs: products, transposes, Frobenius
//! norms, row normalization and element-wise combinators.
//!
//! This is deliberately not a general BLAS replacement. Vesta's matrices are
//! small (tens of workloads × hundreds of labels × ~120 VM types), so clarity
//! and correctness win over blocking/SIMD tricks. Hot products still get a
//! cache-friendly ikj loop order and rayon-parallel rows.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::error::MlError;

/// A dense row-major matrix of `f64`.
///
/// ```
/// use vesta_ml::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b).unwrap(), a);
/// assert!((a.frobenius_norm() - 30.0_f64.sqrt()).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MlError> {
        if data.len() != rows * cols {
            return Err(MlError::Shape(format!(
                "buffer of len {} cannot form a {}x{} matrix",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from row slices; every row must have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, MlError> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(MlError::Shape(format!(
                    "row {} has len {} but row 0 has len {}",
                    i,
                    r.len(),
                    cols
                )));
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` out into a `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Overwrite row `r` with `values` (must match the column count).
    pub fn set_row(&mut self, r: usize, values: &[f64]) -> Result<(), MlError> {
        if values.len() != self.cols {
            return Err(MlError::Shape(format!(
                "set_row: got {} values for {} columns",
                values.len(),
                self.cols
            )));
        }
        self.row_mut(r).copy_from_slice(values);
        Ok(())
    }

    /// The transpose `Aᵀ`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// Errors when the inner dimensions disagree. Rows of the output are
    /// computed in parallel; within a row the ikj order keeps the accesses to
    /// `other` sequential.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, MlError> {
        if self.cols != other.rows {
            return Err(MlError::Shape(format!(
                "matmul: {}x{} * {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let cols = other.cols;
        out.data
            .par_chunks_mut(cols)
            .enumerate()
            .for_each(|(i, out_row)| {
                for k in 0..self.cols {
                    let a = self[(i, k)];
                    if a == 0.0 {
                        continue;
                    }
                    let other_row = other.row(k);
                    for (o, &b) in out_row.iter_mut().zip(other_row) {
                        *o += a * b;
                    }
                }
            });
        Ok(out)
    }

    /// Frobenius norm `||A||_F = sqrt(sum a_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius distance `||A - B||_F^2`.
    pub fn frobenius_distance_sq(&self, other: &Matrix) -> Result<f64, MlError> {
        if self.shape() != other.shape() {
            return Err(MlError::Shape(format!(
                "frobenius_distance: {:?} vs {:?}",
                self.shape(),
                other.shape()
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum())
    }

    /// Scale every element by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Normalize every row to unit L1 mass (rows of all zeros are left
    /// untouched). This is the "row-normalized weight matrix" read-out used
    /// in the last step of Algorithm 1.
    pub fn row_normalize_l1(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let sum: f64 = out.row(r).iter().map(|v| v.abs()).sum();
            if sum > 0.0 {
                for v in out.row_mut(r) {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Normalize every row to unit L2 norm (zero rows untouched).
    pub fn row_normalize_l2(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let norm: f64 = out.row(r).iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for v in out.row_mut(r) {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Mean of each column.
    pub fn col_means(&self) -> Vec<f64> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (m, v) in means.iter_mut().zip(self.row(r)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Subtract the column mean from every element (centering for PCA).
    pub fn center_columns(&self) -> Matrix {
        let means = self.col_means();
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, m) in out.row_mut(r).iter_mut().zip(&means) {
                *v -= m;
            }
        }
        out
    }

    /// Sample covariance matrix of the columns (rows are observations).
    /// Uses the `n - 1` denominator; a single observation yields zeros.
    pub fn covariance(&self) -> Matrix {
        let centered = self.center_columns();
        let n = self.rows;
        let mut cov = centered
            .transpose()
            .matmul(&centered)
            // vesta-lint: allow(panic-in-lib, reason = "centered is rows x cols and its transpose cols x rows, so the inner dimensions agree identically; keeping covariance() infallible spares every PCA call site a phantom error path")
            .expect("covariance shapes always agree");
        let denom = if n > 1 { (n - 1) as f64 } else { 1.0 };
        cov.map_inplace(|v| v / denom);
        cov
    }

    /// True when every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute element (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |acc, v| acc.max(v.abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "matrix add shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        out
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "matrix sub shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
        out
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, other: &Matrix) -> Matrix {
        // vesta-lint: allow(panic-in-lib, reason = "operator sugar over the checked matmul; the Mul trait cannot return Result, and the fallible matmul() is the supported API for unvalidated shapes")
        self.matmul(other).expect("matrix mul shape mismatch")
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(12) {
                write!(f, "{:>9.4}", self[(r, c)])?;
                if c + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (2, 2));
        assert!(approx(c[(0, 0)], 58.0));
        assert!(approx(c[(0, 1)], 64.0));
        assert!(approx(c[(1, 0)], 139.0));
        assert!(approx(c[(1, 1)], 154.0));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn frobenius_norm_345() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!(approx(a.frobenius_norm(), 5.0));
    }

    #[test]
    fn frobenius_distance_to_self_is_zero() {
        let a = Matrix::from_rows(&[vec![1.5, -2.0], vec![0.25, 9.0]]).unwrap();
        assert!(approx(a.frobenius_distance_sq(&a).unwrap(), 0.0));
    }

    #[test]
    fn row_normalize_l1_rows_sum_to_one() {
        let a = Matrix::from_rows(&[vec![2.0, 2.0], vec![0.0, 0.0], vec![1.0, 3.0]]).unwrap();
        let n = a.row_normalize_l1();
        assert!(approx(n.row(0).iter().sum::<f64>(), 1.0));
        assert!(approx(n.row(2).iter().sum::<f64>(), 1.0));
        // zero rows stay zero
        assert!(n.row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn row_normalize_l2_unit_rows() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        let n = a.row_normalize_l2();
        assert!(approx(n[(0, 0)], 0.6));
        assert!(approx(n[(0, 1)], 0.8));
    }

    #[test]
    fn centering_makes_col_means_zero() {
        let a = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]]).unwrap();
        let c = a.center_columns();
        for m in c.col_means() {
            assert!(approx(m, 0.0));
        }
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        // y = 2x, so cov(x, y) = 2 var(x).
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let cov = a.covariance();
        assert!(approx(cov[(0, 0)], 1.0)); // var(x) with n-1 denom
        assert!(approx(cov[(0, 1)], 2.0));
        assert!(approx(cov[(1, 1)], 4.0));
        assert!(approx(cov[(0, 1)], cov[(1, 0)]));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.5, -1.0], vec![2.0, 0.0]]).unwrap();
        let s = &(&a + &b) - &b;
        assert!(s.frobenius_distance_sq(&a).unwrap() < 1e-18);
    }

    #[test]
    fn set_row_and_col_accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.set_row(1, &[7.0, 8.0, 9.0]).unwrap();
        assert_eq!(m.row(1), &[7.0, 8.0, 9.0]);
        assert_eq!(m.col(2), vec![0.0, 9.0]);
        assert!(m.set_row(0, &[1.0]).is_err());
    }

    proptest! {
        #[test]
        fn prop_transpose_involution(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let mut v = Vec::with_capacity(rows * cols);
            let mut x = seed.wrapping_add(1);
            for _ in 0..rows * cols {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                v.push((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
            }
            let m = Matrix::from_vec(rows, cols, v).unwrap();
            prop_assert_eq!(m.transpose().transpose(), m);
        }

        #[test]
        fn prop_matmul_associativity(n in 1usize..5, seed in 0u64..200) {
            let mut x = seed.wrapping_add(7);
            let mut gen = || {
                let mut v = Vec::with_capacity(n * n);
                for _ in 0..n * n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    v.push((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
                }
                Matrix::from_vec(n, n, v).unwrap()
            };
            let (a, b, c) = (gen(), gen(), gen());
            let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
            let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
            prop_assert!(left.frobenius_distance_sq(&right).unwrap() < 1e-12);
        }

        #[test]
        fn prop_frobenius_triangle_inequality(n in 1usize..5, seed in 0u64..200) {
            let mut x = seed.wrapping_add(13);
            let mut gen = || {
                let mut v = Vec::with_capacity(n * n);
                for _ in 0..n * n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    v.push((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
                }
                Matrix::from_vec(n, n, v).unwrap()
            };
            let (a, b) = (gen(), gen());
            let sum = &a + &b;
            prop_assert!(sum.frobenius_norm() <= a.frobenius_norm() + b.frobenius_norm() + 1e-12);
        }

        #[test]
        fn prop_row_normalize_l1_bounded(rows in 1usize..6, cols in 1usize..6, seed in 0u64..500) {
            let mut x = seed.wrapping_add(3);
            let mut v = Vec::with_capacity(rows * cols);
            for _ in 0..rows * cols {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                v.push((x >> 11) as f64 / (1u64 << 53) as f64);
            }
            let m = Matrix::from_vec(rows, cols, v).unwrap();
            let n = m.row_normalize_l1();
            for r in 0..rows {
                let s: f64 = n.row(r).iter().map(|v| v.abs()).sum();
                prop_assert!(s < 1.0 + 1e-9);
            }
        }
    }
}
