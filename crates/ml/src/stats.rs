//! Statistical primitives: Pearson correlation, percentiles, MAPE,
//! Euclidean distance, summary statistics.
//!
//! These back three parts of the paper: the pairwise correlation analysis
//! over the 20 low-level metrics (Section 3.1), the P90 conservative
//! estimate over 10 repeated runs (Section 4.1), and the MAPE evaluation
//! metric (Eq. 7).

use crate::error::MlError;

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance with the `n - 1` denominator; 0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Pearson correlation coefficient between two equal-length series.
///
/// ```
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [2.0, 4.0, 6.0, 8.0];
/// assert!((vesta_ml::stats::pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
///
/// Returns a value in `[-1, 1]`. Constant series (zero variance) yield a
/// correlation of 0 rather than NaN: in Vesta's setting a flat metric carries
/// no directional information, and 0 keeps it out of every label interval
/// with a definite sign.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, MlError> {
    if xs.len() != ys.len() {
        return Err(MlError::Shape(format!(
            "pearson: series of len {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(MlError::InsufficientData(
            "pearson needs at least 2 points".into(),
        ));
    }
    if let Some(v) = xs.iter().chain(ys).find(|v| !v.is_finite()) {
        return Err(MlError::NonFinite(format!(
            "pearson input contains {v} — mask corrupted samples first"
        )));
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let a = x - mx;
        let b = y - my;
        num += a * b;
        dx += a * a;
        dy += b * b;
    }
    if dx == 0.0 || dy == 0.0 {
        return Ok(0.0);
    }
    // Clamp tiny floating-point excursions back into [-1, 1].
    Ok((num / (dx.sqrt() * dy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman rank correlation: Pearson over the rank transforms. More
/// robust to the heavy-tailed rate metrics a cloud collector produces;
/// offered as an alternative correlation estimator for the label pipeline
/// (ablation: `pearson` vs `spearman` knowledge).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, MlError> {
    if xs.len() != ys.len() {
        return Err(MlError::Shape(format!(
            "spearman: series of len {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    if xs.len() < 2 {
        return Err(MlError::InsufficientData(
            "spearman needs at least 2 points".into(),
        ));
    }
    if let Some(v) = xs.iter().chain(ys).find(|v| !v.is_finite()) {
        return Err(MlError::NonFinite(format!(
            "spearman input contains {v} — mask corrupted samples first"
        )));
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Fractional ranks (average rank for ties), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        // find the tie run [i, j)
        let mut j = i + 1;
        while j < order.len() && xs[order[j]] == xs[order[i]] {
            j += 1;
        }
        let avg_rank = (i + 1 + j) as f64 / 2.0; // mean of ranks i+1..=j
        for &idx in &order[i..j] {
            out[idx] = avg_rank;
        }
        i = j;
    }
    out
}

/// Linear-interpolated percentile (`p` in `[0, 100]`) of a sample.
///
/// Uses the common "linear" (type-7) definition. Errors on an empty sample
/// or `p` outside the range.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64, MlError> {
    if xs.is_empty() {
        return Err(MlError::InsufficientData(
            "percentile of empty sample".into(),
        ));
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(MlError::InvalidParameter(format!("percentile p={p}")));
    }
    if let Some(v) = xs.iter().find(|v| !v.is_finite()) {
        return Err(MlError::NonFinite(format!("percentile input contains {v}")));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Ok(sorted[lo]);
    }
    let w = rank - lo as f64;
    Ok(sorted[lo] * (1.0 - w) + sorted[hi] * w)
}

/// The paper's conservative estimate over repeated cloud runs: the 90th
/// percentile of the measured values.
pub fn p90(xs: &[f64]) -> Result<f64, MlError> {
    percentile(xs, 90.0)
}

/// Mean Absolute Percentage Error (Eq. 7), in percent.
///
/// `MAPE = 100/m * Σ |(predicted - truth) / truth|`. Pairs whose ground
/// truth is 0 are rejected (the metric is undefined there).
pub fn mape(predicted: &[f64], ground_truth: &[f64]) -> Result<f64, MlError> {
    if predicted.len() != ground_truth.len() {
        return Err(MlError::Shape(format!(
            "mape: {} predictions vs {} truths",
            predicted.len(),
            ground_truth.len()
        )));
    }
    if predicted.is_empty() {
        return Err(MlError::InsufficientData("mape of empty sample".into()));
    }
    let mut acc = 0.0;
    for (p, t) in predicted.iter().zip(ground_truth) {
        if *t == 0.0 {
            return Err(MlError::InvalidParameter(
                "mape: ground truth contains 0".into(),
            ));
        }
        acc += ((p - t) / t).abs();
    }
    Ok(100.0 * acc / predicted.len() as f64)
}

/// Euclidean distance between two equal-length vectors. Used by Fig. 10's
/// VM-type consistency measure.
pub fn euclidean(xs: &[f64], ys: &[f64]) -> Result<f64, MlError> {
    if xs.len() != ys.len() {
        return Err(MlError::Shape(format!(
            "euclidean: {} vs {}",
            xs.len(),
            ys.len()
        )));
    }
    Ok(xs
        .iter()
        .zip(ys)
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt())
}

/// Squared Euclidean distance (avoids the sqrt in hot loops like K-Means).
#[inline]
pub fn euclidean_sq(xs: &[f64], ys: &[f64]) -> f64 {
    debug_assert_eq!(xs.len(), ys.len());
    xs.iter().zip(ys).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Fold to the minimum under IEEE total order, starting from `init`.
///
/// Unlike `f64::min` — which always discards a NaN operand — the result is
/// defined by the IEEE total order, so the reduction is deterministic on
/// every input (including NaN payloads and signed zeros) and a negative NaN
/// propagates to the result where finiteness checks can catch it. This
/// (with [`fold_max_total`]) is the sanctioned float-reduction primitive
/// for the `float-total-order` lint.
#[inline]
pub fn fold_min_total(init: f64, xs: impl IntoIterator<Item = f64>) -> f64 {
    xs.into_iter()
        .fold(init, |a, b| if b.total_cmp(&a).is_lt() { b } else { a })
}

/// Fold to the maximum under IEEE total order, starting from `init`.
/// See [`fold_min_total`] for why this replaces `f64::max` folds.
#[inline]
pub fn fold_max_total(init: f64, xs: impl IntoIterator<Item = f64>) -> f64 {
    xs.into_iter()
        .fold(init, |a, b| if b.total_cmp(&a).is_gt() { b } else { a })
}

/// Min-max normalize a series into `[0, 1]`; a constant series maps to 0.5.
pub fn min_max_normalize(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let lo = fold_min_total(f64::INFINITY, xs.iter().copied());
    let hi = fold_max_total(f64::NEG_INFINITY, xs.iter().copied());
    if (hi - lo).abs() < f64::EPSILON {
        return vec![0.5; xs.len()];
    }
    xs.iter().map(|x| (x - lo) / (hi - lo)).collect()
}

/// Coefficient of variation (std dev / mean); 0 when the mean is 0.
/// The paper reports Spark-svd++ running with variance "close to 40%" —
/// this is the statistic that claim is phrased in.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    std_dev(xs) / m
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn total_order_folds_match_plain_min_max_on_finite_input() {
        let xs = [3.0, -1.5, 7.25, 0.0, 2.0];
        assert_eq!(fold_min_total(f64::INFINITY, xs), -1.5);
        assert_eq!(fold_max_total(f64::NEG_INFINITY, xs), 7.25);
        // Empty input returns the identity untouched.
        assert_eq!(fold_max_total(0.0, []), 0.0);
        // A negative NaN propagates through the min instead of vanishing.
        assert!(fold_min_total(f64::INFINITY, [1.0, -f64::NAN, 2.0]).is_nan());
    }

    #[test]
    fn mean_variance_basics() {
        assert!(approx(mean(&[1.0, 2.0, 3.0]), 2.0));
        assert!(approx(variance(&[1.0, 2.0, 3.0]), 1.0));
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let y_neg: Vec<f64> = x.iter().map(|v| -2.0 * v + 7.0).collect();
        assert!(approx(pearson(&x, &y_pos).unwrap(), 1.0));
        assert!(approx(pearson(&x, &y_neg).unwrap(), -1.0));
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        let x = [1.0, 1.0, 1.0];
        let y = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn pearson_rejects_mismatch_and_tiny() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[1.0], &[1.0]).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!(approx(percentile(&xs, 0.0).unwrap(), 1.0));
        assert!(approx(percentile(&xs, 100.0).unwrap(), 4.0));
        assert!(approx(percentile(&xs, 50.0).unwrap(), 2.5));
        assert!(approx(p90(&xs).unwrap(), 3.7));
    }

    #[test]
    fn percentile_errors() {
        assert!(percentile(&[], 50.0).is_err());
        assert!(percentile(&[1.0], 101.0).is_err());
        assert!(percentile(&[1.0], -0.1).is_err());
    }

    #[test]
    fn mape_known_value() {
        // |(110-100)/100| + |(90-100)/100| = 0.2 over 2 runs -> 10%.
        let m = mape(&[110.0, 90.0], &[100.0, 100.0]).unwrap();
        assert!(approx(m, 10.0));
    }

    #[test]
    fn mape_perfect_model_is_zero() {
        assert!(approx(mape(&[5.0, 7.0], &[5.0, 7.0]).unwrap(), 0.0));
    }

    #[test]
    fn mape_rejects_zero_truth() {
        assert!(mape(&[1.0], &[0.0]).is_err());
    }

    #[test]
    fn euclidean_345() {
        assert!(approx(euclidean(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 5.0));
        assert!(approx(euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0));
    }

    #[test]
    fn min_max_normalize_bounds() {
        let n = min_max_normalize(&[2.0, 4.0, 6.0]);
        assert!(approx(n[0], 0.0));
        assert!(approx(n[1], 0.5));
        assert!(approx(n[2], 1.0));
        assert_eq!(min_max_normalize(&[3.0, 3.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn cv_matches_hand_computation() {
        let xs = [10.0, 10.0, 10.0];
        assert!(approx(coefficient_of_variation(&xs), 0.0));
        let ys = [9.0, 11.0];
        // mean 10, sd sqrt(2) -> cv ~ 0.1414
        assert!((coefficient_of_variation(&ys) - (2.0f64).sqrt() / 10.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_monotone_relationship_is_one() {
        // y = x^3 is monotone but non-linear: spearman 1, pearson < 1.
        let x: Vec<f64> = (0..20).map(|i| i as f64 - 10.0).collect();
        let y: Vec<f64> = x.iter().map(|v| v.powi(3)).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties_and_reversal() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [4.0, 3.0, 3.0, 1.0];
        let r = spearman(&x, &y).unwrap();
        assert!((-1.0..=0.0).contains(&r), "reversed with ties: {r}");
        assert!(spearman(&[1.0], &[1.0]).is_err());
        assert!(spearman(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn ranks_average_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn non_finite_inputs_yield_typed_errors_not_nan() {
        let clean = [1.0, 2.0, 3.0];
        let poisoned = [1.0, f64::NAN, 3.0];
        assert!(matches!(
            pearson(&clean, &poisoned),
            Err(MlError::NonFinite(_))
        ));
        assert!(matches!(
            spearman(&poisoned, &clean),
            Err(MlError::NonFinite(_))
        ));
        assert!(matches!(
            percentile(&poisoned, 50.0),
            Err(MlError::NonFinite(_))
        ));
        assert!(matches!(
            percentile(&[1.0, f64::INFINITY], 50.0),
            Err(MlError::NonFinite(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_pearson_bounded(seed in 0u64..2000, n in 2usize..40) {
            let mut x = seed.wrapping_add(17);
            let mut gen = || {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    v.push((x >> 11) as f64 / (1u64 << 53) as f64);
                }
                v
            };
            let (a, b) = (gen(), gen());
            let r = pearson(&a, &b).unwrap();
            prop_assert!((-1.0..=1.0).contains(&r));
        }

        #[test]
        fn prop_pearson_symmetric(seed in 0u64..2000, n in 2usize..40) {
            let mut x = seed.wrapping_add(5);
            let mut gen = || {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    v.push((x >> 11) as f64 / (1u64 << 53) as f64);
                }
                v
            };
            let (a, b) = (gen(), gen());
            prop_assert!((pearson(&a, &b).unwrap() - pearson(&b, &a).unwrap()).abs() < 1e-12);
        }

        #[test]
        fn prop_pearson_scale_invariant(seed in 0u64..1000, n in 3usize..30, scale in 0.1f64..50.0) {
            let mut x = seed.wrapping_add(29);
            let mut gen = || {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    v.push((x >> 11) as f64 / (1u64 << 53) as f64);
                }
                v
            };
            let (a, b) = (gen(), gen());
            let scaled: Vec<f64> = b.iter().map(|v| v * scale + 3.0).collect();
            let r1 = pearson(&a, &b).unwrap();
            let r2 = pearson(&a, &scaled).unwrap();
            prop_assert!((r1 - r2).abs() < 1e-9);
        }

        #[test]
        fn prop_percentile_monotone(seed in 0u64..500, n in 1usize..30) {
            let mut x = seed.wrapping_add(3);
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                v.push((x >> 11) as f64 / (1u64 << 53) as f64);
            }
            let p25 = percentile(&v, 25.0).unwrap();
            let p50 = percentile(&v, 50.0).unwrap();
            let p90v = p90(&v).unwrap();
            prop_assert!(p25 <= p50 + 1e-12);
            prop_assert!(p50 <= p90v + 1e-12);
        }

        #[test]
        fn prop_mape_nonnegative(seed in 0u64..500, n in 1usize..20) {
            let mut x = seed.wrapping_add(11);
            let mut gen = || {
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    v.push(0.5 + (x >> 11) as f64 / (1u64 << 53) as f64);
                }
                v
            };
            let (p, t) = (gen(), gen());
            prop_assert!(mape(&p, &t).unwrap() >= 0.0);
        }
    }
}
