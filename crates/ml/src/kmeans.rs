//! K-Means clustering with k-means++ seeding and Lloyd iterations.
//!
//! Vesta uses K-Means twice: offline to "group VM types into several
//! categories" from correlation-label features (Section 3.1, tuned to k = 9
//! in Fig. 11), and online to cheaply retrain once CMF has completed the
//! sparse target matrix (Algorithm 1, line 13). The online retrain is served
//! by [`KMeans::refit_from`], which warm-starts Lloyd from existing
//! centroids instead of reseeding — that is where the "minimized overhead"
//! of line 13 comes from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::stats::euclidean_sq;

/// Configuration for a K-Means fit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters (the paper's hyper-parameter `k`, best at 9).
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when the inertia improvement falls below this relative tolerance.
    pub tolerance: f64,
    /// RNG seed for k-means++ seeding.
    pub seed: u64,
    /// Number of independent restarts; the best inertia wins.
    pub n_init: usize,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 9,
            max_iters: 200,
            tolerance: 1e-6,
            seed: 42,
            n_init: 4,
        }
    }
}

/// A fitted K-Means model.
///
/// ```
/// use vesta_ml::kmeans::{KMeans, KMeansConfig};
/// use vesta_ml::Matrix;
///
/// let data = Matrix::from_rows(&[
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 10.0], vec![10.1, 10.0],
/// ]).unwrap();
/// let model = KMeans::fit(&data, &KMeansConfig { k: 2, ..Default::default() }).unwrap();
/// assert_eq!(model.predict(&[0.05, 0.0]).unwrap(), model.predict(&[0.0, 0.1]).unwrap());
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    /// Row `c` is the centroid of cluster `c`.
    pub centroids: Matrix,
    /// Cluster index per training point.
    pub assignments: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations actually run (best restart).
    pub iterations: usize,
}

impl KMeans {
    /// Fit on `data` (rows = points). Errors when `k == 0` or there are
    /// fewer points than clusters.
    pub fn fit(data: &Matrix, config: &KMeansConfig) -> Result<Self, MlError> {
        if config.k == 0 {
            return Err(MlError::InvalidParameter("k-means with k = 0".into()));
        }
        if data.rows() < config.k {
            return Err(MlError::InsufficientData(format!(
                "{} points for k = {}",
                data.rows(),
                config.k
            )));
        }
        let mut best: Option<KMeans> = None;
        for restart in 0..config.n_init.max(1) {
            let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart as u64));
            let centroids = plus_plus_seed(data, config.k, &mut rng)?;
            let fitted = lloyd(data, centroids, config.max_iters, config.tolerance)?;
            if best.as_ref().is_none_or(|b| fitted.inertia < b.inertia) {
                best = Some(fitted);
            }
        }
        best.ok_or_else(|| MlError::InvalidParameter("k-means ran zero restarts".into()))
    }

    /// Warm-start refit: run Lloyd from this model's centroids on (possibly
    /// extended) data. This is Vesta's low-overhead online retrain.
    pub fn refit_from(&self, data: &Matrix, config: &KMeansConfig) -> Result<Self, MlError> {
        if data.cols() != self.centroids.cols() {
            return Err(MlError::Shape(format!(
                "refit: data dim {} vs centroid dim {}",
                data.cols(),
                self.centroids.cols()
            )));
        }
        if data.rows() == 0 {
            return Err(MlError::InsufficientData("refit on empty data".into()));
        }
        lloyd(
            data,
            self.centroids.clone(),
            config.max_iters,
            config.tolerance,
        )
    }

    /// Cluster index of the nearest centroid for `point`.
    pub fn predict(&self, point: &[f64]) -> Result<usize, MlError> {
        if point.len() != self.centroids.cols() {
            return Err(MlError::Shape(format!(
                "predict: point dim {} vs centroid dim {}",
                point.len(),
                self.centroids.cols()
            )));
        }
        Ok(nearest(&self.centroids, point).0)
    }

    /// Distance to the nearest centroid.
    pub fn distance_to_nearest(&self, point: &[f64]) -> Result<f64, MlError> {
        if point.len() != self.centroids.cols() {
            return Err(MlError::Shape("distance: dim mismatch".into()));
        }
        Ok(nearest(&self.centroids, point).1.sqrt())
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Points per cluster, given the stored assignments.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

fn nearest(centroids: &Matrix, point: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for c in 0..centroids.rows() {
        let d = euclidean_sq(centroids.row(c), point);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

/// k-means++ seeding: first centroid uniform, the rest D²-weighted.
#[allow(clippy::needless_range_loop)] // indices cross several parallel arrays
fn plus_plus_seed(data: &Matrix, k: usize, rng: &mut StdRng) -> Result<Matrix, MlError> {
    let n = data.rows();
    let mut centroids = Matrix::zeros(k, data.cols());
    let first = rng.gen_range(0..n);
    centroids.set_row(0, data.row(first))?;
    let mut dist_sq: Vec<f64> = (0..n)
        .map(|i| euclidean_sq(data.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = dist_sq.iter().sum();
        let idx = if total <= 0.0 {
            // All points coincide with chosen centroids: pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &d) in dist_sq.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.set_row(c, data.row(idx))?;
        for i in 0..n {
            let d = euclidean_sq(data.row(i), centroids.row(c));
            if d < dist_sq[i] {
                dist_sq[i] = d;
            }
        }
    }
    Ok(centroids)
}

/// Lloyd iterations from given starting centroids.
#[allow(clippy::needless_range_loop)] // indices cross several parallel arrays
fn lloyd(
    data: &Matrix,
    mut centroids: Matrix,
    max_iters: usize,
    tolerance: f64,
) -> Result<KMeans, MlError> {
    let n = data.rows();
    let k = centroids.rows();
    let dim = data.cols();
    let mut assignments = vec![0usize; n];
    let mut inertia = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..max_iters {
        iterations = iter + 1;
        // Assignment step (parallel over points).
        let assigned: Vec<(usize, f64)> = (0..n)
            .into_par_iter()
            .map(|i| nearest(&centroids, data.row(i)))
            .collect();
        let new_inertia: f64 = assigned.iter().map(|a| a.1).sum();
        for (i, a) in assigned.iter().enumerate() {
            assignments[i] = a.0;
        }
        // Update step.
        let mut sums = Matrix::zeros(k, dim);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            for (s, v) in sums.row_mut(c).iter_mut().zip(data.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Empty cluster: re-seed it at the point farthest from its
                // current assignment, a standard fix that keeps k stable.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = euclidean_sq(data.row(a), centroids.row(assignments[a]));
                        let db = euclidean_sq(data.row(b), centroids.row(assignments[b]));
                        da.total_cmp(&db)
                    })
                    .ok_or_else(|| {
                        MlError::InsufficientData("empty data while reseeding cluster".into())
                    })?;
                let row = data.row(far).to_vec();
                centroids.set_row(c, &row)?;
                continue;
            }
            let inv = 1.0 / counts[c] as f64;
            let mean: Vec<f64> = sums.row(c).iter().map(|s| s * inv).collect();
            centroids.set_row(c, &mean)?;
        }
        // Convergence check on relative inertia improvement.
        if inertia.is_finite() {
            let improvement = (inertia - new_inertia).abs() / inertia.max(f64::EPSILON);
            if improvement < tolerance {
                inertia = new_inertia;
                break;
            }
        }
        inertia = new_inertia;
    }
    Ok(KMeans {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// Mean silhouette coefficient of a clustering: for each point, `(b - a) /
/// max(a, b)` where `a` is the mean distance to its own cluster and `b`
/// the mean distance to the nearest other cluster. In `[-1, 1]`; higher is
/// better-separated. A model-selection diagnostic complementing the
/// paper's cross-validated k tuning (Fig. 11).
pub fn silhouette(data: &Matrix, assignments: &[usize], k: usize) -> Result<f64, MlError> {
    if data.rows() != assignments.len() {
        return Err(MlError::Shape(format!(
            "silhouette: {} points vs {} assignments",
            data.rows(),
            assignments.len()
        )));
    }
    if k < 2 {
        return Err(MlError::InvalidParameter("silhouette needs k >= 2".into()));
    }
    let n = data.rows();
    if n < 2 {
        return Err(MlError::InsufficientData(
            "silhouette needs >= 2 points".into(),
        ));
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        // mean distance to each cluster
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = euclidean_sq(data.row(i), data.row(j)).sqrt();
            sums[assignments[j]] += d;
            counts[assignments[j]] += 1;
        }
        let own = assignments[i];
        if counts[own] == 0 {
            continue; // singleton cluster: silhouette undefined, skip
        }
        let a = sums[own] / counts[own] as f64;
        let b = crate::stats::fold_min_total(
            f64::INFINITY,
            (0..k)
                .filter(|&c| c != own && counts[c] > 0)
                .map(|c| sums[c] / counts[c] as f64),
        );
        if !b.is_finite() {
            continue;
        }
        total += (b - a) / a.max(b).max(1e-12);
        counted += 1;
    }
    if counted == 0 {
        return Err(MlError::InsufficientData(
            "no point had both own- and other-cluster neighbours".into(),
        ));
    }
    Ok(total / counted as f64)
}

/// Train/test index pair produced by [`k_fold_indices`].
pub type FoldSplit = (Vec<usize>, Vec<usize>);

/// 10-fold (or n-fold) cross-validation index splitter. Returns
/// `(train_indices, test_indices)` per fold, deterministic given the seed.
pub fn k_fold_indices(n: usize, folds: usize, seed: u64) -> Result<Vec<FoldSplit>, MlError> {
    if folds < 2 {
        return Err(MlError::InvalidParameter(format!("{folds}-fold CV")));
    }
    if n < folds {
        return Err(MlError::InsufficientData(format!(
            "{n} samples for {folds}-fold CV"
        )));
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fisher–Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut out = Vec::with_capacity(folds);
    for f in 0..folds {
        let test: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(i, _)| i % folds == f)
            .map(|(_, &v)| v)
            .collect();
        let train: Vec<usize> = order
            .iter()
            .enumerate()
            .filter(|(i, _)| i % folds != f)
            .map(|(_, &v)| v)
            .collect();
        out.push((train, test));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn three_blob_data() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.01;
            rows.push(vec![0.0 + jitter, 0.0 - jitter]);
            rows.push(vec![10.0 + jitter, 10.0 - jitter]);
            rows.push(vec![-10.0 - jitter, 10.0 + jitter]);
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_three_blobs() {
        let data = three_blob_data();
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let sizes = model.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        assert!(sizes.iter().all(|&s| s == 20), "sizes = {sizes:?}");
        // Each centroid should be near one of the blob centers.
        let centers = [[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        for c in 0..3 {
            let row = model.centroids.row(c);
            let ok = centers.iter().any(|t| euclidean_sq(row, t) < 0.1);
            assert!(ok, "centroid {row:?} far from every blob center");
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let data = three_blob_data();
        assert!(KMeans::fit(
            &data,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(KMeans::fit(
            &data,
            &KMeansConfig {
                k: 100,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn predict_matches_training_assignment() {
        let data = three_blob_data();
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        for i in 0..data.rows() {
            assert_eq!(model.predict(data.row(i)).unwrap(), model.assignments[i]);
        }
    }

    #[test]
    fn predict_rejects_wrong_dim() {
        let data = three_blob_data();
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(model.predict(&[1.0]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let data = three_blob_data();
        let cfg = KMeansConfig {
            k: 3,
            seed: 7,
            ..Default::default()
        };
        let a = KMeans::fit(&data, &cfg).unwrap();
        let b = KMeans::fit(&data, &cfg).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn refit_is_cheap_and_consistent() {
        let data = three_blob_data();
        let cfg = KMeansConfig {
            k: 3,
            ..Default::default()
        };
        let model = KMeans::fit(&data, &cfg).unwrap();
        let refit = model.refit_from(&data, &cfg).unwrap();
        // Warm start from converged centroids converges immediately-ish.
        assert!(refit.iterations <= model.iterations);
        assert!(refit.inertia <= model.inertia + 1e-9);
    }

    #[test]
    fn refit_rejects_dim_mismatch() {
        let data = three_blob_data();
        let model = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let other = Matrix::zeros(4, 5);
        assert!(model.refit_from(&other, &KMeansConfig::default()).is_err());
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = three_blob_data();
        let i2 = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap()
        .inertia;
        let i3 = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap()
        .inertia;
        assert!(i3 < i2);
    }

    #[test]
    fn silhouette_prefers_the_true_cluster_count() {
        let data = three_blob_data();
        let m2 = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let m3 = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let s2 = silhouette(&data, &m2.assignments, 2).unwrap();
        let s3 = silhouette(&data, &m3.assignments, 3).unwrap();
        assert!(s3 > s2, "k=3 silhouette {s3:.3} should beat k=2 {s2:.3}");
        assert!(
            s3 > 0.9,
            "three clean blobs should be near-perfect: {s3:.3}"
        );
    }

    #[test]
    fn silhouette_rejects_degenerate_inputs() {
        let data = three_blob_data();
        assert!(silhouette(&data, &[0; 10], 3).is_err()); // length mismatch
        let m = KMeans::fit(
            &data,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(silhouette(&data, &m.assignments, 1).is_err()); // k < 2
    }

    #[test]
    fn k_fold_partitions_everything_exactly_once() {
        let folds = k_fold_indices(25, 10, 99).unwrap();
        assert_eq!(folds.len(), 10);
        let mut seen = [0usize; 25];
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 25);
            for &t in test {
                seen[t] += 1;
            }
            // train and test are disjoint
            for &t in test {
                assert!(!train.contains(&t));
            }
        }
        assert!(seen.iter().all(|&s| s == 1));
    }

    #[test]
    fn k_fold_rejects_degenerate() {
        assert!(k_fold_indices(5, 1, 0).is_err());
        assert!(k_fold_indices(3, 10, 0).is_err());
    }

    proptest! {
        #[test]
        fn prop_assignments_are_nearest(seed in 0u64..100, n in 6usize..30) {
            let mut x = seed.wrapping_add(1);
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let mut r = Vec::with_capacity(3);
                for _ in 0..3 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    r.push((x >> 11) as f64 / (1u64 << 53) as f64 * 10.0);
                }
                rows.push(r);
            }
            let data = Matrix::from_rows(&rows).unwrap();
            let model = KMeans::fit(&data, &KMeansConfig { k: 3, n_init: 1, seed, ..Default::default() }).unwrap();
            for i in 0..n {
                let assigned = model.assignments[i];
                let d_assigned = euclidean_sq(data.row(i), model.centroids.row(assigned));
                for c in 0..model.k() {
                    let d = euclidean_sq(data.row(i), model.centroids.row(c));
                    prop_assert!(d_assigned <= d + 1e-9);
                }
            }
        }

        #[test]
        fn prop_inertia_equals_sum_of_assigned_distances(seed in 0u64..100, n in 5usize..25) {
            let mut x = seed.wrapping_add(9);
            let mut rows = Vec::with_capacity(n);
            for _ in 0..n {
                let mut r = Vec::with_capacity(2);
                for _ in 0..2 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    r.push((x >> 11) as f64 / (1u64 << 53) as f64 * 5.0);
                }
                rows.push(r);
            }
            let data = Matrix::from_rows(&rows).unwrap();
            let model = KMeans::fit(&data, &KMeansConfig { k: 2, n_init: 1, seed, ..Default::default() }).unwrap();
            let manual: f64 = (0..n)
                .map(|i| euclidean_sq(data.row(i), model.centroids.row(model.assignments[i])))
                .sum();
            prop_assert!((manual - model.inertia).abs() < 1e-6);
        }
    }
}
