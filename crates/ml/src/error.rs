//! Error type shared across the ML substrate.

use std::fmt;

/// Errors produced by the `vesta-ml` substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MlError {
    /// A dimension / shape disagreement between operands.
    Shape(String),
    /// Not enough data to run the requested algorithm (e.g. fewer samples
    /// than clusters, an empty training set, fewer than two points for a
    /// correlation).
    InsufficientData(String),
    /// Invalid hyper-parameter (k = 0, λ outside [0, 1], zero trees, …).
    InvalidParameter(String),
    /// An iterative solver hit its iteration cap without converging.
    /// Mirrors the Spark-CF case in the paper where the online phase applies
    /// a convergence limit.
    NotConverged {
        /// Iterations actually executed.
        iterations: usize,
        /// Last observed objective value.
        last_objective: f64,
    },
    /// The input carried NaN or infinite values where a finite sample was
    /// required (e.g. corrupted metric samples reaching an estimator).
    NonFinite(String),
}

impl MlError {
    /// True when a retry can plausibly succeed. Only
    /// [`MlError::NotConverged`] qualifies: a warm start or a higher
    /// iteration cap may finish the solve, whereas shape, parameter and
    /// data errors are deterministic properties of the request.
    pub fn is_transient(&self) -> bool {
        matches!(self, MlError::NotConverged { .. })
    }
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Shape(s) => write!(f, "shape mismatch: {s}"),
            MlError::InsufficientData(s) => write!(f, "insufficient data: {s}"),
            MlError::InvalidParameter(s) => write!(f, "invalid parameter: {s}"),
            MlError::NotConverged { iterations, last_objective } => write!(
                f,
                "solver did not converge after {iterations} iterations (objective {last_objective:.6})"
            ),
            MlError::NonFinite(s) => write!(f, "non-finite input: {s}"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let variants = [
            MlError::Shape("a".into()),
            MlError::InsufficientData("b".into()),
            MlError::InvalidParameter("c".into()),
            MlError::NotConverged {
                iterations: 10,
                last_objective: 1.5,
            },
            MlError::NonFinite("d".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
