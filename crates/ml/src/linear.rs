//! Linear least squares and non-negative least squares (NNLS).
//!
//! Substrate for the Ernest baseline (Venkataraman et al., NSDI '16): Ernest
//! fits a small non-negative linear model over hand-designed features of the
//! input scale and the machine count, `time ≈ θ₀·1 + θ₁·(n/m) + θ₂·log m +
//! θ₃·m`, from a handful of cheap training runs on scaled-down inputs. NNLS
//! keeps the θ's physically meaningful (no negative work terms).

use serde::{Deserialize, Serialize};

use crate::error::MlError;
use crate::matrix::Matrix;

/// Solve the normal equations `(XᵀX + ridge·I) θ = Xᵀy` by Gaussian
/// elimination with partial pivoting. A tiny default ridge keeps
/// near-collinear designs (common with only 5-10 Ernest training runs)
/// solvable.
pub fn least_squares(x: &Matrix, y: &[f64], ridge: f64) -> Result<Vec<f64>, MlError> {
    if x.rows() != y.len() {
        return Err(MlError::Shape(format!(
            "least_squares: {} rows vs {} targets",
            x.rows(),
            y.len()
        )));
    }
    if x.rows() == 0 || x.cols() == 0 {
        return Err(MlError::InsufficientData("empty design matrix".into()));
    }
    let xt = x.transpose();
    let mut a = xt.matmul(x)?;
    for i in 0..a.rows() {
        a[(i, i)] += ridge;
    }
    let ymat = Matrix::from_vec(y.len(), 1, y.to_vec())?;
    let b = xt.matmul(&ymat)?;
    solve_linear_system(&a, &b.col(0))
}

/// Solve `A θ = b` for square `A` by Gaussian elimination with partial
/// pivoting.
pub fn solve_linear_system(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, MlError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(MlError::Shape(format!(
            "solve: A is {}x{}, b has len {}",
            a.rows(),
            a.cols(),
            b.len()
        )));
    }
    // Augmented matrix [A | b].
    let mut m = Matrix::zeros(n, n + 1);
    for i in 0..n {
        for j in 0..n {
            m[(i, j)] = a[(i, j)];
        }
        m[(i, n)] = b[i];
    }
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&p, &q| m[(p, col)].abs().total_cmp(&m[(q, col)].abs()))
            .ok_or_else(|| MlError::InsufficientData("empty pivot range".into()))?;
        if m[(pivot, col)].abs() < 1e-12 {
            return Err(MlError::InsufficientData(
                "singular system in linear solve".into(),
            ));
        }
        if pivot != col {
            for j in 0..=n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot, j)];
                m[(pivot, j)] = tmp;
            }
        }
        let inv = 1.0 / m[(col, col)];
        for j in col..=n {
            m[(col, j)] *= inv;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = m[(row, col)];
            if factor == 0.0 {
                continue;
            }
            for j in col..=n {
                m[(row, j)] -= factor * m[(col, j)];
            }
        }
    }
    Ok((0..n).map(|i| m[(i, n)]).collect())
}

/// Non-negative least squares via projected gradient descent with a
/// Lipschitz step. Small problems only (Ernest has 4-6 features).
pub fn nnls(x: &Matrix, y: &[f64], max_iters: usize) -> Result<Vec<f64>, MlError> {
    if x.rows() != y.len() {
        return Err(MlError::Shape(format!(
            "nnls: {} rows vs {} targets",
            x.rows(),
            y.len()
        )));
    }
    if x.rows() == 0 || x.cols() == 0 {
        return Err(MlError::InsufficientData("empty design matrix".into()));
    }
    let xt = x.transpose();
    let gram = xt.matmul(x)?;
    let ymat = Matrix::from_vec(y.len(), 1, y.to_vec())?;
    let xty = xt.matmul(&ymat)?.col(0);
    // Lipschitz constant of the gradient: bounded by trace of Gram matrix.
    let lip: f64 = (0..gram.rows())
        .map(|i| gram[(i, i)])
        .sum::<f64>()
        .max(1e-12);
    let step = 1.0 / lip;
    let k = x.cols();
    // Warm start from the clamped unconstrained solution when available.
    let mut theta = least_squares(x, y, 1e-9)
        .map(|t| t.into_iter().map(|v| v.max(0.0)).collect::<Vec<f64>>())
        .unwrap_or_else(|_| vec![0.0; k]);
    for _ in 0..max_iters {
        // grad = Gram·θ - Xᵀy
        let mut grad = vec![0.0; k];
        for i in 0..k {
            let mut g = -xty[i];
            for j in 0..k {
                g += gram[(i, j)] * theta[j];
            }
            grad[i] = g;
        }
        let mut max_delta: f64 = 0.0;
        for i in 0..k {
            let next = (theta[i] - step * grad[i]).max(0.0);
            max_delta = max_delta.max((next - theta[i]).abs());
            theta[i] = next;
        }
        if max_delta < 1e-12 {
            break;
        }
    }
    Ok(theta)
}

/// A fitted linear model with an optional non-negativity constraint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearModel {
    /// Learned coefficients, one per design-matrix column.
    pub theta: Vec<f64>,
}

impl LinearModel {
    /// Fit by ordinary least squares with a small ridge.
    pub fn fit(x: &Matrix, y: &[f64]) -> Result<Self, MlError> {
        Ok(LinearModel {
            theta: least_squares(x, y, 1e-9)?,
        })
    }

    /// Fit by NNLS (Ernest's choice).
    pub fn fit_nonnegative(x: &Matrix, y: &[f64]) -> Result<Self, MlError> {
        Ok(LinearModel {
            theta: nnls(x, y, 20_000)?,
        })
    }

    /// Predict for one feature vector.
    pub fn predict(&self, features: &[f64]) -> Result<f64, MlError> {
        if features.len() != self.theta.len() {
            return Err(MlError::Shape(format!(
                "predict: {} features vs {} coefficients",
                features.len(),
                self.theta.len()
            )));
        }
        Ok(features.iter().zip(&self.theta).map(|(f, t)| f * t).sum())
    }
}

/// Ernest's feature map for a job processing `data` units on a machine
/// budget of `machines` parallel slots:
/// `[1, data/machines, log(machines), machines]` — fixed serial cost, the
/// parallelizable work, the tree-aggregation term and the per-machine
/// coordination term of the original paper.
pub fn ernest_features(data: f64, machines: f64) -> Vec<f64> {
    let m = machines.max(1.0);
    vec![1.0, data / m, m.ln().max(0.0), m]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, eps: f64) -> bool {
        (a - b).abs() < eps
    }

    #[test]
    fn solves_exact_system() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let sol = solve_linear_system(&a, &[5.0, 10.0]).unwrap();
        // 2x + y = 5, x + 3y = 10 -> x = 1, y = 3
        assert!(approx(sol[0], 1.0, 1e-9));
        assert!(approx(sol[1], 3.0, 1e-9));
    }

    #[test]
    fn solve_detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(solve_linear_system(&a, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 2 + 3x exactly.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 + 3.0 * i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let theta = least_squares(&x, &y, 0.0).unwrap();
        assert!(approx(theta[0], 2.0, 1e-8));
        assert!(approx(theta[1], 3.0, 1e-8));
    }

    #[test]
    fn least_squares_shape_errors() {
        let x = Matrix::zeros(3, 2);
        assert!(least_squares(&x, &[1.0, 2.0], 0.0).is_err());
        let empty = Matrix::zeros(0, 0);
        assert!(least_squares(&empty, &[], 0.0).is_err());
    }

    #[test]
    fn nnls_clamps_negative_coefficients() {
        // True model y = -2 x0 + 3 x1: NNLS must give theta0 = 0, theta1 ~ fit.
        let rows: Vec<Vec<f64>> = (1..20)
            .map(|i| vec![i as f64, (i * i) as f64 / 10.0])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| -2.0 * r[0] + 3.0 * r[1]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let theta = nnls(&x, &y, 50_000).unwrap();
        assert!(theta.iter().all(|&t| t >= 0.0));
        assert!(approx(theta[0], 0.0, 1e-6));
    }

    #[test]
    fn nnls_matches_ols_when_solution_nonnegative() {
        let rows: Vec<Vec<f64>> = (0..15).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..15).map(|i| 1.5 + 0.5 * i as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let ols = least_squares(&x, &y, 0.0).unwrap();
        let nn = nnls(&x, &y, 50_000).unwrap();
        assert!(approx(ols[0], nn[0], 1e-4));
        assert!(approx(ols[1], nn[1], 1e-4));
    }

    #[test]
    fn linear_model_fit_predict_roundtrip() {
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| ernest_features(100.0, 1.0 + i as f64))
            .collect();
        let truth = [10.0, 2.0, 5.0, 0.5];
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&truth).map(|(f, t)| f * t).sum())
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let model = LinearModel::fit_nonnegative(&x, &y).unwrap();
        for (r, want) in rows.iter().zip(&y) {
            let got = model.predict(r).unwrap();
            assert!(
                approx(got, *want, want.abs() * 0.02 + 0.5),
                "got {got}, want {want}"
            );
        }
    }

    #[test]
    fn linear_model_predict_dim_check() {
        let model = LinearModel {
            theta: vec![1.0, 2.0],
        };
        assert!(model.predict(&[1.0]).is_err());
        assert!(approx(model.predict(&[1.0, 1.0]).unwrap(), 3.0, 1e-12));
    }

    #[test]
    fn ernest_features_shape_and_guards() {
        let f = ernest_features(1000.0, 8.0);
        assert_eq!(f.len(), 4);
        assert!(approx(f[0], 1.0, 1e-12));
        assert!(approx(f[1], 125.0, 1e-12));
        assert!(approx(f[2], 8.0f64.ln(), 1e-12));
        assert!(approx(f[3], 8.0, 1e-12));
        // machines below 1 are clamped
        let g = ernest_features(10.0, 0.0);
        assert!(approx(g[1], 10.0, 1e-12));
        assert!(approx(g[2], 0.0, 1e-12));
    }
}
