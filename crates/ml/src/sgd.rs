//! A small stochastic-gradient-descent driver with convergence tracking.
//!
//! Algorithm 1 of the paper alternates SGD updates over the three matrices
//! `U`, `V`, `U*` "until the results have converged", and the online phase
//! adds a *convergence limitation* to stop pathological workloads
//! (Spark-CF in the paper) from spinning forever. This module provides the
//! shared driver: epoch loop, learning-rate decay, convergence test and the
//! [`SgdOutcome`] report that lets callers implement that cap.

use serde::{Deserialize, Serialize};

/// Configuration for an SGD run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Initial learning rate.
    pub learning_rate: f64,
    /// Multiplicative decay applied to the learning rate after each epoch.
    pub decay: f64,
    /// Maximum epochs — the paper's "converge limitation".
    pub max_epochs: usize,
    /// Converged when the relative objective improvement drops below this.
    pub tolerance: f64,
    /// L2 regularization weight (the `R(U, V, U*)` term of Eq. 6).
    pub l2_reg: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            learning_rate: 0.02,
            decay: 0.995,
            max_epochs: 2_000,
            tolerance: 1e-7,
            l2_reg: 0.02,
        }
    }
}

/// What an SGD run reports back.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SgdOutcome {
    /// Objective value after the final epoch.
    pub final_objective: f64,
    /// Objective trace, one entry per epoch (useful for Fig. 3-style
    /// overhead/error curves).
    pub trace: Vec<f64>,
    /// Whether the tolerance test passed before `max_epochs`.
    pub converged: bool,
    /// Epochs actually run.
    pub epochs: usize,
    /// Whether a caller-supplied cancellation check stopped the run early
    /// (see [`run_sgd_cancellable`]); always false for [`run_sgd`].
    #[serde(default)]
    pub cancelled: bool,
}

/// Run SGD epochs until convergence or the epoch cap.
///
/// `epoch` receives the current learning rate, performs one full pass of
/// updates on the caller's state, and returns the post-epoch objective.
pub fn run_sgd(config: &SgdConfig, epoch: impl FnMut(f64) -> f64) -> SgdOutcome {
    run_sgd_cancellable(config, || false, epoch)
}

/// [`run_sgd`] with a cooperative cancellation check evaluated *between*
/// epochs: when `cancel` returns true the loop stops before the next epoch,
/// the outcome carries `cancelled = true` and whatever partial trace was
/// accumulated. A `cancel` that never fires leaves the epoch loop — and
/// therefore every result bit — identical to [`run_sgd`].
pub fn run_sgd_cancellable(
    config: &SgdConfig,
    mut cancel: impl FnMut() -> bool,
    mut epoch: impl FnMut(f64) -> f64,
) -> SgdOutcome {
    let mut lr = config.learning_rate;
    let mut trace = Vec::with_capacity(config.max_epochs.min(4096));
    let mut prev = f64::INFINITY;
    let mut converged = false;
    let mut cancelled = false;
    let mut epochs = 0;
    for _ in 0..config.max_epochs {
        if cancel() {
            cancelled = true;
            break;
        }
        let obj = epoch(lr);
        epochs += 1;
        trace.push(obj);
        if prev.is_finite() {
            let denom = prev.abs().max(1e-12);
            if (prev - obj).abs() / denom < config.tolerance {
                converged = true;
                break;
            }
        }
        prev = obj;
        lr *= config.decay;
    }
    SgdOutcome {
        final_objective: trace.last().copied().unwrap_or(f64::INFINITY),
        trace,
        converged,
        epochs,
        cancelled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x - 3)^2, gradient 2(x - 3).
        let mut x = 10.0f64;
        let cfg = SgdConfig {
            learning_rate: 0.1,
            decay: 1.0,
            max_epochs: 1000,
            tolerance: 1e-12,
            l2_reg: 0.0,
        };
        let out = run_sgd(&cfg, |lr| {
            x -= lr * 2.0 * (x - 3.0);
            (x - 3.0) * (x - 3.0)
        });
        assert!(out.converged);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
        assert!(out.final_objective < 1e-5);
    }

    #[test]
    fn respects_epoch_cap() {
        let mut x = 0.0f64;
        let cfg = SgdConfig {
            max_epochs: 5,
            tolerance: 0.0,
            ..Default::default()
        };
        let out = run_sgd(&cfg, |_| {
            x += 1.0;
            1.0 / x // keeps improving, never converges at tolerance 0
        });
        assert_eq!(out.epochs, 5);
        assert!(!out.converged);
        assert_eq!(out.trace.len(), 5);
    }

    #[test]
    fn trace_is_monotone_for_well_conditioned_descent() {
        let mut x = 5.0f64;
        let cfg = SgdConfig {
            learning_rate: 0.05,
            decay: 1.0,
            max_epochs: 200,
            tolerance: 1e-14,
            l2_reg: 0.0,
        };
        let out = run_sgd(&cfg, |lr| {
            x -= lr * 2.0 * x;
            x * x
        });
        for w in out.trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn cancellation_stops_between_epochs_and_is_reported() {
        let mut x = 0.0f64;
        let cfg = SgdConfig {
            max_epochs: 100,
            tolerance: 0.0,
            ..Default::default()
        };
        let mut calls = 0;
        let out = run_sgd_cancellable(
            &cfg,
            move || {
                calls += 1;
                calls > 3 // allow exactly 3 epochs
            },
            |_| {
                x += 1.0;
                1.0 / x
            },
        );
        assert!(out.cancelled);
        assert!(!out.converged);
        assert_eq!(out.epochs, 3);
        assert_eq!(out.trace.len(), 3, "partial trace survives cancellation");
    }

    #[test]
    fn never_firing_cancel_is_bit_identical_to_plain_run() {
        let cfg = SgdConfig::default();
        let run = |cancellable: bool| {
            let mut x = 10.0f64;
            let epoch = |lr: f64, x: &mut f64| {
                *x -= lr * 2.0 * (*x - 3.0);
                (*x - 3.0) * (*x - 3.0)
            };
            if cancellable {
                run_sgd_cancellable(&cfg, || false, |lr| epoch(lr, &mut x))
            } else {
                run_sgd(&cfg, |lr| epoch(lr, &mut x))
            }
        };
        let a = run(false);
        let b = run(true);
        assert_eq!(a.epochs, b.epochs);
        assert_eq!(a.converged, b.converged);
        assert!(!b.cancelled);
        let bits = |t: &[f64]| t.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.trace), bits(&b.trace));
    }

    #[test]
    fn zero_epochs_yields_infinite_objective() {
        let cfg = SgdConfig {
            max_epochs: 0,
            ..Default::default()
        };
        let out = run_sgd(&cfg, |_| 1.0);
        assert!(out.final_objective.is_infinite());
        assert!(!out.converged);
    }
}
