//! CART regression trees and bootstrap-aggregated random forests.
//!
//! This is the substrate for the PARIS baseline (Yadwadkar et al., SoCC '17),
//! which "uses a Random Forest model to predict the best VM types for
//! data-intensive workloads". PARIS trains a forest mapping
//! (workload fingerprint ⊕ VM-type features) → runtime; the paper's Fig. 2
//! and Fig. 6 show what happens when such a forest, trained on Hadoop/Hive,
//! is asked about Spark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::error::MlError;
use crate::matrix::Matrix;
use crate::stats::mean;

/// Configuration for training a random forest regressor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features tried per split; `0` means `ceil(sqrt(n_features))`.
    pub max_features: usize,
    /// RNG seed (per-tree seeds are derived from it).
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 50,
            max_depth: 12,
            min_samples_split: 4,
            max_features: 0,
            seed: 42,
        }
    }
}

/// A node of a regression tree, stored in a flat arena.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Arena index of the left child (`x[feature] <= threshold`).
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
}

/// A single CART regression tree (variance-reduction splits).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fit a tree on the rows of `x` indexed by `indices`.
    fn fit_on(
        x: &Matrix,
        y: &[f64],
        indices: &[usize],
        config: &ForestConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: x.cols(),
        };
        let mut idx = indices.to_vec();
        tree.build(x, y, &mut idx, 0, config, rng);
        tree
    }

    /// Recursively grow the tree; returns the arena index of the subtree
    /// root. `indices` is reordered in place by partitioning.
    fn build(
        &mut self,
        x: &Matrix,
        y: &[f64],
        indices: &mut [usize],
        depth: usize,
        config: &ForestConfig,
        rng: &mut StdRng,
    ) -> usize {
        let values: Vec<f64> = indices.iter().map(|&i| y[i]).collect();
        let leaf_value = mean(&values);
        let pure = values.iter().all(|&v| (v - values[0]).abs() < 1e-12);
        if depth >= config.max_depth || indices.len() < config.min_samples_split || pure {
            self.nodes.push(Node::Leaf { value: leaf_value });
            return self.nodes.len() - 1;
        }

        let n_features = x.cols();
        let m = if config.max_features == 0 {
            (n_features as f64).sqrt().ceil() as usize
        } else {
            config.max_features.min(n_features)
        };
        // Sample m distinct candidate features.
        let mut candidates: Vec<usize> = (0..n_features).collect();
        for i in 0..m.min(n_features) {
            let j = rng.gen_range(i..n_features);
            candidates.swap(i, j);
        }
        candidates.truncate(m.max(1));

        let parent_sse = sse(&values);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for &f in &candidates {
            let mut vals: Vec<f64> = indices.iter().map(|&i| x[(i, f)]).collect();
            vals.sort_by(|a, b| a.total_cmp(b));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            // Candidate thresholds: midpoints between consecutive distinct values.
            for w in vals.windows(2) {
                let thr = 0.5 * (w[0] + w[1]);
                let (mut ls, mut rs) = (Vec::new(), Vec::new());
                for &i in indices.iter() {
                    if x[(i, f)] <= thr {
                        ls.push(y[i]);
                    } else {
                        rs.push(y[i]);
                    }
                }
                if ls.is_empty() || rs.is_empty() {
                    continue;
                }
                let gain = parent_sse - sse(&ls) - sse(&rs);
                if best.is_none_or(|b| gain > b.2) {
                    best = Some((f, thr, gain));
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            self.nodes.push(Node::Leaf { value: leaf_value });
            return self.nodes.len() - 1;
        };
        if gain <= 1e-12 {
            self.nodes.push(Node::Leaf { value: leaf_value });
            return self.nodes.len() - 1;
        }

        // Partition indices by the chosen split.
        let mut left_idx: Vec<usize> = Vec::new();
        let mut right_idx: Vec<usize> = Vec::new();
        for &i in indices.iter() {
            if x[(i, feature)] <= threshold {
                left_idx.push(i);
            } else {
                right_idx.push(i);
            }
        }
        // Reserve this node's slot, then build children.
        self.nodes.push(Node::Leaf { value: leaf_value });
        let slot = self.nodes.len() - 1;
        let left = self.build(x, y, &mut left_idx, depth + 1, config, rng);
        let right = self.build(x, y, &mut right_idx, depth + 1, config, rng);
        self.nodes[slot] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        slot
    }

    /// Predict the target for one point.
    pub fn predict(&self, point: &[f64]) -> f64 {
        // The root is always at the first slot pushed by the outermost
        // build() call. Because children are pushed after their parent's
        // slot, index 0 is the root.
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if point[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (for testing / introspection).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

fn sse(values: &[f64]) -> f64 {
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum()
}

/// Bootstrap-aggregated forest of regression trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Fit a forest on `x` (rows = samples) and targets `y`.
    pub fn fit(x: &Matrix, y: &[f64], config: &ForestConfig) -> Result<Self, MlError> {
        if config.n_trees == 0 {
            return Err(MlError::InvalidParameter("forest with 0 trees".into()));
        }
        if x.rows() != y.len() {
            return Err(MlError::Shape(format!(
                "{} rows vs {} targets",
                x.rows(),
                y.len()
            )));
        }
        if x.rows() < 2 {
            return Err(MlError::InsufficientData(
                "forest needs at least 2 samples".into(),
            ));
        }
        let n = x.rows();
        let trees: Vec<RegressionTree> = (0..config.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(t as u64 * 7919));
                // Bootstrap sample with replacement.
                let indices: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                RegressionTree::fit_on(x, y, &indices, config, &mut rng)
            })
            .collect();
        Ok(RandomForest {
            trees,
            n_features: x.cols(),
        })
    }

    /// Mean prediction across trees.
    pub fn predict(&self, point: &[f64]) -> Result<f64, MlError> {
        if point.len() != self.n_features {
            return Err(MlError::Shape(format!(
                "predict: point dim {} vs model dim {}",
                point.len(),
                self.n_features
            )));
        }
        let sum: f64 = self.trees.iter().map(|t| t.predict(point)).sum();
        Ok(sum / self.trees.len() as f64)
    }

    /// Per-tree predictions (PARIS uses their spread as an uncertainty
    /// estimate when ranking VM types).
    pub fn predict_all(&self, point: &[f64]) -> Result<Vec<f64>, MlError> {
        if point.len() != self.n_features {
            return Err(MlError::Shape("predict_all: dim mismatch".into()));
        }
        Ok(self.trees.iter().map(|t| t.predict(point)).collect())
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 3 when x0 < 0.5, else 10 — a step a single split can nail.
    fn step_data(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| if r[0] < 0.5 { 3.0 } else { 10.0 })
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn tree_learns_step_function() {
        let (x, y) = step_data(40);
        let cfg = ForestConfig {
            n_trees: 1,
            max_features: 2,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..x.rows()).collect();
        let tree = RegressionTree::fit_on(&x, &y, &idx, &cfg, &mut rng);
        assert!((tree.predict(&[0.1, 0.0]) - 3.0).abs() < 1e-9);
        assert!((tree.predict(&[0.9, 0.0]) - 10.0).abs() < 1e-9);
        assert!(tree.n_nodes() >= 3);
    }

    #[test]
    fn forest_learns_step_function() {
        let (x, y) = step_data(60);
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        assert!((forest.predict(&[0.1, 1.0]).unwrap() - 3.0).abs() < 1.0);
        assert!((forest.predict(&[0.9, 1.0]).unwrap() - 10.0).abs() < 1.0);
    }

    #[test]
    fn forest_handles_constant_target() {
        let (x, _) = step_data(20);
        let y = vec![5.0; 20];
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        assert!((forest.predict(&[0.3, 0.0]).unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn forest_rejects_bad_input() {
        let (x, y) = step_data(10);
        assert!(RandomForest::fit(&x, &y[..5], &ForestConfig::default()).is_err());
        assert!(RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 0,
                ..Default::default()
            }
        )
        .is_err());
        let forest = RandomForest::fit(&x, &y, &ForestConfig::default()).unwrap();
        assert!(forest.predict(&[1.0]).is_err());
        assert!(forest.predict_all(&[1.0]).is_err());
    }

    #[test]
    fn forest_deterministic_given_seed() {
        let (x, y) = step_data(30);
        let cfg = ForestConfig {
            seed: 9,
            ..Default::default()
        };
        let a = RandomForest::fit(&x, &y, &cfg).unwrap();
        let b = RandomForest::fit(&x, &y, &cfg).unwrap();
        for p in [[0.2, 0.0], [0.7, 2.0]] {
            assert_eq!(a.predict(&p).unwrap(), b.predict(&p).unwrap());
        }
    }

    #[test]
    fn predict_all_has_one_value_per_tree() {
        let (x, y) = step_data(30);
        let forest = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 7,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(forest.predict_all(&[0.4, 1.0]).unwrap().len(), 7);
        assert_eq!(forest.n_trees(), 7);
    }

    #[test]
    fn forest_interpolates_smooth_function_roughly() {
        // y = 5 x0 + 2 x1 on a grid; forest should get within ~1.5 inside the hull.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let (a, b) = (i as f64 / 11.0, j as f64 / 11.0);
                rows.push(vec![a, b]);
                y.push(5.0 * a + 2.0 * b);
            }
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let forest = RandomForest::fit(
            &x,
            &y,
            &ForestConfig {
                n_trees: 30,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = forest.predict(&[0.5, 0.5]).unwrap();
        assert!((pred - 3.5).abs() < 1.0, "pred = {pred}");
    }
}
