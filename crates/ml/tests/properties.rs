//! Cross-module property tests for the ML substrate: randomized algebra
//! identities, estimator invariants, and solver behaviours that unit tests
//! cannot pin down with single examples.

use proptest::prelude::*;

use vesta_ml::cmf::{solve, CmfConfig, CmfProblem, Mask};
use vesta_ml::forest::{ForestConfig, RandomForest};
use vesta_ml::kmeans::{k_fold_indices, KMeans, KMeansConfig};
use vesta_ml::linear::{least_squares, nnls, solve_linear_system};
use vesta_ml::pca::{jacobi_eigen, Pca};
use vesta_ml::sgd::SgdConfig;
use vesta_ml::stats;
use vesta_ml::Matrix;

/// Deterministic pseudo-random matrix from a seed (keeps proptest shrink
/// behaviour sane compared to huge Vec strategies).
fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut v = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.push((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5);
    }
    Matrix::from_vec(rows, cols, v).expect("shape fits")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 64 }))]

    // ---------------- matrix algebra ----------------------------------

    #[test]
    fn matmul_distributes_over_addition(n in 1usize..6, seed in 0u64..500) {
        let a = mat(n, n, seed);
        let b = mat(n, n, seed ^ 1);
        let c = mat(n, n, seed ^ 2);
        let left = a.matmul(&(&b + &c)).unwrap();
        let right = &a.matmul(&b).unwrap() + &a.matmul(&c).unwrap();
        prop_assert!(left.frobenius_distance_sq(&right).unwrap() < 1e-18);
    }

    #[test]
    fn transpose_of_product_reverses(n in 1usize..6, m in 1usize..6, k in 1usize..6, seed in 0u64..500) {
        let a = mat(n, m, seed);
        let b = mat(m, k, seed ^ 3);
        let left = a.matmul(&b).unwrap().transpose();
        let right = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(left.frobenius_distance_sq(&right).unwrap() < 1e-18);
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal(rows in 3usize..12, cols in 1usize..6, seed in 0u64..500) {
        let a = mat(rows, cols, seed);
        let cov = a.covariance();
        for i in 0..cols {
            prop_assert!(cov[(i, i)] >= -1e-12, "negative variance");
            for j in 0..cols {
                prop_assert!((cov[(i, j)] - cov[(j, i)]).abs() < 1e-12);
            }
        }
    }

    // ---------------- eigen / PCA --------------------------------------

    #[test]
    fn jacobi_eigenvalue_sum_equals_trace(n in 1usize..7, seed in 0u64..300) {
        let raw = mat(n, n, seed);
        // symmetrize
        let sym = {
            let mut s = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    s[(i, j)] = 0.5 * (raw[(i, j)] + raw[(j, i)]);
                }
            }
            s
        };
        let e = jacobi_eigen(&sym, 100).unwrap();
        let trace: f64 = (0..n).map(|i| sym[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8, "trace {trace} vs eigensum {sum}");
    }

    #[test]
    fn pca_explained_variance_is_a_distribution(rows in 3usize..15, cols in 2usize..6, seed in 0u64..300) {
        let a = mat(rows, cols, seed);
        let pca = Pca::fit(&a).unwrap();
        let total: f64 = pca.explained_variance_ratio.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
        for r in &pca.explained_variance_ratio {
            prop_assert!(*r >= -1e-12);
        }
        // descending
        for w in pca.explained_variance_ratio.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
    }

    // ---------------- stats --------------------------------------------

    #[test]
    fn pearson_self_correlation_is_one(n in 3usize..40, seed in 0u64..500) {
        let a = mat(1, n, seed).as_slice().to_vec();
        // guard against the (vanishingly unlikely) constant series
        prop_assume!(stats::variance(&a) > 1e-12);
        prop_assert!((stats::pearson(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = a.iter().map(|v| -v).collect();
        prop_assert!((stats::pearson(&a, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_is_bounded_by_extremes(n in 1usize..30, p in 0.0f64..100.0, seed in 0u64..500) {
        let xs = mat(1, n, seed).as_slice().to_vec();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = stats::percentile(&xs, p).unwrap();
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    #[test]
    fn euclidean_satisfies_triangle_inequality(n in 1usize..10, seed in 0u64..300) {
        let a = mat(1, n, seed).as_slice().to_vec();
        let b = mat(1, n, seed ^ 5).as_slice().to_vec();
        let c = mat(1, n, seed ^ 9).as_slice().to_vec();
        let ab = stats::euclidean(&a, &b).unwrap();
        let bc = stats::euclidean(&b, &c).unwrap();
        let ac = stats::euclidean(&a, &c).unwrap();
        prop_assert!(ac <= ab + bc + 1e-12);
    }

    // ---------------- linear solvers ------------------------------------

    #[test]
    fn linear_solve_roundtrips(n in 1usize..6, seed in 0u64..300) {
        let a = {
            // diagonally dominant => well conditioned
            let mut m = mat(n, n, seed);
            for i in 0..n {
                m[(i, i)] += n as f64 + 1.0;
            }
            m
        };
        let x_true = mat(1, n, seed ^ 7).as_slice().to_vec();
        let b_mat = a.matmul(&Matrix::from_vec(n, 1, x_true.clone()).unwrap()).unwrap();
        let x = solve_linear_system(&a, &b_mat.col(0)).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn nnls_result_is_always_nonnegative(rows in 2usize..10, cols in 1usize..5, seed in 0u64..300) {
        let x = {
            let mut m = mat(rows, cols, seed);
            m.map_inplace(|v| v + 0.6); // positive-ish design
            m
        };
        let y = mat(1, rows, seed ^ 11).as_slice().to_vec();
        let theta = nnls(&x, &y, 5_000).unwrap();
        for t in theta {
            prop_assert!(t >= 0.0);
        }
    }

    #[test]
    fn ridge_shrinks_coefficients(rows in 4usize..12, cols in 1usize..4, seed in 0u64..200) {
        let x = mat(rows, cols, seed);
        let y = mat(1, rows, seed ^ 13).as_slice().to_vec();
        let free = least_squares(&x, &y, 1e-9);
        let ridged = least_squares(&x, &y, 100.0);
        prop_assume!(free.is_ok());
        let free = free.unwrap();
        let ridged = ridged.unwrap();
        let norm = |v: &[f64]| v.iter().map(|t| t * t).sum::<f64>();
        prop_assert!(norm(&ridged) <= norm(&free) + 1e-9);
    }

    // ---------------- clustering ----------------------------------------

    #[test]
    fn kmeans_inertia_never_increases_with_k(seed in 0u64..60) {
        let data = mat(40, 3, seed);
        let mut last = f64::INFINITY;
        for k in [1usize, 2, 4, 8] {
            let m = KMeans::fit(&data, &KMeansConfig { k, n_init: 3, seed, ..Default::default() }).unwrap();
            prop_assert!(m.inertia <= last + 1e-6, "k={k}: {} > {last}", m.inertia);
            last = m.inertia;
        }
    }

    #[test]
    fn kmeans_centroids_lie_in_data_hull_box(seed in 0u64..100, k in 1usize..5) {
        let data = mat(30, 2, seed);
        let m = KMeans::fit(&data, &KMeansConfig { k, n_init: 1, seed, ..Default::default() }).unwrap();
        for dim in 0..2 {
            let col = data.col(dim);
            let lo = col.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = col.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for c in 0..m.k() {
                let v = m.centroids[(c, dim)];
                prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }

    #[test]
    fn k_fold_is_a_partition(n in 10usize..50, folds in 2usize..8, seed in 0u64..100) {
        prop_assume!(n >= folds);
        let splits = k_fold_indices(n, folds, seed).unwrap();
        let mut seen = vec![false; n];
        for (train, test) in &splits {
            prop_assert_eq!(train.len() + test.len(), n);
            for &t in test {
                prop_assert!(!seen[t], "index {t} tested twice");
                seen[t] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    // ---------------- forest --------------------------------------------

    #[test]
    fn forest_prediction_within_target_range(seed in 0u64..60) {
        let x = mat(30, 3, seed);
        let y: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let f = RandomForest::fit(&x, &y, &ForestConfig { n_trees: 10, seed, ..Default::default() }).unwrap();
        let q = mat(1, 3, seed ^ 21).as_slice().to_vec();
        let p = f.predict(&q).unwrap();
        // Tree leaves are means of targets, so predictions are convex
        // combinations of them.
        prop_assert!((0.0..=6.0).contains(&p), "prediction {p} outside target hull");
    }
}

// ---------------- CMF (non-proptest: heavier) ---------------------------

#[test]
fn cmf_lambda_extremes_still_complete() {
    let source = mat(6, 30, 1);
    let vm = mat(20, 30, 2);
    let target = mat(1, 30, 3);
    let mut mask = Mask::none(1, 30);
    for i in (0..30).step_by(3) {
        mask.observe(0, i);
    }
    for lambda in [0.0, 1.0] {
        let cfg = CmfConfig {
            lambda,
            latent_dim: 4,
            sgd: SgdConfig {
                max_epochs: 200,
                ..Default::default()
            },
            ..Default::default()
        };
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &target,
            target_mask: &mask,
        };
        let model = solve(&problem, &cfg).unwrap();
        assert!(model.completed_target.is_finite());
        assert_eq!(model.completed_target.shape(), (1, 30));
    }
}

#[test]
fn cmf_more_observations_reduce_completion_error() {
    // Ground-truth low-rank target; observe 20% vs 80% of entries.
    let g = 3;
    let l = mat(24, g, 40);
    let xs = mat(2, g, 41);
    let truth = xs.matmul(&l.transpose()).unwrap();
    let source = mat(8, g, 42).matmul(&l.transpose()).unwrap();
    let vm = mat(15, g, 43).matmul(&l.transpose()).unwrap();
    let err_at = |density: usize| -> f64 {
        let mut mask = Mask::none(2, 24);
        for r in 0..2 {
            for c in 0..24 {
                if (r * 24 + c) % density == 0 {
                    mask.observe(r, c);
                }
            }
        }
        let cfg = CmfConfig {
            latent_dim: g,
            sgd: SgdConfig {
                max_epochs: 1500,
                tolerance: 1e-10,
                learning_rate: 0.03,
                decay: 0.999,
                l2_reg: 1e-4,
            },
            ..Default::default()
        };
        let problem = CmfProblem {
            source: &source,
            vm: &vm,
            target: &truth,
            target_mask: &mask,
        };
        let model = solve(&problem, &cfg).unwrap();
        let mut err = 0.0;
        let mut n = 0;
        for r in 0..2 {
            for c in 0..24 {
                if !mask.is_observed(r, c) {
                    let e = model.completed_target[(r, c)] - truth[(r, c)];
                    err += e * e;
                    n += 1;
                }
            }
        }
        (err / n as f64).sqrt()
    };
    let sparse = err_at(5); // ~20%
    let dense = err_at(1); // fully observed (error measured on none → 0/0 guard)
    let medium = err_at(2); // 50%
    assert!(
        medium <= sparse * 1.5,
        "more data should not hurt much: {medium} vs {sparse}"
    );
    let _ = dense;
}
