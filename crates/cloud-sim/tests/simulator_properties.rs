//! Property and sweep tests of the cloud simulator: resource
//! monotonicities the BSP model must respect, catalog-wide invariants, and
//! noise-distribution sanity over every (workload-shaped demand, VM) pair.

use vesta_cloud_sim::{
    exhaustive_ranking, Catalog, Collector, ExecutionDemand, Objective, SimConfig, Simulator,
    VmType,
};

fn demand(seed: u64) -> ExecutionDemand {
    // Vary the demand deterministically from the seed across realistic
    // ranges.
    let f = |k: u64, lo: f64, hi: f64| {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(k);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51AFD7ED558CCD);
        x ^= x >> 33;
        lo + (x % 10_000) as f64 / 10_000.0 * (hi - lo)
    };
    ExecutionDemand {
        workload_id: seed,
        input_gb: f(1, 0.5, 40.0),
        compute_units: f(2, 100.0, 20_000.0),
        working_set_gb: f(3, 0.5, 60.0),
        shuffle_gb_per_iter: f(4, 0.1, 20.0),
        disk_gb_per_iter: f(5, 0.1, 40.0),
        iterations: 1 + (seed % 12) as u32,
        parallelism: f(6, 2.0, 200.0),
        sync_barriers_per_iter: f(7, 0.5, 5.0),
        startup_s: f(8, 5.0, 60.0),
        spill_penalty: f(9, 1.0, 3.0),
        memory_hard: false,
        variance_cv: 0.05,
    }
}

/// A custom VM we can mutate one resource at a time.
fn base_vm(id: usize) -> VmType {
    VmType {
        id,
        name: format!("probe-{id}"),
        family: "probe".into(),
        category: vesta_cloud_sim::VmCategory::GeneralPurpose,
        size: vesta_cloud_sim::VmSize::X2Large,
        vcpus: 8,
        memory_gb: 32.0,
        disk_mbps: 200.0,
        network_gbps: 2.0,
        cpu_speed: 1.0,
        price_per_hour: 0.4,
        burstable: false,
        has_gpu: false,
        local_nvme: false,
    }
}

#[test]
fn more_of_any_resource_never_hurts() {
    let sim = Simulator::default();
    for seed in 0..40u64 {
        let d = demand(seed);
        let base = base_vm(0);
        let t0 = sim.expected_time(&d, &base, 1).unwrap();
        // double each resource independently
        let mut cpu = base.clone();
        cpu.vcpus *= 2;
        let mut mem = base.clone();
        mem.memory_gb *= 2.0;
        let mut disk = base.clone();
        disk.disk_mbps *= 2.0;
        let mut net = base.clone();
        net.network_gbps *= 2.0;
        let mut speed = base.clone();
        speed.cpu_speed *= 1.5;
        for (label, vm) in [
            ("cpu", cpu),
            ("mem", mem),
            ("disk", disk),
            ("net", net),
            ("speed", speed),
        ] {
            let t = sim.expected_time(&d, &vm, 1).unwrap();
            // CPU widening can add barrier cost for sync-heavy demands;
            // everything else must be monotone, CPU nearly so.
            let slack = if label == "cpu" { 1.10 } else { 1.0 + 1e-9 };
            assert!(
                t <= t0 * slack,
                "seed {seed}: doubling {label} slowed {t0:.1} -> {t:.1}"
            );
        }
    }
}

#[test]
fn expected_time_scales_down_with_input() {
    let sim = Simulator::default();
    let cat = Catalog::aws_ec2();
    let vm = cat.by_name("m5.2xlarge").unwrap();
    for seed in 0..20u64 {
        let big = demand(seed);
        let mut small = big.clone();
        small.input_gb *= 0.5;
        small.compute_units *= 0.5;
        small.working_set_gb *= 0.5;
        small.shuffle_gb_per_iter *= 0.5;
        small.disk_gb_per_iter *= 0.5;
        let tb = sim.expected_time(&big, vm, 1).unwrap();
        let ts = sim.expected_time(&small, vm, 1).unwrap();
        assert!(
            ts <= tb,
            "seed {seed}: half input slower ({ts:.1} vs {tb:.1})"
        );
    }
}

#[test]
fn noise_p90_exceeds_median_like_real_clouds() {
    let sim = Simulator::default();
    let cat = Catalog::aws_ec2();
    let vm = cat.by_name("c5.2xlarge").unwrap();
    let d = demand(7);
    let times: Vec<f64> = (0..50)
        .map(|rep| sim.run(&d, vm, 1, rep).unwrap().execution_time_s)
        .collect();
    let p90 = vesta_ml::stats::p90(&times).unwrap();
    let p50 = vesta_ml::stats::percentile(&times, 50.0).unwrap();
    let expected = sim.expected_time(&d, vm, 1).unwrap();
    assert!(p90 > p50);
    // lognormal noise around the expectation: median within 10%
    assert!(
        (p50 / expected - 1.0).abs() < 0.10,
        "median drift {}",
        p50 / expected
    );
}

#[test]
fn seeds_shift_noise_but_not_expectation() {
    let cat = Catalog::aws_ec2();
    let vm = cat.by_name("r5.2xlarge").unwrap();
    let d = demand(11);
    let sim_a = Simulator::new(SimConfig {
        seed: 1,
        ..Default::default()
    });
    let sim_b = Simulator::new(SimConfig {
        seed: 2,
        ..Default::default()
    });
    assert_eq!(
        sim_a.expected_time(&d, vm, 1).unwrap(),
        sim_b.expected_time(&d, vm, 1).unwrap()
    );
    assert_ne!(
        sim_a.run(&d, vm, 1, 0).unwrap().execution_time_s,
        sim_b.run(&d, vm, 1, 0).unwrap().execution_time_s
    );
}

#[test]
fn catalog_family_invariants_hold_for_all_120() {
    let cat = Catalog::aws_ec2();
    for family in cat.families() {
        let vms = cat.family(family);
        // same category and per-vCPU memory within a family
        for pair in vms.windows(2) {
            assert_eq!(pair[0].category, pair[1].category, "{family}");
            // bigger size => at least as many vCPUs, memory, disk
            assert!(pair[1].vcpus >= pair[0].vcpus);
            assert!(pair[1].memory_gb >= pair[0].memory_gb);
            assert!(pair[1].disk_mbps >= pair[0].disk_mbps);
            // T-family medium and large share the 2-vCPU scale step, so
            // non-strict monotonicity is the invariant.
            assert!(pair[1].price_per_hour >= pair[0].price_per_hour);
        }
    }
}

#[test]
fn all_objectives_rank_every_vm_for_many_demands() {
    let cat = Catalog::aws_ec2();
    let sim = Simulator::default();
    for seed in 0..10u64 {
        let d = demand(seed);
        for obj in [
            Objective::ExecutionTime,
            Objective::Budget,
            Objective::BatchLatency,
            Objective::TimePerGb,
        ] {
            let r = exhaustive_ranking(&sim, &d, cat.all(), 1, obj);
            assert_eq!(r.len(), 120);
            assert!(r[0].1.is_finite(), "seed {seed} {obj:?}: no feasible VM");
        }
    }
}

#[test]
fn collector_traces_are_valid_for_demand_sweep() {
    let cat = Catalog::aws_ec2();
    let sim = Simulator::default();
    let collector = Collector::default();
    for seed in 0..15u64 {
        let d = demand(seed);
        for vm_name in ["t3.medium", "c5.4xlarge", "i3en.12xlarge"] {
            let vm = cat.by_name(vm_name).unwrap();
            let trace = collector.collect(&sim, &d, vm, 1, 0).unwrap();
            assert!(trace.len() >= 40);
            let cors = trace.correlations().unwrap();
            for v in cors.values {
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }
}

#[test]
fn two_nodes_never_slower_than_one_for_parallel_demands() {
    let cat = Catalog::aws_ec2();
    let sim = Simulator::default();
    for seed in 0..20u64 {
        let mut d = demand(seed);
        d.parallelism = d.parallelism.max(64.0);
        let vm = cat.by_name("m5.xlarge").unwrap();
        let one = sim.expected_time(&d, vm, 1).unwrap();
        let two = sim.expected_time(&d, vm, 2).unwrap();
        // two nodes double every resource; barrier cost can grow slightly
        assert!(
            two <= one * 1.05,
            "seed {seed}: 2 nodes {two:.1} vs 1 node {one:.1}"
        );
    }
}

#[test]
fn budget_ranking_penalizes_gpu_for_cpu_workloads() {
    let cat = Catalog::aws_ec2();
    let sim = Simulator::default();
    let d = demand(3);
    let ranking = exhaustive_ranking(&sim, &d, cat.all(), 1, Objective::Budget);
    // no GPU instance in the 10 cheapest choices for CPU-only work
    for (vm_id, _) in ranking.iter().take(10) {
        let vm = cat.get(*vm_id).unwrap();
        assert!(!vm.has_gpu, "{} is a GPU box in the budget top-10", vm.name);
    }
}
