//! The VM-type catalog of Table 4: 120 enterprise-level x86 types across
//! 5 categories and 20 families of Amazon EC2.
//!
//! Table 4 of the paper enumerates 20 families with 5 sizes each (100
//! concrete types) while the text consistently says "120 VM types"; we
//! resolve the discrepancy by extending every family with its next real
//! size step (e.g. `m5.12xlarge`, `t3.micro`), giving exactly 120 types.
//! Resource vectors and on-demand prices approximate public us-east-1
//! figures; the selector only ever consumes these vectors (see DESIGN.md's
//! substitution table).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::error::SimError;
use crate::vmtype::{FamilySpec, VmCategory, VmSize, VmType, VmTypeId};

use VmCategory::*;
use VmSize::*;

/// Size ladders used by the catalog.
const SIZES_BURST: [VmSize; 6] = [Micro, Small, Medium, Large, XLarge, X2Large];
const SIZES_STD: [VmSize; 6] = [Large, XLarge, X2Large, X4Large, X8Large, X12Large];
const SIZES_G4: [VmSize; 6] = [Large, XLarge, X2Large, X4Large, X8Large, X16Large];

fn family_specs() -> Vec<(FamilySpec, &'static [VmSize])> {
    let f = |name,
             category,
             mem_per_vcpu_gb,
             cpu_speed,
             disk_mbps_large,
             network_gbps_large,
             network_cap_gbps,
             price_per_vcpu_hour,
             burstable,
             has_gpu,
             local_nvme| FamilySpec {
        name,
        category,
        mem_per_vcpu_gb,
        cpu_speed,
        disk_mbps_large,
        network_gbps_large,
        network_cap_gbps,
        price_per_vcpu_hour,
        burstable,
        has_gpu,
        local_nvme,
    };
    vec![
        // General purpose
        (
            f(
                "t3",
                GeneralPurpose,
                2.0,
                1.0,
                40.0,
                0.5,
                5.0,
                0.042,
                true,
                false,
                false,
            ),
            &SIZES_BURST[..],
        ),
        (
            f(
                "t3a",
                GeneralPurpose,
                2.0,
                0.95,
                38.0,
                0.5,
                5.0,
                0.038,
                true,
                false,
                false,
            ),
            &SIZES_BURST[..],
        ),
        (
            f(
                "m5",
                GeneralPurpose,
                4.0,
                1.0,
                60.0,
                0.75,
                10.0,
                0.048,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "m5a",
                GeneralPurpose,
                4.0,
                0.95,
                55.0,
                0.75,
                10.0,
                0.043,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "m5n",
                GeneralPurpose,
                4.0,
                1.0,
                60.0,
                2.0,
                100.0,
                0.060,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        // Compute optimized
        (
            f(
                "c4",
                ComputeOptimized,
                1.875,
                1.1,
                50.0,
                0.5,
                10.0,
                0.050,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "c5",
                ComputeOptimized,
                2.0,
                1.25,
                60.0,
                0.75,
                10.0,
                0.0425,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "c5n",
                ComputeOptimized,
                2.625,
                1.25,
                60.0,
                3.0,
                100.0,
                0.054,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "c5d",
                ComputeOptimized,
                2.0,
                1.25,
                400.0,
                0.75,
                10.0,
                0.048,
                false,
                false,
                true,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "c4n",
                ComputeOptimized,
                2.0,
                1.15,
                50.0,
                1.5,
                50.0,
                0.045,
                false,
                false,
                false,
            ),
            &SIZES_BURST[..],
        ),
        // Memory optimized
        (
            f(
                "r4",
                MemoryOptimized,
                7.625,
                0.95,
                50.0,
                0.625,
                10.0,
                0.0665,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "r5",
                MemoryOptimized,
                8.0,
                1.0,
                60.0,
                0.75,
                10.0,
                0.063,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "r5a",
                MemoryOptimized,
                8.0,
                0.95,
                55.0,
                0.75,
                10.0,
                0.0565,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "r5n",
                MemoryOptimized,
                8.0,
                1.0,
                60.0,
                2.0,
                100.0,
                0.0745,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "x1",
                MemoryOptimized,
                15.25,
                0.9,
                80.0,
                0.8,
                10.0,
                0.104,
                false,
                false,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "z1d",
                MemoryOptimized,
                8.0,
                1.28,
                250.0,
                0.75,
                10.0,
                0.093,
                false,
                false,
                true,
            ),
            &SIZES_STD[..],
        ),
        // Accelerated computing
        (
            f(
                "g3",
                AcceleratedComputing,
                7.625,
                1.0,
                60.0,
                1.0,
                10.0,
                0.095,
                false,
                true,
                false,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "g4",
                AcceleratedComputing,
                4.0,
                1.05,
                200.0,
                1.0,
                25.0,
                0.0656,
                false,
                true,
                true,
            ),
            &SIZES_G4[..],
        ),
        // Storage optimized
        (
            f(
                "i3",
                StorageOptimized,
                7.625,
                1.0,
                700.0,
                0.75,
                10.0,
                0.078,
                false,
                false,
                true,
            ),
            &SIZES_STD[..],
        ),
        (
            f(
                "i3en",
                StorageOptimized,
                8.0,
                1.0,
                1000.0,
                3.0,
                100.0,
                0.0678,
                false,
                false,
                true,
            ),
            &SIZES_STD[..],
        ),
    ]
}

/// The full catalog of VM types plus fast lookups.
///
/// ```
/// use vesta_cloud_sim::Catalog;
///
/// let catalog = Catalog::aws_ec2();
/// assert_eq!(catalog.len(), 120);
/// let c5 = catalog.by_name("c5.2xlarge").unwrap();
/// assert_eq!(c5.vcpus, 8);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Catalog {
    types: Vec<VmType>,
    // BTreeMap, not HashMap: the catalog derives Serialize, and snapshot
    // bytes must not depend on hasher order.
    by_name: BTreeMap<String, usize>,
}

impl Catalog {
    /// Build the 120-type catalog of Table 4.
    pub fn aws_ec2() -> Catalog {
        let mut types = Vec::with_capacity(120);
        for (spec, sizes) in family_specs() {
            for &size in sizes {
                let id = types.len();
                types.push(VmType::from_family(id, &spec, size));
            }
        }
        let by_name = types.iter().map(|t| (t.name.clone(), t.id)).collect();
        Catalog { types, by_name }
    }

    /// Every VM type, ordered by id.
    pub fn all(&self) -> &[VmType] {
        &self.types
    }

    /// Number of types (120 for the EC2 catalog).
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Lookup by id — accepts a raw index or a typed [`VmTypeId`].
    pub fn get(&self, id: impl Into<VmTypeId>) -> Result<&VmType, SimError> {
        let id = id.into().index();
        self.types
            .get(id)
            .ok_or_else(|| SimError::UnknownVmType(format!("id {id}")))
    }

    /// Lookup by EC2 name (e.g. `"c5.4xlarge"`).
    pub fn by_name(&self, name: &str) -> Result<&VmType, SimError> {
        self.by_name
            .get(name)
            .map(|&i| &self.types[i])
            .ok_or_else(|| SimError::UnknownVmType(name.to_string()))
    }

    /// All types in a family (e.g. `"m5"`).
    pub fn family(&self, family: &str) -> Vec<&VmType> {
        self.types.iter().filter(|t| t.family == family).collect()
    }

    /// All types in a category.
    pub fn category(&self, category: VmCategory) -> Vec<&VmType> {
        self.types
            .iter()
            .filter(|t| t.category == category)
            .collect()
    }

    /// Distinct family names, in catalog order.
    pub fn families(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for t in &self.types {
            if !seen.contains(&t.family.as_str()) {
                seen.push(&t.family);
            }
        }
        seen
    }

    /// The "10 typical VM types" used by Fig. 7: one mid-size representative
    /// from ten spread-out families covering all five categories.
    pub fn typical_ten(&self) -> Vec<&VmType> {
        [
            "t3.xlarge",
            "m5.2xlarge",
            "m5n.2xlarge",
            "c4.2xlarge",
            "c5.2xlarge",
            "r5.2xlarge",
            "x1.2xlarge",
            "g4.2xlarge",
            "i3.2xlarge",
            "i3en.2xlarge",
        ]
        .iter()
        // vesta-lint: allow(panic-in-lib, reason = "the ten names are compile-time constants drawn from family_specs(); typical_ten_covers_all_categories locks presence")
        .map(|n| self.by_name(n).expect("typical types exist in catalog"))
        .collect()
    }

    /// Feature matrix of the whole catalog (one row per type), used by the
    /// offline K-Means grouping.
    pub fn feature_rows(&self) -> Vec<Vec<f64>> {
        self.types.iter().map(|t| t.feature_vector()).collect()
    }

    /// The same catalog (identical ids, names, resource vectors) with every
    /// type's on-demand price replaced by `price(vm)`. Non-finite or
    /// non-positive results keep the original price, so a buggy pricing
    /// function cannot produce a type that is free or infinitely cheap.
    /// Used by the dynamic-cloud layer to derive regional price sheets.
    pub fn reprice(&self, price: impl Fn(&VmType) -> f64) -> Catalog {
        let mut out = self.clone();
        for vm in &mut out.types {
            let p = price(vm);
            if p.is_finite() && p > 0.0 {
                vm.price_per_hour = p;
            }
        }
        out
    }

    /// The same catalog (identical ids, names, prices) with every type's
    /// delivered performance divided by `slowdown(vm)`: CPU speed, disk
    /// throughput and network bandwidth all shrink by the factor, so
    /// simulated execution times stretch by roughly it across phase mixes.
    /// Factors that are non-finite or < 1 leave the type untouched — the
    /// dynamic-cloud layer models degradation (hardware aging out,
    /// oversubscription), never silent speedups. Used by
    /// [`crate::dynamics::DynamicInjector::drifted_catalog`] to materialize
    /// the post-drift cloud.
    pub fn derate(&self, slowdown: impl Fn(&VmType) -> f64) -> Catalog {
        let mut out = self.clone();
        for vm in &mut out.types {
            let m = slowdown(vm);
            if m.is_finite() && m > 1.0 {
                vm.cpu_speed /= m;
                vm.disk_mbps /= m;
                vm.network_gbps /= m;
            }
        }
        out
    }
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::aws_ec2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_exactly_120_types() {
        let c = Catalog::aws_ec2();
        assert_eq!(c.len(), 120);
        assert!(!c.is_empty());
    }

    #[test]
    fn twenty_families_five_categories() {
        let c = Catalog::aws_ec2();
        assert_eq!(c.families().len(), 20);
        let cats = [
            GeneralPurpose,
            ComputeOptimized,
            MemoryOptimized,
            AcceleratedComputing,
            StorageOptimized,
        ];
        for cat in cats {
            assert!(!c.category(cat).is_empty(), "category {cat} empty");
        }
    }

    #[test]
    fn ids_match_positions_and_names_unique() {
        let c = Catalog::aws_ec2();
        for (i, t) in c.all().iter().enumerate() {
            assert_eq!(t.id, i);
        }
        let mut names: Vec<&str> = c.all().iter().map(|t| t.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 120, "duplicate names");
    }

    #[test]
    fn lookup_by_name_roundtrips() {
        let c = Catalog::aws_ec2();
        let t = c.by_name("c5.4xlarge").unwrap();
        assert_eq!(t.family, "c5");
        assert_eq!(t.vcpus, 16);
        assert!(c.by_name("does.not.exist").is_err());
        assert!(c.get(t.id).unwrap().name == "c5.4xlarge");
        assert!(c.get(10_000).is_err());
    }

    #[test]
    fn category_ratios_are_ordered() {
        // memory-optimized should have higher GB/vCPU than compute-optimized.
        let c = Catalog::aws_ec2();
        let r5 = c.by_name("r5.2xlarge").unwrap();
        let c5 = c.by_name("c5.2xlarge").unwrap();
        let m5 = c.by_name("m5.2xlarge").unwrap();
        assert!(r5.mem_per_vcpu() > m5.mem_per_vcpu());
        assert!(m5.mem_per_vcpu() > c5.mem_per_vcpu());
        // compute-optimized should be faster per core.
        assert!(c5.cpu_speed > m5.cpu_speed);
        // storage-optimized has much more disk bandwidth.
        let i3 = c.by_name("i3.2xlarge").unwrap();
        assert!(i3.disk_mbps > 5.0 * m5.disk_mbps);
    }

    #[test]
    fn prices_scale_with_size_within_family() {
        let c = Catalog::aws_ec2();
        let fam = c.family("m5");
        assert_eq!(fam.len(), 6);
        for w in fam.windows(2) {
            assert!(w[1].price_per_hour > w[0].price_per_hour);
            assert!(w[1].vcpus > w[0].vcpus);
        }
    }

    #[test]
    fn typical_ten_covers_all_categories() {
        let c = Catalog::aws_ec2();
        let ten = c.typical_ten();
        assert_eq!(ten.len(), 10);
        let mut cats: Vec<VmCategory> = ten.iter().map(|t| t.category).collect();
        cats.dedup();
        for cat in [
            GeneralPurpose,
            ComputeOptimized,
            MemoryOptimized,
            AcceleratedComputing,
            StorageOptimized,
        ] {
            assert!(ten.iter().any(|t| t.category == cat), "missing {cat}");
        }
    }

    #[test]
    fn gpu_families_priced_above_comparable_general() {
        let c = Catalog::aws_ec2();
        let g3 = c.by_name("g3.2xlarge").unwrap();
        let r5 = c.by_name("r5.2xlarge").unwrap(); // same mem ratio class
        assert!(g3.price_per_hour > r5.price_per_hour);
    }

    #[test]
    fn feature_rows_align_with_catalog() {
        let c = Catalog::aws_ec2();
        let rows = c.feature_rows();
        assert_eq!(rows.len(), c.len());
        assert!(rows.iter().all(|r| r.len() == 6));
    }

    #[test]
    fn burstables_exist_and_are_cheap() {
        let c = Catalog::aws_ec2();
        let t3 = c.by_name("t3.large").unwrap();
        let m5 = c.by_name("m5.large").unwrap();
        assert!(t3.burstable);
        assert!(t3.price_per_hour < m5.price_per_hour);
    }

    #[test]
    fn derate_only_ever_slows_down() {
        let c = Catalog::aws_ec2();
        // Factors at or below 1.0 (and garbage) must leave the type alone.
        let inert = c.derate(|vm| if vm.id % 2 == 0 { 1.0 } else { f64::NAN });
        for (a, b) in c.all().iter().zip(inert.all()) {
            assert_eq!(a.cpu_speed.to_bits(), b.cpu_speed.to_bits());
            assert_eq!(a.disk_mbps.to_bits(), b.disk_mbps.to_bits());
        }
        // A real slowdown divides the three throughput axes and nothing else.
        let slow = c.derate(|_| 2.0);
        for (a, b) in c.all().iter().zip(slow.all()) {
            assert!((b.cpu_speed - a.cpu_speed / 2.0).abs() < 1e-12);
            assert!((b.disk_mbps - a.disk_mbps / 2.0).abs() < 1e-9);
            assert!((b.network_gbps - a.network_gbps / 2.0).abs() < 1e-12);
            assert_eq!(a.price_per_hour.to_bits(), b.price_per_hour.to_bits());
            assert_eq!(a.vcpus, b.vcpus);
        }
    }
}
