//! Sharded, memoizing run cache for the batch-prediction engine.
//!
//! Online prediction spends almost all of its time in reference runs — the
//! sandbox plus a handful of random VMs simulated through the BSP model.
//! Two requests whose workloads have the same *fingerprint* (identical
//! resource demand, framework and scale) take byte-identical reference
//! runs, so the engine memoizes them here: a fingerprint-keyed map sharded
//! across [`parking_lot::RwLock`]s so concurrent sessions never contend on
//! a single lock, with atomic hit/miss accounting surfaced in the
//! throughput experiment.
//!
//! The cache is deliberately generic over the cached value: `vesta-core`
//! stores its reference-observation bundle, tests store small sentinels.
//! Values are handed out as [`Arc`]s; on a racing double-compute the first
//! insert wins so every reader sees one canonical value. Determinism does
//! not depend on that policy — same key implies same bytes by construction
//! (the fingerprint seeds the reference-run RNG) — it only keeps `Arc`
//! identity stable.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default shard count; a power of two so the shard index is a mask.
const DEFAULT_SHARDS: usize = 16;

/// Point-in-time counters of a [`RunCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing (including the lookup half of
    /// [`RunCache::get_or_insert_with`] on first touch).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hits over total lookups; 0.0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fingerprint-keyed memo table with sharded locks and atomic accounting.
pub struct RunCache<V> {
    shards: Vec<RwLock<HashMap<u64, Arc<V>>>>,
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> RunCache<V> {
    /// Cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Cache with `shards` rounded up to a power of two (min 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        Self {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            mask: (n - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &RwLock<HashMap<u64, Arc<V>>> {
        // Mix the key so fingerprints that share low bits still spread.
        let mut h = key;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        &self.shards[(h & self.mask) as usize]
    }

    /// Look up `key`, counting a hit or a miss.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let found = self.shard(key).read().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert `value` unless `key` is already present; returns the resident
    /// entry either way (first insert wins). Does not touch hit/miss
    /// counters — pair with [`RunCache::get`].
    pub fn insert(&self, key: u64, value: V) -> Arc<V> {
        let mut shard = self.shard(key).write();
        shard.entry(key).or_insert_with(|| Arc::new(value)).clone()
    }

    /// Memoized compute: one read-locked probe, then `compute` runs
    /// *outside* any lock (it may simulate for milliseconds), then an
    /// insert-if-absent. Racing computers both do the work; the first
    /// insert wins and both observe the same resident `Arc`.
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> V) -> Arc<V> {
        if let Some(v) = self.get(key) {
            return v;
        }
        let value = compute();
        self.insert(key, value)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry; counters are preserved.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Counters and occupancy at this instant.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl<V> Default for RunCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> std::fmt::Debug for RunCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("RunCache")
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_accounting() {
        let cache: RunCache<u32> = RunCache::new();
        assert!(cache.get(7).is_none());
        cache.insert(7, 42);
        assert_eq!(*cache.get(7).unwrap(), 42);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn first_insert_wins() {
        let cache: RunCache<&'static str> = RunCache::new();
        let a = cache.insert(1, "first");
        let b = cache.insert(1, "second");
        assert_eq!(*a, "first");
        assert_eq!(*b, "first");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let cache: RunCache<u64> = RunCache::with_shards(4);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with(9, || {
                calls += 1;
                99
            });
            assert_eq!(*v, 99);
        }
        assert_eq!(calls, 1);
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache: RunCache<u8> = RunCache::with_shards(3);
        for k in 0..64u64 {
            cache.insert(k, k as u8);
        }
        assert_eq!(cache.len(), 64);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let cache: RunCache<u8> = RunCache::new();
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }
}
