//! Sharded, memoizing run cache for the batch-prediction engine.
//!
//! Online prediction spends almost all of its time in reference runs — the
//! sandbox plus a handful of random VMs simulated through the BSP model.
//! Two requests whose workloads have the same *fingerprint* (identical
//! resource demand, framework and scale) take byte-identical reference
//! runs, so the engine memoizes them here: a fingerprint-keyed map sharded
//! across [`parking_lot::RwLock`]s so concurrent sessions never contend on
//! a single lock, with atomic hit/miss accounting surfaced in the
//! throughput experiment.
//!
//! The cache is deliberately generic over the cached value: `vesta-core`
//! stores its reference-observation bundle, tests store small sentinels.
//! Values are handed out as [`Arc`]s; on a racing double-compute the first
//! insert wins so every reader sees one canonical value. Determinism does
//! not depend on that policy — same key implies same bytes by construction
//! (the fingerprint seeds the reference-run RNG) — it only keeps `Arc`
//! identity stable.

use parking_lot::RwLock;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default shard count; a power of two so the shard index is a mask.
const DEFAULT_SHARDS: usize = 16;

/// Default total capacity of a [`RunCache::new`] cache. A long-running
/// serving process replays an unbounded stream of fingerprints; without a
/// bound the memo table is a slow memory leak.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Point-in-time counters of a [`RunCache`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing (including the lookup half of
    /// [`RunCache::get_or_insert_with`] on first touch).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Total capacity (summed over shards) the cache enforces.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups; 0.0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One shard: the key→value map plus the key insertion order, so the
/// capacity bound can evict deterministically (FIFO by first insertion).
struct Shard<V> {
    map: HashMap<u64, Arc<V>>,
    order: VecDeque<u64>,
}

impl<V> Shard<V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }
}

/// Fingerprint-keyed memo table with sharded locks, a per-shard capacity
/// bound (FIFO eviction in first-insertion order — deterministic for any
/// fixed insertion sequence) and atomic accounting. Eviction only ever
/// costs a recompute: cached values are pure functions of their key.
pub struct RunCache<V> {
    shards: Vec<RwLock<Shard<V>>>,
    mask: u64,
    per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<V> RunCache<V> {
    /// Cache with the default shard count and the default capacity bound
    /// ([`DEFAULT_CACHE_CAPACITY`] entries total).
    pub fn new() -> Self {
        Self::with_shards_and_capacity(DEFAULT_SHARDS, DEFAULT_CACHE_CAPACITY)
    }

    /// Cache with `shards` rounded up to a power of two (min 1) and the
    /// default capacity bound.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_capacity(shards, DEFAULT_CACHE_CAPACITY)
    }

    /// Cache with the default shard count and a total `capacity` bound
    /// (min 1 entry per shard).
    pub fn bounded(capacity: usize) -> Self {
        Self::with_shards_and_capacity(DEFAULT_SHARDS, capacity)
    }

    /// Cache with explicit shard count and total capacity. The capacity is
    /// split evenly across shards (rounded up, min 1 per shard), so the
    /// enforced total is `per_shard × shards ≥ capacity`.
    pub fn with_shards_and_capacity(shards: usize, capacity: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let per_shard = capacity.max(1).div_ceil(n);
        Self {
            shards: (0..n).map(|_| RwLock::new(Shard::new())).collect(),
            mask: (n - 1) as u64,
            per_shard,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &RwLock<Shard<V>> {
        // Mix the key so fingerprints that share low bits still spread.
        let mut h = key;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        &self.shards[(h & self.mask) as usize]
    }

    /// Total entry capacity this cache enforces.
    pub fn capacity(&self) -> usize {
        self.per_shard * self.shards.len()
    }

    /// Look up `key`, counting a hit or a miss.
    pub fn get(&self, key: u64) -> Option<Arc<V>> {
        let found = self.shard(key).read().map.get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Insert `value` unless `key` is already present; returns the resident
    /// entry either way (first insert wins). A full shard first evicts its
    /// oldest entry (first-insertion order). Does not touch hit/miss
    /// counters — pair with [`RunCache::get`].
    pub fn insert(&self, key: u64, value: V) -> Arc<V> {
        let mut shard = self.shard(key).write();
        if let Some(existing) = shard.map.get(&key) {
            return Arc::clone(existing);
        }
        while shard.map.len() >= self.per_shard {
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            if shard.map.remove(&oldest).is_some() {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let resident = Arc::new(value);
        shard.map.insert(key, Arc::clone(&resident));
        shard.order.push_back(key);
        resident
    }

    /// Memoized compute: one read-locked probe, then `compute` runs
    /// *outside* any lock (it may simulate for milliseconds), then an
    /// insert-if-absent. Racing computers both do the work; the first
    /// insert wins and both observe the same resident `Arc`.
    pub fn get_or_insert_with(&self, key: u64, compute: impl FnOnce() -> V) -> Arc<V> {
        if let Some(v) = self.get(key) {
            return v;
        }
        let value = compute();
        self.insert(key, value)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().map.len()).sum()
    }

    /// Whether no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry; counters are preserved.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.write();
            s.map.clear();
            s.order.clear();
        }
    }

    /// Counters and occupancy at this instant.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len(),
            evictions: self.evictions.load(Ordering::Relaxed),
            capacity: self.capacity(),
        }
    }
}

impl<V> Default for RunCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> std::fmt::Debug for RunCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("RunCache")
            .field("entries", &s.entries)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("shards", &self.shards.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_accounting() {
        let cache: RunCache<u32> = RunCache::new();
        assert!(cache.get(7).is_none());
        cache.insert(7, 42);
        assert_eq!(*cache.get(7).unwrap(), 42);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn first_insert_wins() {
        let cache: RunCache<&'static str> = RunCache::new();
        let a = cache.insert(1, "first");
        let b = cache.insert(1, "second");
        assert_eq!(*a, "first");
        assert_eq!(*b, "first");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn get_or_insert_computes_once_per_key() {
        let cache: RunCache<u64> = RunCache::with_shards(4);
        let mut calls = 0;
        for _ in 0..3 {
            let v = cache.get_or_insert_with(9, || {
                calls += 1;
                99
            });
            assert_eq!(*v, 99);
        }
        assert_eq!(calls, 1);
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache: RunCache<u8> = RunCache::with_shards(3);
        for k in 0..64u64 {
            cache.insert(k, k as u8);
        }
        assert_eq!(cache.len(), 64);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn empty_cache_hit_rate_is_zero() {
        let cache: RunCache<u8> = RunCache::new();
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn capacity_bound_holds_and_evictions_are_counted() {
        // 1 shard × capacity 4 so the FIFO order is fully observable.
        let cache: RunCache<u64> = RunCache::with_shards_and_capacity(1, 4);
        assert_eq!(cache.capacity(), 4);
        for k in 0..10u64 {
            cache.insert(k, k * 10);
            assert!(cache.len() <= cache.capacity(), "bound violated at {k}");
        }
        let s = cache.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.evictions, 6);
        assert_eq!(s.capacity, 4);
        // FIFO: the oldest keys went first, the newest four survive.
        for k in 0..6u64 {
            assert!(cache.get(k).is_none(), "key {k} should be evicted");
        }
        for k in 6..10u64 {
            assert_eq!(*cache.get(k).unwrap(), k * 10);
        }
    }

    #[test]
    fn reinserting_a_resident_key_never_evicts() {
        let cache: RunCache<u8> = RunCache::with_shards_and_capacity(1, 2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Same key again: first insert wins, no eviction fires.
        let v = cache.insert(1, 99);
        assert_eq!(*v, 10);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn eviction_order_is_deterministic_for_a_fixed_sequence() {
        let run = || {
            let cache: RunCache<u64> = RunCache::with_shards_and_capacity(4, 16);
            for k in 0..200u64 {
                cache.insert(k.wrapping_mul(0x9E37_79B9), k);
            }
            let mut resident: Vec<u64> = (0..200u64)
                .map(|k| k.wrapping_mul(0x9E37_79B9))
                .filter(|&k| cache.shard(k).read().map.contains_key(&k))
                .collect();
            resident.sort_unstable();
            (resident, cache.stats().evictions)
        };
        assert_eq!(run(), run());
    }
}
