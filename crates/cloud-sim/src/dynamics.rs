//! Time-varying cloud dynamics: spot-price volatility, capacity reclaims,
//! catalog churn, diurnal arrivals, and multi-region price divergence.
//!
//! The fault layer in [`crate::fault`] models a *statistically stationary*
//! cloud: every rate is constant over a campaign. Real clouds are not
//! stationary — spot markets move hourly, VM generations retire mid-year,
//! request arrivals follow the sun, and a region's price sheet diverges
//! from its neighbours'. This module adds a [`DynamicPlan`] (the knobs)
//! and a [`DynamicInjector`] (the deterministic epoch-indexed draws) that
//! the bench harness weaves around the serving engine to replay weeks of
//! simulated cloud time.
//!
//! An **epoch** is the unit of simulated time (one hour in the shipped
//! scenarios). All queries are pure functions of
//! `(base seed, plan seed, epoch, vm)` drawn through
//! [`crate::noise::run_rng`] on dedicated streams (≥ 6), so:
//!
//! * the execution/metric streams (0–1) and the fault streams (2–5) are
//!   never touched — a [`DynamicPlan::none`] universe is bit-identical to
//!   a build without this module;
//! * re-asking the injector about the same epoch returns the same answer
//!   regardless of query order or thread interleaving.

use std::sync::Arc;

use rand::Rng;
use serde::{Deserialize, Serialize};
use vesta_obs::metrics::fnv1a;
use vesta_obs::{Counter, MetricsRegistry};

use crate::catalog::Catalog;
use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::noise::{lognormal_factor, run_rng};
use crate::vmtype::VmType;

/// Noise stream carrying per-(window, VM) spot-price draws.
const STREAM_SPOT: u64 = 6;
/// Noise stream carrying per-attempt spot-reclaim fate draws.
const STREAM_RECLAIM: u64 = 7;
/// Noise stream carrying per-VM retirement/introduction epoch draws.
const STREAM_CHURN: u64 = 8;
/// Noise stream carrying per-epoch arrival-intensity jitter.
const STREAM_ARRIVAL: u64 = 9;
/// Noise stream carrying per-(region, family) price-divergence draws.
const STREAM_REGION: u64 = 10;
/// Noise stream deciding which families a performance-drift regime hits.
const STREAM_DRIFT: u64 = 11;

/// Knobs for one simulated dynamic-cloud trace. The default
/// ([`DynamicPlan::none`]) is a provably static cloud: every query returns
/// its neutral value and no RNG stream is consumed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicPlan {
    /// Extra seed folded into every dynamic draw so different cloud
    /// histories can share one simulator seed.
    pub seed: u64,
    /// Trace length in epochs (hours in the shipped scenarios). `0` with
    /// every knob off means "no time dimension".
    pub horizon_epochs: u64,
    /// Coefficient of variation of the per-window spot-price multiplier;
    /// `0` pins every price to the on-demand sheet.
    pub spot_volatility: f64,
    /// Epochs per spot-price redraw window. Prices interpolate linearly
    /// between window anchors so a 6-hour window still moves every hour.
    pub spot_window_epochs: u64,
    /// Peak probability that one run attempt is reclaimed (spot
    /// interruption). Scaled by the instantaneous price pressure — a VM
    /// trading at its anchor price is never reclaimed, one trading far
    /// above it approaches this rate.
    pub reclaim_rate: f64,
    /// Fraction of VM types retired during the churn window.
    pub churn_rate: f64,
    /// First epoch (inclusive) at which retirements may land.
    pub churn_start_epoch: u64,
    /// First epoch (exclusive) after which no retirement lands.
    pub churn_end_epoch: u64,
    /// Fraction of VM types that are *introduced* mid-trace (a new
    /// generation): they are absent before their introduction epoch.
    pub intro_rate: f64,
    /// Amplitude of the diurnal arrival sinusoid in `[0, 1)`;
    /// `0` keeps arrivals flat.
    pub diurnal_amplitude: f64,
    /// Period of the arrival sinusoid in epochs (24 for hourly epochs).
    pub diurnal_period_epochs: u64,
    /// Coefficient of variation of the per-epoch lognormal jitter layered
    /// on the arrival sinusoid.
    pub arrival_jitter_cv: f64,
    /// Number of regions carrying the catalog; region 0 is the home
    /// region and always keeps the base price sheet.
    pub regions: u32,
    /// Coefficient of variation of the per-(region, family) price shift
    /// applied to non-home regions.
    pub region_divergence: f64,
    /// Epoch at which a performance-drift regime change lands (a
    /// generation refresh silently changing the hardware under a family).
    /// Ignored unless `drift_magnitude > 1`.
    pub drift_onset_epoch: u64,
    /// Multiplicative slowdown applied to affected families from the
    /// onset epoch on; `1` disables the regime change.
    pub drift_magnitude: f64,
    /// Fraction of VM families hit by the regime change.
    pub drift_family_fraction: f64,
}

impl DynamicPlan {
    /// The static cloud: every knob off. Querying an injector built from
    /// this plan is a provable no-op (neutral values, no RNG consumed).
    pub fn none() -> Self {
        DynamicPlan {
            seed: 0,
            horizon_epochs: 0,
            spot_volatility: 0.0,
            spot_window_epochs: 6,
            reclaim_rate: 0.0,
            churn_rate: 0.0,
            churn_start_epoch: 0,
            churn_end_epoch: 0,
            intro_rate: 0.0,
            diurnal_amplitude: 0.0,
            diurnal_period_epochs: 24,
            arrival_jitter_cv: 0.0,
            regions: 1,
            region_divergence: 0.0,
            drift_onset_epoch: 0,
            drift_magnitude: 1.0,
            drift_family_fraction: 0.0,
        }
    }

    /// True when no dynamic effect can ever fire.
    pub fn is_none(&self) -> bool {
        self.spot_volatility <= 0.0
            && self.reclaim_rate <= 0.0
            && self.churn_rate <= 0.0
            && self.intro_rate <= 0.0
            && self.diurnal_amplitude <= 0.0
            && self.arrival_jitter_cv <= 0.0
            && self.regions <= 1
            && self.drift_magnitude <= 1.0
    }

    /// Validate every knob *and* their cross-field consistency; returns a
    /// typed error naming the first inconsistency instead of silently
    /// clamping. The cross-field rules reject structurally inert or
    /// contradictory requests:
    ///
    /// * reclaims without spot volatility (pressure is always zero),
    /// * churn with an empty or out-of-horizon retirement window,
    /// * regional divergence with a single region,
    /// * a drift regime that never lands inside the horizon.
    pub fn validate(&self) -> Result<(), SimError> {
        let rates = [
            ("reclaim_rate", self.reclaim_rate),
            ("churn_rate", self.churn_rate),
            ("intro_rate", self.intro_rate),
            ("drift_family_fraction", self.drift_family_fraction),
        ];
        for (name, rate) in rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(SimError::InvalidDemand(format!(
                    "dynamic plan: {name} must be in [0, 1], got {rate}"
                )));
            }
        }
        let cvs = [
            ("spot_volatility", self.spot_volatility),
            ("arrival_jitter_cv", self.arrival_jitter_cv),
            ("region_divergence", self.region_divergence),
        ];
        for (name, cv) in cvs {
            if !cv.is_finite() || !(0.0..=4.0).contains(&cv) {
                return Err(SimError::InvalidDemand(format!(
                    "dynamic plan: {name} must be in [0, 4], got {cv}"
                )));
            }
        }
        if !self.diurnal_amplitude.is_finite() || !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(SimError::InvalidDemand(format!(
                "dynamic plan: diurnal_amplitude must be in [0, 1), got {}",
                self.diurnal_amplitude
            )));
        }
        if self.diurnal_amplitude > 0.0 && self.diurnal_period_epochs < 2 {
            return Err(SimError::InvalidDemand(format!(
                "dynamic plan: diurnal_period_epochs must be ≥ 2 when the \
                 sinusoid is active, got {}",
                self.diurnal_period_epochs
            )));
        }
        if self.spot_volatility > 0.0 && self.spot_window_epochs == 0 {
            return Err(SimError::InvalidDemand(
                "dynamic plan: spot_window_epochs must be ≥ 1 when \
                 spot_volatility > 0"
                    .into(),
            ));
        }
        if self.reclaim_rate > 0.0 && self.spot_volatility <= 0.0 {
            return Err(SimError::InvalidDemand(
                "dynamic plan: reclaim_rate > 0 without spot_volatility is \
                 structurally inert (reclaim pressure is derived from the \
                 spot price); set spot_volatility > 0 or reclaim_rate = 0"
                    .into(),
            ));
        }
        if !self.is_none() && self.horizon_epochs == 0 {
            return Err(SimError::InvalidDemand(
                "dynamic plan: horizon_epochs must be ≥ 1 when any dynamic \
                 knob is active"
                    .into(),
            ));
        }
        if self.churn_rate > 0.0 {
            if self.churn_start_epoch >= self.churn_end_epoch {
                return Err(SimError::InvalidDemand(format!(
                    "dynamic plan: churn window [{}, {}) is empty",
                    self.churn_start_epoch, self.churn_end_epoch
                )));
            }
            if self.churn_end_epoch > self.horizon_epochs {
                return Err(SimError::InvalidDemand(format!(
                    "dynamic plan: churn window ends at {} past the horizon {}",
                    self.churn_end_epoch, self.horizon_epochs
                )));
            }
        }
        if self.regions == 0 {
            return Err(SimError::InvalidDemand(
                "dynamic plan: regions must be ≥ 1".into(),
            ));
        }
        if self.region_divergence > 0.0 && self.regions < 2 {
            return Err(SimError::InvalidDemand(
                "dynamic plan: region_divergence > 0 needs regions ≥ 2 \
                 (region 0 always keeps the base price sheet)"
                    .into(),
            ));
        }
        if !self.drift_magnitude.is_finite() || self.drift_magnitude < 1.0 {
            return Err(SimError::InvalidDemand(format!(
                "dynamic plan: drift_magnitude must be ≥ 1, got {}",
                self.drift_magnitude
            )));
        }
        if self.drift_magnitude > 1.0 {
            if self.drift_family_fraction <= 0.0 {
                return Err(SimError::InvalidDemand(
                    "dynamic plan: drift_magnitude > 1 with \
                     drift_family_fraction = 0 hits no family; raise the \
                     fraction or set drift_magnitude = 1"
                        .into(),
                ));
            }
            if self.drift_onset_epoch >= self.horizon_epochs {
                return Err(SimError::InvalidDemand(format!(
                    "dynamic plan: drift_onset_epoch {} is outside the \
                     horizon {} and would never land",
                    self.drift_onset_epoch, self.horizon_epochs
                )));
            }
        }
        Ok(())
    }
}

impl Default for DynamicPlan {
    fn default() -> Self {
        DynamicPlan::none()
    }
}

/// One catalog-churn event: a VM type leaving or entering service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// The type is retired at the carried epoch (exclusive: the epoch is
    /// the first one where the type no longer exists).
    Retired { vm_id: usize, epoch: u64 },
    /// The type enters service at the carried epoch (inclusive).
    Introduced { vm_id: usize, epoch: u64 },
}

impl ChurnEvent {
    /// Epoch at which the event takes effect.
    pub fn epoch(&self) -> u64 {
        match self {
            ChurnEvent::Retired { epoch, .. } | ChurnEvent::Introduced { epoch, .. } => *epoch,
        }
    }

    /// The affected VM type.
    pub fn vm_id(&self) -> usize {
        match self {
            ChurnEvent::Retired { vm_id, .. } | ChurnEvent::Introduced { vm_id, .. } => *vm_id,
        }
    }
}

/// Per-kind telemetry counters bumped when a dynamic event actually fires.
/// Attached with [`DynamicInjector::with_obs`]; bumping relaxed atomics
/// consumes no RNG draws, so an instrumented injector produces the exact
/// event schedule of an uninstrumented one.
#[derive(Debug)]
pub struct DynamicCounters {
    /// `sim.dyn.reclaims` — run attempts lost to spot reclaims.
    pub reclaims: Arc<Counter>,
    /// `sim.dyn.retirements` — VM types retired by catalog churn.
    pub retirements: Arc<Counter>,
    /// `sim.dyn.introductions` — VM types introduced mid-trace.
    pub introductions: Arc<Counter>,
}

impl DynamicCounters {
    /// Register the `sim.dyn.*` counters on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        DynamicCounters {
            reclaims: registry.counter("sim.dyn.reclaims"),
            retirements: registry.counter("sim.dyn.retirements"),
            introductions: registry.counter("sim.dyn.introductions"),
        }
    }
}

/// Deterministic query layer over a [`DynamicPlan`]. All methods are pure
/// functions of the constructor arguments and the query coordinates.
#[derive(Debug)]
pub struct DynamicInjector {
    base_seed: u64,
    plan: DynamicPlan,
    counters: Option<DynamicCounters>,
}

impl DynamicInjector {
    /// New injector for one campaign seed.
    pub fn new(base_seed: u64, plan: DynamicPlan) -> Self {
        DynamicInjector {
            base_seed,
            plan,
            counters: None,
        }
    }

    /// Attach telemetry counters (`sim.dyn.*`). Counting never consumes
    /// RNG draws, so schedules are unchanged.
    pub fn with_obs(mut self, registry: &MetricsRegistry) -> Self {
        self.counters = Some(DynamicCounters::register(registry));
        self
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &DynamicPlan {
        &self.plan
    }

    /// Seed folded with the plan seed, mirroring the fault-injector
    /// convention so independent dynamic universes can share a simulator
    /// seed.
    fn dynamic_seed(&self) -> u64 {
        self.base_seed ^ self.plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// Spot-price anchor multiplier at window `w` for one VM type.
    fn window_anchor(&self, window: u64, vm_id: usize) -> f64 {
        let mut rng = run_rng(self.dynamic_seed(), window, vm_id as u64, 0, STREAM_SPOT);
        lognormal_factor(&mut rng, self.plan.spot_volatility)
    }

    /// Spot-price multiplier at `epoch` for one VM type: lognormal window
    /// anchors with unit median, linearly interpolated inside the window.
    /// Exactly `1.0` when volatility is off.
    pub fn price_multiplier(&self, epoch: u64, vm_id: usize) -> f64 {
        if self.plan.spot_volatility <= 0.0 {
            return 1.0;
        }
        let win = self.plan.spot_window_epochs.max(1);
        let w = epoch / win;
        let frac = (epoch % win) as f64 / win as f64;
        let a = self.window_anchor(w, vm_id);
        if frac == 0.0 {
            return a;
        }
        let b = self.window_anchor(w + 1, vm_id);
        a * (1.0 - frac) + b * frac
    }

    /// Instantaneous spot price of one VM type, $/hour.
    pub fn spot_price(&self, epoch: u64, vm: &VmType) -> f64 {
        vm.price_per_hour * self.price_multiplier(epoch, vm.id)
    }

    /// Reclaim pressure in `[0, 1)`: zero at or below the anchor price,
    /// approaching 1 as the market trades far above it. This couples
    /// interruptions to the price signal the way real spot markets do.
    pub fn reclaim_pressure(&self, epoch: u64, vm_id: usize) -> f64 {
        let m = self.price_multiplier(epoch, vm_id);
        if m > 1.0 {
            1.0 - 1.0 / m
        } else {
            0.0
        }
    }

    /// Whether one run attempt at `epoch` is reclaimed by the spot market.
    /// Pure in `(epoch, workload, vm, run index)`; bumps
    /// `sim.dyn.reclaims` when it fires.
    pub fn reclaimed(&self, epoch: u64, workload_id: u64, vm_id: usize, run_idx: u64) -> bool {
        let p = self.plan.reclaim_rate * self.reclaim_pressure(epoch, vm_id);
        if p <= 0.0 {
            return false;
        }
        let mut rng = run_rng(
            self.dynamic_seed() ^ epoch.wrapping_mul(0x2545_F491_4F6C_DD1D),
            workload_id,
            vm_id as u64,
            run_idx,
            STREAM_RECLAIM,
        );
        let fired = rng.gen::<f64>() < p;
        if fired {
            if let Some(c) = &self.counters {
                c.reclaims.inc();
            }
        }
        fired
    }

    /// Retirement epoch of one VM type, if churn retires it. Both draws
    /// (fate, epoch) are taken unconditionally so the schedule of every
    /// other type is independent of this one's verdict.
    pub fn retirement_epoch(&self, vm_id: usize) -> Option<u64> {
        if self.plan.churn_rate <= 0.0 {
            return None;
        }
        let mut rng = run_rng(self.dynamic_seed(), 0, vm_id as u64, 0, STREAM_CHURN);
        let fate: f64 = rng.gen();
        let span = self.plan.churn_end_epoch - self.plan.churn_start_epoch;
        let offset = rng.gen_range(0..span.max(1));
        if fate < self.plan.churn_rate {
            Some(self.plan.churn_start_epoch + offset)
        } else {
            None
        }
    }

    /// Introduction epoch of one VM type: `0` (in service from the start)
    /// unless the intro draw marks it a mid-trace arrival.
    pub fn introduction_epoch(&self, vm_id: usize) -> u64 {
        if self.plan.intro_rate <= 0.0 || self.plan.horizon_epochs == 0 {
            return 0;
        }
        let mut rng = run_rng(self.dynamic_seed(), 0, vm_id as u64, 1, STREAM_CHURN);
        let fate: f64 = rng.gen();
        let epoch = rng.gen_range(0..self.plan.horizon_epochs);
        if fate < self.plan.intro_rate {
            epoch
        } else {
            0
        }
    }

    /// Whether one VM type is in service at `epoch`.
    pub fn vm_active(&self, epoch: u64, vm_id: usize) -> bool {
        if epoch < self.introduction_epoch(vm_id) {
            return false;
        }
        match self.retirement_epoch(vm_id) {
            Some(r) => epoch < r,
            None => true,
        }
    }

    /// Every churn event for a catalog of `catalog_len` types, sorted by
    /// epoch (ties by vm id). Bumps `sim.dyn.retirements` /
    /// `sim.dyn.introductions` once per event.
    pub fn churn_schedule(&self, catalog_len: usize) -> Vec<ChurnEvent> {
        let mut events = Vec::new();
        for vm_id in 0..catalog_len {
            if let Some(epoch) = self.retirement_epoch(vm_id) {
                events.push(ChurnEvent::Retired { vm_id, epoch });
                if let Some(c) = &self.counters {
                    c.retirements.inc();
                }
            }
            let intro = self.introduction_epoch(vm_id);
            if intro > 0 {
                events.push(ChurnEvent::Introduced {
                    vm_id,
                    epoch: intro,
                });
                if let Some(c) = &self.counters {
                    c.introductions.inc();
                }
            }
        }
        events.sort_by_key(|e| (e.epoch(), e.vm_id()));
        events
    }

    /// Request arrival intensity at `epoch`, relative to the flat rate
    /// (1.0): a diurnal sinusoid with optional per-epoch lognormal jitter.
    /// Exactly `1.0` for a static plan.
    pub fn arrival_intensity(&self, epoch: u64) -> f64 {
        let mut intensity = 1.0;
        if self.plan.diurnal_amplitude > 0.0 {
            let period = self.plan.diurnal_period_epochs.max(2);
            let phase = (epoch % period) as f64 / period as f64;
            intensity += self.plan.diurnal_amplitude * (2.0 * std::f64::consts::PI * phase).sin();
        }
        if self.plan.arrival_jitter_cv > 0.0 {
            let mut rng = run_rng(self.dynamic_seed(), epoch, 0, 0, STREAM_ARRIVAL);
            intensity *= lognormal_factor(&mut rng, self.plan.arrival_jitter_cv);
        }
        intensity.max(0.0)
    }

    /// Price multiplier a non-home region applies to one VM type's
    /// family. Region 0 always returns `1.0`.
    pub fn regional_price_multiplier(&self, region: u32, vm: &VmType) -> f64 {
        if region == 0 || self.plan.region_divergence <= 0.0 {
            return 1.0;
        }
        let mut rng = run_rng(
            self.dynamic_seed(),
            region as u64,
            fnv1a(vm.family.as_bytes()),
            0,
            STREAM_REGION,
        );
        lognormal_factor(&mut rng, self.plan.region_divergence)
    }

    /// The catalog as priced in `region`: identical types and ids, each
    /// family's on-demand price shifted by the region's divergence draw.
    pub fn regional_catalog(&self, base: &Catalog, region: u32) -> Catalog {
        base.reprice(|vm| vm.price_per_hour * self.regional_price_multiplier(region, vm))
    }

    /// Multiplicative execution-time factor at `epoch` for one VM type:
    /// `1.0` before the drift regime lands (or for unaffected families),
    /// [`DynamicPlan::drift_magnitude`] afterward. This is the
    /// step-change the drift detector in `vesta-core` chases.
    pub fn perf_factor(&self, epoch: u64, vm: &VmType) -> f64 {
        if self.plan.drift_magnitude <= 1.0
            || self.plan.drift_family_fraction <= 0.0
            || epoch < self.plan.drift_onset_epoch
        {
            return 1.0;
        }
        let mut rng = run_rng(
            self.dynamic_seed(),
            0,
            fnv1a(vm.family.as_bytes()),
            0,
            STREAM_DRIFT,
        );
        if rng.gen::<f64>() < self.plan.drift_family_fraction {
            self.plan.drift_magnitude
        } else {
            1.0
        }
    }

    /// The cloud as it performs at `epoch`: `base` with every drifted
    /// family's delivered resources derated by [`DynamicInjector::perf_factor`]
    /// (see [`Catalog::derate`]). Before the drift onset (or with drift
    /// off) this is `base` unchanged, so ground truth computed on the
    /// drifted catalog is bit-identical to the static ground truth — the
    /// `none()` inertness contract extends through the catalog.
    pub fn drifted_catalog(&self, base: &Catalog, epoch: u64) -> Catalog {
        if self.plan.drift_magnitude <= 1.0
            || self.plan.drift_family_fraction <= 0.0
            || epoch < self.plan.drift_onset_epoch
        {
            return base.clone();
        }
        base.derate(|vm| self.perf_factor(epoch, vm))
    }

    /// The stationary fault plan a [`crate::FaultInjector`] should run
    /// with during `epoch`: the base plan with its transient-failure rate
    /// raised to the mean reclaim probability across the catalog, and its
    /// seed folded with the epoch so each hour draws a fresh schedule.
    /// This is how spot reclaims feed the existing injector/breaker path.
    pub fn fault_plan_at(&self, epoch: u64, base: &FaultPlan, catalog: &Catalog) -> FaultPlan {
        let mut plan = base.clone();
        if self.plan.reclaim_rate > 0.0 && !catalog.is_empty() {
            let mean_reclaim = catalog
                .all()
                .iter()
                .map(|vm| self.plan.reclaim_rate * self.reclaim_pressure(epoch, vm.id))
                .sum::<f64>()
                / catalog.len() as f64;
            plan.transient_failure_rate = plan.transient_failure_rate.max(mean_reclaim.min(1.0));
        }
        if !self.plan.is_none() {
            plan.seed = base.seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.plan.seed;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn week_plan() -> DynamicPlan {
        DynamicPlan {
            seed: 7,
            horizon_epochs: 168,
            spot_volatility: 0.3,
            spot_window_epochs: 6,
            reclaim_rate: 0.2,
            churn_rate: 0.1,
            churn_start_epoch: 48,
            churn_end_epoch: 120,
            intro_rate: 0.05,
            diurnal_amplitude: 0.5,
            diurnal_period_epochs: 24,
            arrival_jitter_cv: 0.1,
            regions: 3,
            region_divergence: 0.15,
            drift_onset_epoch: 84,
            drift_magnitude: 1.6,
            drift_family_fraction: 0.4,
        }
    }

    #[test]
    fn none_plan_is_neutral_everywhere() {
        let inj = DynamicInjector::new(42, DynamicPlan::none());
        let catalog = Catalog::aws_ec2();
        let vm = catalog.get(0usize).unwrap();
        for epoch in [0u64, 1, 23, 167, 10_000] {
            assert_eq!(inj.price_multiplier(epoch, vm.id), 1.0);
            assert_eq!(
                inj.spot_price(epoch, vm).to_bits(),
                vm.price_per_hour.to_bits()
            );
            assert_eq!(inj.reclaim_pressure(epoch, vm.id), 0.0);
            assert!(!inj.reclaimed(epoch, 1, vm.id, 0));
            assert!(inj.vm_active(epoch, vm.id));
            assert_eq!(inj.arrival_intensity(epoch), 1.0);
            assert_eq!(inj.perf_factor(epoch, vm), 1.0);
        }
        assert!(inj.churn_schedule(catalog.len()).is_empty());
        let plan = inj.fault_plan_at(3, &FaultPlan::none(), &catalog);
        assert_eq!(plan, FaultPlan::none());
        let regional = inj.regional_catalog(&catalog, 0);
        for (a, b) in catalog.all().iter().zip(regional.all()) {
            assert_eq!(a.price_per_hour.to_bits(), b.price_per_hour.to_bits());
        }
    }

    #[test]
    fn none_plan_validates_and_is_default() {
        assert!(DynamicPlan::none().validate().is_ok());
        assert!(DynamicPlan::none().is_none());
        assert_eq!(DynamicPlan::default(), DynamicPlan::none());
        assert!(week_plan().validate().is_ok());
        assert!(!week_plan().is_none());
    }

    #[test]
    fn validate_rejects_inconsistent_cross_fields() {
        let reclaim_no_spot = DynamicPlan {
            horizon_epochs: 24,
            reclaim_rate: 0.1,
            spot_volatility: 0.0,
            ..DynamicPlan::none()
        };
        assert!(reclaim_no_spot.validate().is_err());

        let empty_churn = DynamicPlan {
            horizon_epochs: 24,
            churn_rate: 0.1,
            churn_start_epoch: 10,
            churn_end_epoch: 10,
            ..DynamicPlan::none()
        };
        assert!(empty_churn.validate().is_err());

        let churn_past_horizon = DynamicPlan {
            horizon_epochs: 24,
            churn_rate: 0.1,
            churn_start_epoch: 10,
            churn_end_epoch: 48,
            ..DynamicPlan::none()
        };
        assert!(churn_past_horizon.validate().is_err());

        let active_no_horizon = DynamicPlan {
            horizon_epochs: 0,
            spot_volatility: 0.2,
            ..DynamicPlan::none()
        };
        assert!(active_no_horizon.validate().is_err());

        let divergence_one_region = DynamicPlan {
            horizon_epochs: 24,
            regions: 1,
            region_divergence: 0.2,
            ..DynamicPlan::none()
        };
        assert!(divergence_one_region.validate().is_err());

        let drift_never_lands = DynamicPlan {
            horizon_epochs: 24,
            drift_onset_epoch: 24,
            drift_magnitude: 1.5,
            drift_family_fraction: 0.3,
            ..DynamicPlan::none()
        };
        assert!(drift_never_lands.validate().is_err());

        let drift_no_family = DynamicPlan {
            horizon_epochs: 24,
            drift_onset_epoch: 4,
            drift_magnitude: 1.5,
            drift_family_fraction: 0.0,
            ..DynamicPlan::none()
        };
        assert!(drift_no_family.validate().is_err());

        let bad_rate = DynamicPlan {
            horizon_epochs: 24,
            churn_rate: 1.5,
            churn_start_epoch: 0,
            churn_end_epoch: 10,
            ..DynamicPlan::none()
        };
        assert!(bad_rate.validate().is_err());
    }

    #[test]
    fn queries_are_deterministic() {
        let a = DynamicInjector::new(11, week_plan());
        let b = DynamicInjector::new(11, week_plan());
        let catalog = Catalog::aws_ec2();
        for epoch in [0u64, 5, 84, 167] {
            for vm in catalog.all().iter().take(10) {
                assert_eq!(
                    a.price_multiplier(epoch, vm.id).to_bits(),
                    b.price_multiplier(epoch, vm.id).to_bits()
                );
                assert_eq!(
                    a.reclaimed(epoch, 3, vm.id, 1),
                    b.reclaimed(epoch, 3, vm.id, 1)
                );
                assert_eq!(
                    a.perf_factor(epoch, vm).to_bits(),
                    b.perf_factor(epoch, vm).to_bits()
                );
            }
            assert_eq!(
                a.arrival_intensity(epoch).to_bits(),
                b.arrival_intensity(epoch).to_bits()
            );
        }
        assert_eq!(
            a.churn_schedule(catalog.len()),
            b.churn_schedule(catalog.len())
        );
    }

    #[test]
    fn different_seeds_diverge() {
        let a = DynamicInjector::new(1, week_plan());
        let b = DynamicInjector::new(2, week_plan());
        let diverged = (0..20u64)
            .any(|e| a.price_multiplier(e, 0).to_bits() != b.price_multiplier(e, 0).to_bits());
        assert!(diverged);
    }

    #[test]
    fn price_interpolates_continuously_between_anchors() {
        let inj = DynamicInjector::new(5, week_plan());
        let win = week_plan().spot_window_epochs;
        // At a window boundary the multiplier equals the anchor; inside
        // the window it stays between the two surrounding anchors.
        let a0 = inj.price_multiplier(0, 3);
        let a1 = inj.price_multiplier(win, 3);
        for e in 1..win {
            let m = inj.price_multiplier(e, 3);
            let (lo, hi) = if a0 <= a1 { (a0, a1) } else { (a1, a0) };
            assert!(
                m >= lo - 1e-12 && m <= hi + 1e-12,
                "epoch {e}: {m} outside [{lo}, {hi}]"
            );
            assert!(m > 0.0);
        }
    }

    #[test]
    fn reclaim_pressure_tracks_price() {
        let inj = DynamicInjector::new(9, week_plan());
        for e in 0..48u64 {
            for vm in 0..5usize {
                let m = inj.price_multiplier(e, vm);
                let p = inj.reclaim_pressure(e, vm);
                assert!((0.0..1.0).contains(&p));
                if m <= 1.0 {
                    assert_eq!(p, 0.0);
                } else {
                    assert!(p > 0.0);
                }
            }
        }
    }

    #[test]
    fn churn_lands_inside_window_and_roughly_at_rate() {
        let plan = week_plan();
        let inj = DynamicInjector::new(3, plan.clone());
        let n = 120usize;
        let events = inj.churn_schedule(n);
        let retired: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Retired { .. }))
            .collect();
        let introduced: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Introduced { .. }))
            .collect();
        for e in &retired {
            assert!(e.epoch() >= plan.churn_start_epoch && e.epoch() < plan.churn_end_epoch);
        }
        for e in &introduced {
            assert!(e.epoch() > 0 && e.epoch() < plan.horizon_epochs);
        }
        // 120 draws at rate 0.1: expect ~12 retirements, allow a wide band.
        assert!(
            (1..=36).contains(&retired.len()),
            "retired {} of {n}",
            retired.len()
        );
        // A retired type is inactive from its retirement epoch on.
        if let Some(ChurnEvent::Retired { vm_id, epoch }) = retired.first() {
            assert!(inj.vm_active(epoch.saturating_sub(1), *vm_id) || *epoch == 0);
            assert!(!inj.vm_active(*epoch, *vm_id));
            assert!(!inj.vm_active(plan.horizon_epochs - 1, *vm_id));
        }
    }

    #[test]
    fn arrival_intensity_oscillates_around_one() {
        let plan = DynamicPlan {
            horizon_epochs: 48,
            diurnal_amplitude: 0.5,
            diurnal_period_epochs: 24,
            ..DynamicPlan::none()
        };
        let inj = DynamicInjector::new(1, plan);
        let vals: Vec<f64> = (0..24u64).map(|e| inj.arrival_intensity(e)).collect();
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 1.2 && max <= 1.5 + 1e-9);
        assert!((0.5 - 1e-9..0.8).contains(&min));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn regional_catalogs_share_ids_and_diverge_in_price() {
        let inj = DynamicInjector::new(4, week_plan());
        let base = Catalog::aws_ec2();
        let home = inj.regional_catalog(&base, 0);
        let remote = inj.regional_catalog(&base, 1);
        assert_eq!(home.len(), base.len());
        assert_eq!(remote.len(), base.len());
        let mut diverged = 0usize;
        for (a, b) in base.all().iter().zip(remote.all()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.vcpus, b.vcpus);
            assert!(b.price_per_hour > 0.0);
            if a.price_per_hour.to_bits() != b.price_per_hour.to_bits() {
                diverged += 1;
            }
        }
        assert!(diverged > 0, "remote region should shift some family price");
        // Same family ⇒ same multiplier within a region.
        let f0 = remote.family("m5");
        let b0 = base.family("m5");
        let r = f0[0].price_per_hour / b0[0].price_per_hour;
        for (fv, bv) in f0.iter().zip(&b0) {
            assert!((fv.price_per_hour / bv.price_per_hour - r).abs() < 1e-9);
        }
    }

    #[test]
    fn perf_drift_is_a_step_change_per_family() {
        let plan = week_plan();
        let inj = DynamicInjector::new(6, plan.clone());
        let catalog = Catalog::aws_ec2();
        let mut hit_families = 0usize;
        for family in catalog.families() {
            let vms = catalog.family(family);
            let before = inj.perf_factor(plan.drift_onset_epoch - 1, vms[0]);
            let after = inj.perf_factor(plan.drift_onset_epoch, vms[0]);
            assert_eq!(before, 1.0);
            assert!(after == 1.0 || after == plan.drift_magnitude);
            if after > 1.0 {
                hit_families += 1;
                // Every size in the family drifts together.
                for vm in &vms {
                    assert_eq!(
                        inj.perf_factor(plan.horizon_epochs - 1, vm),
                        plan.drift_magnitude
                    );
                }
            }
        }
        assert!(hit_families > 0, "a 40% family fraction should hit someone");
    }

    fn catalogs_identical(a: &Catalog, b: &Catalog) -> bool {
        a.len() == b.len()
            && a.all().iter().zip(b.all()).all(|(x, y)| {
                x.id == y.id
                    && x.name == y.name
                    && x.cpu_speed.to_bits() == y.cpu_speed.to_bits()
                    && x.disk_mbps.to_bits() == y.disk_mbps.to_bits()
                    && x.network_gbps.to_bits() == y.network_gbps.to_bits()
                    && x.price_per_hour.to_bits() == y.price_per_hour.to_bits()
            })
    }

    #[test]
    fn drifted_catalog_derates_exactly_the_drifted_families() {
        let plan = week_plan();
        let inj = DynamicInjector::new(6, plan.clone());
        let base = Catalog::aws_ec2();
        // Before the onset the drifted catalog is the base, bit for bit.
        let pre = inj.drifted_catalog(&base, plan.drift_onset_epoch - 1);
        assert!(catalogs_identical(&pre, &base));
        let post = inj.drifted_catalog(&base, plan.drift_onset_epoch);
        assert_eq!(post.len(), base.len());
        let mut derated = 0usize;
        for (a, b) in base.all().iter().zip(post.all()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.name, b.name);
            assert_eq!(a.price_per_hour, b.price_per_hour, "derate keeps prices");
            let m = inj.perf_factor(plan.drift_onset_epoch, a);
            if m > 1.0 {
                derated += 1;
                assert!((b.cpu_speed - a.cpu_speed / m).abs() < 1e-12);
                assert!((b.disk_mbps - a.disk_mbps / m).abs() < 1e-9);
                assert!((b.network_gbps - a.network_gbps / m).abs() < 1e-12);
            } else {
                assert_eq!(a.cpu_speed, b.cpu_speed);
            }
        }
        assert!(derated > 0, "post-onset catalog must actually change");
        // A none() plan never touches the catalog at any epoch.
        let inert = DynamicInjector::new(6, DynamicPlan::none());
        assert!(catalogs_identical(&inert.drifted_catalog(&base, 0), &base));
        assert!(catalogs_identical(
            &inert.drifted_catalog(&base, 10_000),
            &base
        ));
    }

    #[test]
    fn fault_plan_at_feeds_reclaims_into_transient_rate() {
        let inj = DynamicInjector::new(8, week_plan());
        let catalog = Catalog::aws_ec2();
        let base = FaultPlan {
            transient_failure_rate: 0.01,
            ..FaultPlan::none()
        };
        let mut raised = false;
        let mut seeds = std::collections::BTreeSet::new();
        for epoch in 0..48u64 {
            let plan = inj.fault_plan_at(epoch, &base, &catalog);
            assert!(plan.transient_failure_rate >= base.transient_failure_rate);
            assert!(plan.transient_failure_rate <= 1.0);
            assert!(plan.validate().is_ok());
            raised |= plan.transient_failure_rate > base.transient_failure_rate;
            seeds.insert(plan.seed);
        }
        assert!(raised, "some epoch should see reclaim pressure");
        assert!(seeds.len() > 1, "per-epoch schedules must differ");
    }

    #[test]
    fn counters_do_not_perturb_schedules() {
        let registry = MetricsRegistry::noop();
        let plain = DynamicInjector::new(13, week_plan());
        let counted = DynamicInjector::new(13, week_plan()).with_obs(&registry);
        for epoch in 0..24u64 {
            for vm in 0..20usize {
                assert_eq!(
                    plain.reclaimed(epoch, 5, vm, 2),
                    counted.reclaimed(epoch, 5, vm, 2)
                );
            }
        }
        let schedule = counted.churn_schedule(120);
        assert_eq!(plain.churn_schedule(120), schedule);
        let retired = schedule
            .iter()
            .filter(|e| matches!(e, ChurnEvent::Retired { .. }))
            .count();
        assert!(retired > 0);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sim.dyn.retirements"), retired as u64);
    }
}
