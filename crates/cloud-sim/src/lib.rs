//! # vesta-cloud-sim
//!
//! Simulated Amazon EC2 substrate for the Vesta reproduction. The paper's
//! evaluation runs 30 big data applications on 120 real EC2 VM types; this
//! crate replaces the paid cloud with a deterministic-but-noisy model (see
//! DESIGN.md's substitution table):
//!
//! * [`vmtype`] / [`catalog`] — the 120 VM types of Table 4 with realistic
//!   resource vectors and on-demand prices.
//! * [`perf`] — the Bulk-Synchronous-Parallel execution-time model
//!   (compute / disk / network / sync supersteps against a VM's resources),
//!   plus the exhaustive ground-truth ranking of Section 5.2.
//! * [`metrics`] — the 20 low-level metrics sampled every 5 s and the
//!   10 correlation similarities of Table 1.
//! * [`noise`] — seeded lognormal run-to-run variability (P90 handling).
//! * [`fault`] — seeded, deterministic fault injection (transient run
//!   failures, capacity errors, stragglers, metric dropout/corruption) and
//!   the bounded [`fault::RetryPolicy`] consumers use to survive it.
//! * [`dynamics`] — the time dimension: epoch-indexed spot-price
//!   volatility with interruption reclaims, catalog churn (generations
//!   retired/introduced mid-trace), diurnal arrival intensity, regional
//!   price divergence, and performance-drift regime changes.
//! * [`store`] — the in-memory stand-in for the paper's MySQL store.
//! * [`cache`] — sharded, fingerprint-keyed memo table the batch engine
//!   uses to skip redundant reference runs.
//! * [`des`] — a task-level discrete-event re-implementation of the BSP
//!   semantics that cross-validates the closed-form model (stragglers and
//!   wave imbalance emerge instead of being modeled).

pub mod cache;
pub mod catalog;
pub mod des;
pub mod dynamics;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod noise;
pub mod perf;
pub mod store;
pub mod vmtype;

pub use cache::{CacheStats, RunCache, DEFAULT_CACHE_CAPACITY};
pub use catalog::Catalog;
pub use des::{simulate as des_simulate, DesConfig, DesResult};
pub use dynamics::{ChurnEvent, DynamicCounters, DynamicInjector, DynamicPlan};
pub use error::SimError;
pub use fault::{FaultCounters, FaultInjector, FaultPlan, RetryPolicy, RunFate, RETRY_RUN_STRIDE};
pub use metrics::{
    Collector, CorrelationEstimator, CorrelationVector, MetricsTrace, CORRELATION_NAMES,
    N_CORRELATIONS, N_METRICS,
};
pub use perf::{
    best_vm, exhaustive_ranking, ExecutionDemand, Objective, PhaseBreakdown, RunResult, SimConfig,
    Simulator,
};
pub use store::{Aggregate, MetricsStore, RunKey, RunRecord};
pub use vmtype::{FamilySpec, VmCategory, VmSize, VmType, VmTypeId};
