//! In-memory metrics store — the simulator's stand-in for the MySQL
//! database of Section 4.1 ("All data is stored in the MySQL database").
//!
//! Keyed by `(workload, vm type)`; each key accumulates repeated runs so the
//! P90 conservative estimate over the paper's 10 repetitions can be queried.
//! Thread-safe behind a `parking_lot::RwLock` so the rayon-parallel
//! profiling sweep can insert concurrently.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::error::SimError;
use crate::metrics::CorrelationVector;

/// A recorded run of one workload on one VM type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Run repetition index.
    pub run_idx: u64,
    /// Measured execution time, seconds.
    pub execution_time_s: f64,
    /// Measured cost, USD.
    pub cost_usd: f64,
    /// Correlation similarities extracted from the run's metric trace.
    pub correlations: CorrelationVector,
    /// Mean utilization of each of the 20 low-level metrics.
    pub metric_means: [f64; crate::metrics::N_METRICS],
}

/// Key identifying a profiled (workload, VM) pair.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RunKey {
    /// Workload identity (stable id from the workload suite).
    pub workload_id: u64,
    /// Catalog id of the VM type.
    pub vm_id: usize,
}

/// Aggregate view over the repetitions of one (workload, VM) pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Aggregate {
    /// Number of recorded repetitions.
    pub runs: usize,
    /// P90 of execution time (the paper's conservative estimate).
    pub p90_time_s: f64,
    /// Mean execution time.
    pub mean_time_s: f64,
    /// P90 of cost.
    pub p90_cost_usd: f64,
    /// Mean correlation vector across repetitions.
    pub correlations: CorrelationVector,
}

/// Thread-safe store of run records.
#[derive(Debug, Default)]
pub struct MetricsStore {
    // BTreeMap so iteration (snapshot, vms_for_workload) is key-ordered
    // without a sort pass — and so dump bytes never depend on hasher state.
    inner: RwLock<BTreeMap<RunKey, Vec<RunRecord>>>,
}

impl MetricsStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert one run record.
    pub fn insert(&self, key: RunKey, record: RunRecord) {
        self.inner.write().entry(key).or_default().push(record);
    }

    /// Number of distinct (workload, VM) keys.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Total recorded runs across all keys (a proxy for profiling cost —
    /// the training-overhead axis of Figs. 3 and 8 counts these).
    pub fn total_runs(&self) -> usize {
        self.inner.read().values().map(Vec::len).sum()
    }

    /// Raw records for a key.
    pub fn records(&self, key: &RunKey) -> Result<Vec<RunRecord>, SimError> {
        self.inner
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| SimError::NoData(format!("{key:?}")))
    }

    /// P90/mean aggregate for a key.
    pub fn aggregate(&self, key: &RunKey) -> Result<Aggregate, SimError> {
        let records = self.records(key)?;
        let times: Vec<f64> = records.iter().map(|r| r.execution_time_s).collect();
        let costs: Vec<f64> = records.iter().map(|r| r.cost_usd).collect();
        let cors: Vec<CorrelationVector> = records.iter().map(|r| r.correlations).collect();
        Ok(Aggregate {
            runs: records.len(),
            p90_time_s: vesta_ml::stats::p90(&times)
                .map_err(|e| SimError::NoData(e.to_string()))?,
            mean_time_s: vesta_ml::stats::mean(&times),
            p90_cost_usd: vesta_ml::stats::p90(&costs)
                .map_err(|e| SimError::NoData(e.to_string()))?,
            correlations: CorrelationVector::mean_of(&cors)
                .ok_or_else(|| SimError::NoData("no correlation vectors".into()))?,
        })
    }

    /// All VM ids profiled for a workload.
    pub fn vms_for_workload(&self, workload_id: u64) -> Vec<usize> {
        let mut ids: Vec<usize> = self
            .inner
            .read()
            .keys()
            .filter(|k| k.workload_id == workload_id)
            .map(|k| k.vm_id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Rebuild a store from a [`MetricsStore::snapshot`] dump — the load
    /// half of knowledge persistence.
    pub fn from_snapshot(entries: Vec<(RunKey, Vec<RunRecord>)>) -> Self {
        let store = MetricsStore::new();
        {
            let mut inner = store.inner.write();
            for (key, records) in entries {
                inner.insert(key, records);
            }
        }
        store
    }

    /// Snapshot every key (for serde export / experiment dumps).
    pub fn snapshot(&self) -> Vec<(RunKey, Vec<RunRecord>)> {
        let mut v: Vec<(RunKey, Vec<RunRecord>)> = self
            .inner
            .read()
            .iter()
            .map(|(k, r)| (k.clone(), r.clone()))
            .collect();
        v.sort_by_key(|(k, _)| (k.workload_id, k.vm_id));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{CorrelationVector, N_CORRELATIONS, N_METRICS};

    fn record(run_idx: u64, time: f64) -> RunRecord {
        RunRecord {
            run_idx,
            execution_time_s: time,
            cost_usd: time / 100.0,
            correlations: CorrelationVector {
                values: [0.5; N_CORRELATIONS],
            },
            metric_means: [0.0; N_METRICS],
        }
    }

    fn key(w: u64, v: usize) -> RunKey {
        RunKey {
            workload_id: w,
            vm_id: v,
        }
    }

    /// Pure in-memory snapshot round-trip — part of the CI Miri surface
    /// (`cargo miri test -p vesta-cloud-sim --lib codec_`).
    #[test]
    fn codec_store_snapshot_round_trips_in_key_order() {
        let store = MetricsStore::new();
        store.insert(key(2, 1), record(0, 30.0));
        store.insert(key(1, 5), record(0, 10.0));
        store.insert(key(1, 2), record(1, 20.0));
        let snap = store.snapshot();
        let keys: Vec<(u64, usize)> = snap.iter().map(|(k, _)| (k.workload_id, k.vm_id)).collect();
        assert_eq!(keys, vec![(1, 2), (1, 5), (2, 1)]);
        let rebuilt = MetricsStore::from_snapshot(snap.clone());
        assert_eq!(rebuilt.snapshot(), snap);
        assert_eq!(rebuilt.total_runs(), 3);
    }

    #[test]
    fn insert_and_aggregate() {
        let store = MetricsStore::new();
        for (i, t) in [100.0, 110.0, 90.0, 105.0, 95.0].iter().enumerate() {
            store.insert(key(1, 2), record(i as u64, *t));
        }
        let agg = store.aggregate(&key(1, 2)).unwrap();
        assert_eq!(agg.runs, 5);
        assert!((agg.mean_time_s - 100.0).abs() < 1e-9);
        assert!(agg.p90_time_s > agg.mean_time_s); // conservative
        assert!((agg.correlations.values[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn missing_key_errors() {
        let store = MetricsStore::new();
        assert!(store.aggregate(&key(9, 9)).is_err());
        assert!(store.records(&key(9, 9)).is_err());
    }

    #[test]
    fn counts_and_snapshot() {
        let store = MetricsStore::new();
        store.insert(key(1, 1), record(0, 10.0));
        store.insert(key(1, 1), record(1, 11.0));
        store.insert(key(1, 2), record(0, 20.0));
        store.insert(key(2, 1), record(0, 30.0));
        assert_eq!(store.len(), 3);
        assert_eq!(store.total_runs(), 4);
        assert!(!store.is_empty());
        assert_eq!(store.vms_for_workload(1), vec![1, 2]);
        let snap = store.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].0, key(1, 1));
    }

    #[test]
    fn concurrent_inserts_are_all_kept() {
        use rayon::prelude::*;
        let store = MetricsStore::new();
        (0..100u64).into_par_iter().for_each(|i| {
            store.insert(key(i % 4, (i % 7) as usize), record(i, i as f64 + 1.0));
        });
        assert_eq!(store.total_runs(), 100);
    }
}
