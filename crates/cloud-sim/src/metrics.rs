//! Low-level metric collection and correlation analysis.
//!
//! Section 3.1: "After each test run, we collect 20 low-level metrics that
//! can reflect application's resource requirements, execution features, and
//! other system factors", sampled "in every 5 seconds" (Section 4.1), and
//! "run a correlation analysis for each low-level metrics pair", yielding
//! the 10 *correlation similarities* of Table 1.
//!
//! The simulator synthesizes the per-5-second time series from the BSP
//! phase schedule: within every superstep the run moves through compute →
//! disk → network → sync phases, and each phase lights up a characteristic
//! subset of the metrics (CPU during compute, disk rates during I/O,
//! NIC during shuffle, idle+sync tasks during barriers). Because the phase
//! *durations* come from the workload's demand profile, the pairwise
//! Pearson correlations over these series recover exactly the demand-driven
//! structure the paper calls "high-level similarities" — they survive the
//! framework transform even though raw utilizations do not.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::noise::run_rng;
use crate::perf::{ExecutionDemand, PhaseBreakdown, Simulator};
use crate::vmtype::VmType;
use rand::Rng;

/// Number of low-level metrics collected per sample.
pub const N_METRICS: usize = 20;

/// Names of the 20 low-level metrics, index-aligned with sample vectors.
pub const METRIC_NAMES: [&str; N_METRICS] = [
    "cpu_user",            // 0  CPU user rate [0,1]
    "cpu_system",          // 1  CPU system rate [0,1]
    "cpu_idle",            // 2  CPU idle rate [0,1]
    "ram_usage",           // 3  RAM usage rate [0,1]
    "buffer_usage",        // 4  buffer usage rate [0,1]
    "cache_usage",         // 5  page-cache usage rate [0,1]
    "disk_read_mbps",      // 6  disk read rate
    "disk_write_mbps",     // 7  disk write rate
    "net_send_mbps",       // 8  network send rate
    "net_recv_mbps",       // 9  network receive rate
    "net_drop_rate",       // 10 network drop rate [0,1]
    "tasks_compute",       // 11 tasks in computation step
    "tasks_comm",          // 12 tasks in communication step
    "tasks_sync",          // 13 tasks in synchronization step
    "data_to_cycles",      // 14 data size / CPU cycles ratio
    "data_to_iterations",  // 15 data size / iterations ratio
    "data_to_parallelism", // 16 data size / parallelism ratio
    "disk_util",           // 17 disk utilization [0,1]
    "page_faults",         // 18 page-fault rate
    "data_rate_mbps",      // 19 application data processing rate
];

/// One run's metric time series, sampled on a fixed period.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MetricsTrace {
    /// Seconds between consecutive samples (5 s unless the run is short).
    pub sample_period_s: f64,
    /// `samples[t][m]` is metric `m` at sample `t`.
    pub samples: Vec<[f64; N_METRICS]>,
}

impl MetricsTrace {
    /// Series of one metric across the run.
    pub fn series(&self, metric: usize) -> Vec<f64> {
        self.samples.iter().map(|s| s[metric]).collect()
    }

    /// Mean of one metric (average resource utilization, as the paper's
    /// Data Collector stores). Non-finite values — e.g. samples a fault
    /// plan corrupted to NaN — are masked out instead of poisoning the
    /// mean; all-masked series report 0.
    pub fn mean(&self, metric: usize) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for s in &self.samples {
            let v = s[metric];
            if v.is_finite() {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            return 0.0;
        }
        sum / n as f64
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Derived composite series used by the correlation analysis.
    fn cpu_busy(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s[0] + s[1]).collect()
    }
    fn disk_rw(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s[6] + s[7]).collect()
    }
    fn net_sr(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s[8] + s[9]).collect()
    }

    /// Compute the 10 correlation similarities of Table 1 from this trace
    /// with the paper's Pearson estimator.
    pub fn correlations(&self) -> Result<CorrelationVector, SimError> {
        self.correlations_with(CorrelationEstimator::Pearson)
    }

    /// Compute the correlation similarities with an explicit estimator
    /// (Spearman is the rank-robust ablation alternative).
    pub fn correlations_with(
        &self,
        estimator: CorrelationEstimator,
    ) -> Result<CorrelationVector, SimError> {
        if self.samples.len() < 3 {
            return Err(SimError::NoData(format!(
                "trace too short for correlation analysis ({} samples)",
                self.samples.len()
            )));
        }
        let p = |a: &[f64], b: &[f64]| -> f64 {
            // Pairwise deletion: mask any sample where either side is
            // non-finite (metric corruption leaves NaNs behind) so one
            // poisoned value degrades a single feature instead of NaN-ing
            // the whole vector. Too few clean pairs impute a neutral 0.
            let (xs, ys): (Vec<f64>, Vec<f64>) = a
                .iter()
                .zip(b)
                .filter(|(x, y)| x.is_finite() && y.is_finite())
                .map(|(x, y)| (*x, *y))
                .unzip();
            if xs.len() < 3 {
                return 0.0;
            }
            match estimator {
                CorrelationEstimator::Pearson => vesta_ml::stats::pearson(&xs, &ys).unwrap_or(0.0),
                CorrelationEstimator::Spearman => {
                    vesta_ml::stats::spearman(&xs, &ys).unwrap_or(0.0)
                }
            }
        };
        let cpu = self.cpu_busy();
        let ram = self.series(3);
        let buffer = self.series(4);
        let cache = self.series(5);
        let disk = self.disk_rw();
        let net = self.net_sr();
        let t_sync = self.series(13);
        let t_compute = self.series(11);
        let d_cycles = self.series(14);
        let d_iters = self.series(15);
        let d_par = self.series(16);
        let data_rate = self.series(19);
        Ok(CorrelationVector {
            values: [
                p(&cpu, &ram),             // cpu-to-memory
                p(&ram, &disk),            // memory-to-disk
                p(&disk, &net),            // disk-to-network
                p(&buffer, &cache),        // buffer-to-cache
                p(&cpu, &net),             // cpu-to-network
                p(&d_iters, &d_par),       // iteration-to-parallelism
                p(&data_rate, &t_compute), // data-to-computation
                p(&data_rate, &d_cycles),  // data-to-cycle
                p(&disk, &t_sync),         // disk-to-synchronization
                p(&net, &t_sync),          // network-to-synchronization
            ],
        })
    }
}

/// Which correlation statistic turns metric series into knowledge
/// features. The paper uses Pearson; Spearman is this reproduction's
/// rank-robust ablation alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CorrelationEstimator {
    /// Linear (Pearson) correlation — the paper's choice.
    #[default]
    Pearson,
    /// Rank (Spearman) correlation.
    Spearman,
}

/// Number of correlation-similarity features (Table 1).
pub const N_CORRELATIONS: usize = 10;

/// Names of the correlation similarities, index-aligned with
/// [`CorrelationVector::values`].
pub const CORRELATION_NAMES: [&str; N_CORRELATIONS] = [
    "CPU-to-memory",
    "memory-to-disk",
    "disk-to-network",
    "buffer-to-cache",
    "CPU-to-network",
    "iteration-to-parallelism",
    "data-to-computation",
    "data-to-cycle",
    "disk-to-synchronization",
    "network-to-synchronization",
];

/// The high-level knowledge features of Table 1: 10 Pearson correlations in
/// `[-1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationVector {
    /// Correlation values, index-aligned with [`CORRELATION_NAMES`].
    pub values: [f64; N_CORRELATIONS],
}

impl CorrelationVector {
    /// Borrow as a slice (ML feature input).
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Euclidean distance between two correlation vectors (the Fig. 10
    /// consistency axis uses this metric).
    pub fn distance(&self, other: &CorrelationVector) -> f64 {
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }

    /// Element-wise mean of several vectors; `None` when empty.
    pub fn mean_of(vectors: &[CorrelationVector]) -> Option<CorrelationVector> {
        if vectors.is_empty() {
            return None;
        }
        let mut acc = [0.0; N_CORRELATIONS];
        for v in vectors {
            for (a, x) in acc.iter_mut().zip(&v.values) {
                *a += x;
            }
        }
        for a in &mut acc {
            *a /= vectors.len() as f64;
        }
        Some(CorrelationVector { values: acc })
    }
}

/// Which BSP phase a wall-clock instant falls in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Startup,
    Compute,
    Disk,
    Network,
    Sync,
}

/// The metrics collector: samples a simulated run every 5 seconds.
#[derive(Debug, Clone)]
pub struct Collector {
    /// Nominal sampling period (the paper's 5 s).
    pub period_s: f64,
    /// Cap on stored samples (long runs are sampled coarser, matching a
    /// collector that aggregates into fixed-size windows).
    pub max_samples: usize,
    /// Floor on samples so short runs still yield usable series.
    pub min_samples: usize,
}

impl Default for Collector {
    fn default() -> Self {
        Collector {
            period_s: 5.0,
            max_samples: 720,
            min_samples: 40,
        }
    }
}

impl Collector {
    /// Generate the metric trace for run `run_idx` of `demand` on `vm`.
    ///
    /// The trace is deterministic given the simulator seed and run
    /// coordinates (noise stream 1, independent of the execution-time
    /// stream 0).
    pub fn collect(
        &self,
        sim: &Simulator,
        demand: &ExecutionDemand,
        vm: &VmType,
        nodes: u32,
        run_idx: u64,
    ) -> Result<MetricsTrace, SimError> {
        let phases = sim.expected_phases(demand, vm, nodes)?;
        let total = phases.total().max(1e-6);
        let mut n = (total / self.period_s).ceil() as usize;
        n = n.clamp(self.min_samples, self.max_samples);
        let period = total / n as f64;

        let mut rng = run_rng(
            sim.config().seed,
            demand.workload_id,
            vm.id as u64,
            run_idx,
            1,
        );
        let schedule = PhaseSchedule::new(demand, &phases);

        let usable_gb = vm.memory_gb * sim.config().usable_memory_frac;
        let pressure = (demand.working_set_gb / nodes as f64) / usable_gb.max(1e-9);
        let useful_cores = (vm.vcpus as f64 * nodes as f64)
            .min(demand.parallelism)
            .max(1.0);
        let core_util = (useful_cores / (vm.vcpus as f64 * nodes as f64)).min(1.0);

        let per_iter_disk = demand.disk_gb_per_iter
            + (pressure - 1.0).max(0.0) * usable_gb * demand.spill_penalty / nodes as f64;
        let disk_rate = if phases.disk_s > 0.0 {
            (per_iter_disk * demand.iterations as f64 * 1024.0) / phases.disk_s
        } else {
            0.0
        };
        let net_rate = if phases.network_s > 0.0 {
            (demand.shuffle_gb_per_iter * demand.iterations as f64 * 8.0 * 1000.0 / 8.0)
                / phases.network_s
        } else {
            0.0
        };
        let data_rate_overall = demand.input_gb * 1024.0 / total;

        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = (i as f64 + 0.5) * period;
            let phase = schedule.phase_at(t);
            let jitter = |rng: &mut rand::rngs::StdRng| 1.0 + 0.08 * (rng.gen::<f64>() - 0.5);

            let mut s = [0.0f64; N_METRICS];
            // Per-phase activity template.
            let (cpu_u, cpu_s, ram, buf, cache, dsk, net, tc, tm, ts, dr) = match phase {
                Phase::Startup => (
                    0.10, 0.12, 0.15, 0.05, 0.10, 0.05, 0.02, 0.05, 0.05, 0.05, 0.05,
                ),
                Phase::Compute => (
                    0.80 * core_util,
                    0.08,
                    pressure.min(1.0) * 0.9,
                    0.15,
                    0.35,
                    if pressure > 1.0 { 0.35 } else { 0.05 },
                    0.05,
                    1.0,
                    0.08,
                    0.05,
                    1.0,
                ),
                Phase::Disk => (
                    0.15,
                    0.18,
                    pressure.min(1.0) * 0.6,
                    0.75,
                    0.80,
                    1.0,
                    0.06,
                    0.15,
                    0.10,
                    0.08,
                    0.7,
                ),
                Phase::Network => (
                    0.12,
                    0.22,
                    pressure.min(1.0) * 0.5,
                    0.30,
                    0.45,
                    0.08,
                    1.0,
                    0.10,
                    1.0,
                    0.10,
                    0.6,
                ),
                Phase::Sync => (
                    0.06,
                    0.06,
                    pressure.min(1.0) * 0.4,
                    0.10,
                    0.25,
                    0.03,
                    0.10,
                    0.05,
                    0.12,
                    1.0,
                    0.08,
                ),
            };
            s[0] = (cpu_u * jitter(&mut rng)).clamp(0.0, 1.0);
            s[1] = (cpu_s * jitter(&mut rng)).clamp(0.0, 1.0);
            s[2] = (1.0 - s[0] - s[1]).max(0.0);
            s[3] = (ram * jitter(&mut rng)).clamp(0.0, 1.0);
            s[4] = (buf * jitter(&mut rng)).clamp(0.0, 1.0);
            s[5] = (cache * jitter(&mut rng)).clamp(0.0, 1.0);
            let disk_now = dsk * disk_rate.max(2.0);
            s[6] = 0.45 * disk_now * jitter(&mut rng);
            s[7] = 0.55 * disk_now * jitter(&mut rng);
            let net_now = net * net_rate.max(1.0);
            s[8] = 0.5 * net_now * jitter(&mut rng);
            s[9] = 0.5 * net_now * jitter(&mut rng);
            let net_cap_mbps = vm.network_gbps * 1000.0 / 8.0 * nodes as f64;
            s[10] = ((s[8] + s[9]) / net_cap_mbps - 0.9).max(0.0) * 0.1; // drops near saturation
            s[11] = tc * demand.parallelism * jitter(&mut rng);
            s[12] = tm * demand.parallelism * 0.6 * jitter(&mut rng);
            s[13] = ts * demand.sync_barriers_per_iter * useful_cores * jitter(&mut rng);
            let cycles_now = (s[0] + s[1]) * useful_cores * vm.cpu_speed;
            let dr_now = dr * data_rate_overall * jitter(&mut rng);
            s[14] = dr_now / cycles_now.max(1e-3);
            s[15] = dr_now / demand.iterations as f64;
            s[16] = dr_now / demand.parallelism;
            s[17] = ((s[6] + s[7]) / (vm.disk_mbps * nodes as f64)).min(1.0);
            s[18] = (pressure - 0.7).max(0.0) * 1000.0 * jitter(&mut rng);
            s[19] = dr_now;
            samples.push(s);
        }
        Ok(MetricsTrace {
            sample_period_s: period,
            samples,
        })
    }
}

/// Maps a wall-clock instant to its BSP phase, repeating the per-iteration
/// phase block after the startup window.
struct PhaseSchedule {
    startup_s: f64,
    iter_compute: f64,
    iter_disk: f64,
    iter_net: f64,
    iter_sync: f64,
}

impl PhaseSchedule {
    fn new(demand: &ExecutionDemand, phases: &PhaseBreakdown) -> Self {
        let iters = demand.iterations as f64;
        PhaseSchedule {
            startup_s: phases.startup_s,
            iter_compute: phases.compute_s / iters,
            iter_disk: phases.disk_s / iters,
            iter_net: phases.network_s / iters,
            iter_sync: phases.sync_s / iters,
        }
    }

    fn iter_len(&self) -> f64 {
        self.iter_compute + self.iter_disk + self.iter_net + self.iter_sync
    }

    fn phase_at(&self, t: f64) -> Phase {
        if t < self.startup_s {
            return Phase::Startup;
        }
        let len = self.iter_len();
        if len <= 0.0 {
            return Phase::Compute;
        }
        let within = (t - self.startup_s) % len;
        if within < self.iter_compute {
            Phase::Compute
        } else if within < self.iter_compute + self.iter_disk {
            Phase::Disk
        } else if within < self.iter_compute + self.iter_disk + self.iter_net {
            Phase::Network
        } else {
            Phase::Sync
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn demand() -> ExecutionDemand {
        ExecutionDemand {
            workload_id: 7,
            input_gb: 30.0,
            compute_units: 6000.0,
            working_set_gb: 10.0,
            shuffle_gb_per_iter: 3.0,
            disk_gb_per_iter: 5.0,
            iterations: 5,
            parallelism: 24.0,
            sync_barriers_per_iter: 2.0,
            startup_s: 15.0,
            spill_penalty: 2.0,
            memory_hard: false,
            variance_cv: 0.05,
        }
    }

    fn trace_for(vm_name: &str) -> MetricsTrace {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let vm = cat.by_name(vm_name).unwrap();
        Collector::default()
            .collect(&sim, &demand(), vm, 1, 0)
            .unwrap()
    }

    #[test]
    fn metric_names_cover_20() {
        assert_eq!(METRIC_NAMES.len(), N_METRICS);
        let mut names = METRIC_NAMES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_METRICS);
    }

    #[test]
    fn trace_has_bounded_sample_count() {
        let t = trace_for("m5.2xlarge");
        assert!(t.len() >= 40 && t.len() <= 720);
        assert!(!t.is_empty());
        assert!(t.sample_period_s > 0.0);
    }

    #[test]
    fn cpu_rates_form_a_partition() {
        let t = trace_for("m5.2xlarge");
        for s in &t.samples {
            assert!(s[0] >= 0.0 && s[0] <= 1.0);
            assert!(s[1] >= 0.0 && s[1] <= 1.0);
            assert!((s[0] + s[1] + s[2] - 1.0).abs() < 1e-9 || s[0] + s[1] >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn all_metrics_finite_nonnegative() {
        let t = trace_for("i3.2xlarge");
        for s in &t.samples {
            for (m, &v) in s.iter().enumerate() {
                assert!(v.is_finite() && v >= 0.0, "{} = {v}", METRIC_NAMES[m]);
            }
        }
    }

    #[test]
    fn trace_deterministic_per_run() {
        let a = trace_for("c5.2xlarge");
        let b = trace_for("c5.2xlarge");
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn correlations_are_bounded() {
        let t = trace_for("m5.2xlarge");
        let c = t.correlations().unwrap();
        for (i, v) in c.values.iter().enumerate() {
            assert!((-1.0..=1.0).contains(v), "{} = {v}", CORRELATION_NAMES[i]);
        }
    }

    #[test]
    fn spearman_estimator_is_bounded_and_differs() {
        let t = trace_for("m5.2xlarge");
        let pe = t.correlations().unwrap();
        let sp = t.correlations_with(CorrelationEstimator::Spearman).unwrap();
        for v in sp.values {
            assert!((-1.0..=1.0).contains(&v));
        }
        // Rank and linear estimates agree in sign on the strongly
        // structured pairs but are not numerically identical.
        assert!(
            pe.values[3] * sp.values[3] > 0.0,
            "buffer-to-cache sign flip"
        );
        assert!(pe.distance(&sp) > 1e-6);
    }

    #[test]
    fn correlations_reject_tiny_trace() {
        let t = MetricsTrace {
            sample_period_s: 5.0,
            samples: vec![[0.0; N_METRICS]; 2],
        };
        assert!(t.correlations().is_err());
    }

    #[test]
    fn buffer_cache_positively_correlated() {
        // buffer and cache rise together during disk phases by construction.
        let t = trace_for("m5.2xlarge");
        let c = t.correlations().unwrap();
        assert!(c.values[3] > 0.3, "buffer-to-cache = {}", c.values[3]);
    }

    #[test]
    fn similar_demand_similar_correlations_across_vm_types() {
        // The knowledge claim: correlation vectors are a property of the
        // workload, far more than of the VM it ran on.
        let a = trace_for("m5.2xlarge").correlations().unwrap();
        let b = trace_for("r5.4xlarge").correlations().unwrap();
        assert!(a.distance(&b) < 1.2, "distance = {}", a.distance(&b));
    }

    #[test]
    fn different_demand_different_correlations() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let vm = cat.by_name("m5.2xlarge").unwrap();
        let col = Collector::default();
        let base = col
            .collect(&sim, &demand(), vm, 1, 0)
            .unwrap()
            .correlations()
            .unwrap();
        let mut shuffle_heavy = demand();
        shuffle_heavy.workload_id = 99;
        shuffle_heavy.shuffle_gb_per_iter = 40.0;
        shuffle_heavy.compute_units = 500.0;
        shuffle_heavy.iterations = 20;
        let other = col
            .collect(&sim, &shuffle_heavy, vm, 1, 0)
            .unwrap()
            .correlations()
            .unwrap();
        assert!(
            base.distance(&other) > 0.15,
            "distance = {}",
            base.distance(&other)
        );
    }

    #[test]
    fn mean_and_series_align() {
        let t = trace_for("m5.2xlarge");
        let s = t.series(0);
        let m = t.mean(0);
        let manual = s.iter().sum::<f64>() / s.len() as f64;
        assert!((m - manual).abs() < 1e-12);
    }

    #[test]
    fn correlation_vector_distance_and_mean() {
        let a = CorrelationVector {
            values: [0.0; N_CORRELATIONS],
        };
        let mut ones = [0.0; N_CORRELATIONS];
        ones[0] = 3.0;
        ones[1] = 4.0;
        let b = CorrelationVector { values: ones };
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        let m = CorrelationVector::mean_of(&[a, b]).unwrap();
        assert!((m.values[0] - 1.5).abs() < 1e-12);
        assert!(CorrelationVector::mean_of(&[]).is_none());
    }

    #[test]
    fn corrupted_samples_are_masked_not_propagated() {
        let mut t = trace_for("m5.2xlarge");
        // Poison a scattering of values the way the fault injector does.
        for (i, s) in t.samples.iter_mut().enumerate() {
            if i % 7 == 0 {
                s[i % N_METRICS] = f64::NAN;
            }
        }
        let c = t.correlations().unwrap();
        for (i, v) in c.values.iter().enumerate() {
            assert!(
                v.is_finite() && (-1.0..=1.0).contains(v),
                "{} = {v}",
                CORRELATION_NAMES[i]
            );
        }
        for (m, name) in METRIC_NAMES.iter().enumerate() {
            assert!(t.mean(m).is_finite(), "mean of {name} not finite");
        }
    }

    #[test]
    fn all_corrupted_series_imputes_neutral_zero() {
        let mut t = trace_for("m5.2xlarge");
        for s in t.samples.iter_mut() {
            s[3] = f64::NAN; // ram_usage fully lost
        }
        let c = t.correlations().unwrap();
        assert_eq!(c.values[0], 0.0, "cpu-to-memory should impute 0");
        assert_eq!(c.values[1], 0.0, "memory-to-disk should impute 0");
        assert_eq!(t.mean(3), 0.0);
    }

    #[test]
    fn memory_pressure_shows_in_page_faults() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let col = Collector::default();
        let mut d = demand();
        d.working_set_gb = 60.0; // pressure on a 32 GB box
        let vm = cat.by_name("m5.2xlarge").unwrap();
        let stressed = col.collect(&sim, &d, vm, 1, 0).unwrap();
        let relaxed = col.collect(&sim, &demand(), vm, 1, 0).unwrap();
        assert!(stressed.mean(18) > relaxed.mean(18));
    }
}
