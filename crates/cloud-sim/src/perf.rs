//! The Bulk-Synchronous-Parallel execution-time model.
//!
//! The paper's closing observation (Section 7) is that its method covers
//! "a wide range of existing big data frameworks since they follow a basic
//! architecture design of *Bulk Synchronous Parallelism*". The simulator
//! leans on exactly that: a run is `startup + iterations × (compute ‖ …
//! disk + network + sync)` supersteps, evaluated against a VM type's
//! resource vector. Framework semantics (Hadoop's disk materialization,
//! Hive's planning overhead, Spark's memory pressure) are expressed
//! upstream, in `vesta-workloads`, as transforms on the [`ExecutionDemand`]
//! handed to this model.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::noise::{lognormal_factor, run_rng};
use crate::vmtype::VmType;

/// Framework-resolved resource demand of one workload run.
///
/// All quantities are *totals for the run* unless suffixed `_per_iter`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionDemand {
    /// Stable identity used for deterministic noise seeding.
    pub workload_id: u64,
    /// Input data size in GB (the benchmark "tiny…gigantic" scales).
    pub input_gb: f64,
    /// Total CPU work in normalized core-seconds (1 core at speed 1.0).
    pub compute_units: f64,
    /// Peak working set in GB that must be memory-resident to avoid spill.
    pub working_set_gb: f64,
    /// Data shuffled over the network per iteration, in GB.
    pub shuffle_gb_per_iter: f64,
    /// Data read+written to disk per iteration, in GB.
    pub disk_gb_per_iter: f64,
    /// BSP supersteps (MapReduce rounds, Spark stages, query operators…).
    pub iterations: u32,
    /// Maximum useful parallel tasks; extra cores are wasted.
    pub parallelism: f64,
    /// Synchronization barriers per iteration.
    pub sync_barriers_per_iter: f64,
    /// Framework/JVM startup cost in seconds.
    pub startup_s: f64,
    /// Multiplier on spilled bytes when the working set misses memory
    /// (sort-spill amplification).
    pub spill_penalty: f64,
    /// Hard memory semantics: an executor that overflows badly dies with
    /// OOM instead of spilling (Spark without a memory watcher).
    pub memory_hard: bool,
    /// Run-to-run coefficient of variation (cloud noise on top of the
    /// simulator's 5% base). Spark-svd++ carries ~0.4 here.
    pub variance_cv: f64,
}

impl ExecutionDemand {
    /// Validate ranges; every numeric field must be finite and non-negative,
    /// iterations and parallelism at least 1.
    pub fn validate(&self) -> Result<(), SimError> {
        let fields = [
            ("input_gb", self.input_gb),
            ("compute_units", self.compute_units),
            ("working_set_gb", self.working_set_gb),
            ("shuffle_gb_per_iter", self.shuffle_gb_per_iter),
            ("disk_gb_per_iter", self.disk_gb_per_iter),
            ("sync_barriers_per_iter", self.sync_barriers_per_iter),
            ("startup_s", self.startup_s),
            ("spill_penalty", self.spill_penalty),
            ("variance_cv", self.variance_cv),
        ];
        for (name, v) in fields {
            if !v.is_finite() || v < 0.0 {
                return Err(SimError::InvalidDemand(format!("{name} = {v}")));
            }
        }
        if self.iterations == 0 {
            return Err(SimError::InvalidDemand("iterations = 0".into()));
        }
        if !self.parallelism.is_finite() || self.parallelism < 1.0 {
            return Err(SimError::InvalidDemand(format!(
                "parallelism = {}",
                self.parallelism
            )));
        }
        Ok(())
    }
}

/// Per-phase time breakdown of a run (seconds, whole run).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Startup / scheduling cost.
    pub startup_s: f64,
    /// CPU-bound compute time.
    pub compute_s: f64,
    /// Disk I/O time (including spill amplification).
    pub disk_s: f64,
    /// Network shuffle time.
    pub network_s: f64,
    /// Barrier synchronization time.
    pub sync_s: f64,
}

impl PhaseBreakdown {
    /// Total wall time.
    pub fn total(&self) -> f64 {
        self.startup_s + self.compute_s + self.disk_s + self.network_s + self.sync_s
    }
}

/// Outcome of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Wall-clock execution time in seconds (noise applied).
    pub execution_time_s: f64,
    /// Noise-free expected time (the model's mean behaviour).
    pub expected_time_s: f64,
    /// Phase breakdown of the expected time.
    pub phases: PhaseBreakdown,
    /// Budget for the run on this VM type, in USD.
    pub cost_usd: f64,
    /// Memory pressure `working_set / usable_memory` (per node).
    pub memory_pressure: f64,
    /// Whether the run spilled to disk.
    pub spilled: bool,
}

/// Simulation knobs shared by an experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Experiment-wide seed for the deterministic noise streams.
    pub seed: u64,
    /// Baseline cloud-variability CV added to every run.
    pub base_cv: f64,
    /// Fraction of VM memory usable by the workload (OS / daemons take the
    /// rest).
    pub usable_memory_frac: f64,
    /// Serial (non-parallelizable) fraction of the compute work (Amdahl).
    pub serial_fraction: f64,
    /// Seconds of coordination cost per barrier, plus a per-task term.
    pub sync_base_s: f64,
    /// Per-parallel-task barrier cost in seconds.
    pub sync_per_task_s: f64,
    /// Per-wave scheduling/straggler overhead: when a workload has more
    /// parallel tasks than cores, tasks run in waves and each extra wave
    /// adds this fraction of overhead to the compute and disk phases.
    /// This is what keeps tiny instances from being free lunch on the
    /// budget objective.
    pub wave_overhead: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            base_cv: 0.05,
            usable_memory_frac: 0.85,
            serial_fraction: 0.04,
            sync_base_s: 0.3,
            sync_per_task_s: 0.02,
            wave_overhead: 0.03,
        }
    }
}

/// The simulator: executes [`ExecutionDemand`]s against [`VmType`]s.
///
/// ```
/// use vesta_cloud_sim::{Catalog, ExecutionDemand, Simulator};
///
/// let catalog = Catalog::aws_ec2();
/// let sim = Simulator::default();
/// let demand = ExecutionDemand {
///     workload_id: 1, input_gb: 30.0, compute_units: 2000.0,
///     working_set_gb: 18.0, shuffle_gb_per_iter: 24.0,
///     disk_gb_per_iter: 90.0, iterations: 2, parallelism: 120.0,
///     sync_barriers_per_iter: 2.0, startup_s: 37.0, spill_penalty: 1.6,
///     memory_hard: false, variance_cv: 0.05,
/// };
/// let vm = catalog.by_name("i3en.4xlarge").unwrap();
/// let t = sim.expected_time(&demand, vm, 1).unwrap();
/// assert!(t > 0.0 && t.is_finite());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimConfig,
}

impl Simulator {
    /// Create a simulator with the given config.
    pub fn new(config: SimConfig) -> Self {
        Simulator { config }
    }

    /// Borrow the config.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Noise-free expected phase breakdown on a cluster of `nodes` VMs of
    /// the given type.
    pub fn expected_phases(
        &self,
        demand: &ExecutionDemand,
        vm: &VmType,
        nodes: u32,
    ) -> Result<PhaseBreakdown, SimError> {
        demand.validate()?;
        if nodes == 0 {
            return Err(SimError::InvalidDemand("cluster of 0 nodes".into()));
        }
        let nodes_f = nodes as f64;
        let cfg = &self.config;
        let iters = demand.iterations as f64;

        // ---- compute -----------------------------------------------------
        let total_cores = vm.vcpus as f64 * nodes_f;
        let useful_cores = total_cores.min(demand.parallelism).max(1.0);
        // A run whose compute phase dominates keeps the CPU pegged, so
        // burstable families fall back to their sustained speed.
        let speed_burst = vm.cpu_speed;
        let speed_sustained = vm.sustained_cpu_speed();
        // Two-pass: estimate with full speed, then re-derate if compute-heavy.
        let serial = cfg.serial_fraction;
        // Tasks beyond the core count run in waves; each extra wave costs
        // scheduling and straggler overhead.
        let waves = (demand.parallelism / total_cores).ceil().max(1.0);
        let wave_factor = 1.0 + cfg.wave_overhead * (waves - 1.0);
        let compute_at = |speed: f64| {
            demand.compute_units
                * ((1.0 - serial) / (useful_cores * speed) + serial / speed)
                * wave_factor
        };
        let mut compute_s = compute_at(speed_burst);

        // ---- memory ------------------------------------------------------
        let usable_gb = vm.memory_gb * cfg.usable_memory_frac;
        let ws_per_node = demand.working_set_gb / nodes_f;
        let memory_pressure = if usable_gb > 0.0 {
            ws_per_node / usable_gb
        } else {
            f64::INFINITY
        };
        let mut spill_gb_per_iter = 0.0;
        let mut gc_factor = 1.0;
        if memory_pressure > 1.0 {
            if demand.memory_hard && memory_pressure > 1.5 {
                return Err(SimError::OutOfMemory {
                    required_gb: ws_per_node,
                    available_gb: usable_gb,
                });
            }
            let overflow_gb = (ws_per_node - usable_gb) * nodes_f;
            spill_gb_per_iter = overflow_gb * demand.spill_penalty;
            if demand.memory_hard {
                // Spark under pressure: GC thrash + recomputation of evicted
                // partitions rather than a clean sort-spill.
                gc_factor = 1.0 + 1.8 * (memory_pressure - 1.0);
            }
        }

        // ---- disk --------------------------------------------------------
        let disk_gb = (demand.disk_gb_per_iter + spill_gb_per_iter) * iters;
        let disk_s = disk_gb * 1024.0 / (vm.disk_mbps * nodes_f) * wave_factor;

        // ---- network -----------------------------------------------------
        // Shuffle crosses the NIC; with one node it is remote-storage traffic.
        let net_gb = demand.shuffle_gb_per_iter * iters;
        let net_s = net_gb * 8.0 / (vm.network_gbps * nodes_f);

        // ---- synchronization ----------------------------------------------
        let barriers = demand.sync_barriers_per_iter * iters;
        let sync_s = barriers * (cfg.sync_base_s + cfg.sync_per_task_s * useful_cores);

        // ---- burstable derating -------------------------------------------
        if vm.burstable {
            let pre_total = compute_s + disk_s + net_s + sync_s + demand.startup_s;
            if pre_total > 0.0 && compute_s / pre_total > 0.3 {
                compute_s = compute_at(speed_sustained);
            }
        }
        compute_s *= gc_factor;

        Ok(PhaseBreakdown {
            startup_s: demand.startup_s,
            compute_s,
            disk_s,
            network_s: net_s,
            sync_s,
        })
    }

    /// Noise-free expected execution time in seconds.
    pub fn expected_time(
        &self,
        demand: &ExecutionDemand,
        vm: &VmType,
        nodes: u32,
    ) -> Result<f64, SimError> {
        Ok(self.expected_phases(demand, vm, nodes)?.total())
    }

    /// Execute run number `run_idx` (deterministic noise) on one VM.
    pub fn run(
        &self,
        demand: &ExecutionDemand,
        vm: &VmType,
        nodes: u32,
        run_idx: u64,
    ) -> Result<RunResult, SimError> {
        let phases = self.expected_phases(demand, vm, nodes)?;
        let expected = phases.total();
        let cv = (self.config.base_cv * self.config.base_cv
            + demand.variance_cv * demand.variance_cv)
            .sqrt();
        let mut rng = run_rng(
            self.config.seed,
            demand.workload_id,
            vm.id as u64,
            run_idx,
            0,
        );
        let factor = lognormal_factor(&mut rng, cv);
        let time = expected * factor;
        let usable_gb = vm.memory_gb * self.config.usable_memory_frac;
        let ws_per_node = demand.working_set_gb / nodes as f64;
        let pressure = if usable_gb > 0.0 {
            ws_per_node / usable_gb
        } else {
            f64::INFINITY
        };
        Ok(RunResult {
            execution_time_s: time,
            expected_time_s: expected,
            cost_usd: vm.cost_for(time) * nodes as f64,
            phases,
            memory_pressure: pressure,
            spilled: pressure > 1.0,
        })
    }
}

/// What "best" means when ranking VM types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize execution time (Fig. 12).
    ExecutionTime,
    /// Minimize budget = price × time (Figs. 1 and 13).
    Budget,
    /// Minimize per-superstep latency `(total − startup) / iterations` —
    /// the metric Section 7 names for latency-sensitive (streaming)
    /// workloads, where each iteration is a micro-batch.
    BatchLatency,
    /// Minimize inverse throughput, seconds per GB of input processed —
    /// Section 7's throughput variable, expressed as a minimization.
    TimePerGb,
}

impl Objective {
    /// Score one noise-free run under this objective (lower is better).
    pub fn score(
        self,
        phases: &PhaseBreakdown,
        demand: &ExecutionDemand,
        vm: &VmType,
        nodes: u32,
    ) -> f64 {
        let total = phases.total();
        match self {
            Objective::ExecutionTime => total,
            Objective::Budget => vm.cost_for(total) * nodes as f64,
            Objective::BatchLatency => {
                (total - phases.startup_s).max(0.0) / demand.iterations.max(1) as f64
            }
            Objective::TimePerGb => total / demand.input_gb.max(1e-9),
        }
    }
}

/// Brute-force ground truth: evaluate `demand` on every VM type and return
/// `(vm_id, score)` pairs sorted best-first. OOM-failing types sort last
/// with infinite score. This is the paper's "ground truth best results by
/// exhaustively running workloads on 120 VM types".
pub fn exhaustive_ranking(
    sim: &Simulator,
    demand: &ExecutionDemand,
    vms: &[VmType],
    nodes: u32,
    objective: Objective,
) -> Vec<(usize, f64)> {
    use rayon::prelude::*;
    let mut scored: Vec<(usize, f64)> = vms
        .par_iter()
        .map(|vm| {
            let score = match sim.expected_phases(demand, vm, nodes) {
                Ok(phases) => objective.score(&phases, demand, vm, nodes),
                Err(_) => f64::INFINITY,
            };
            (vm.id, score)
        })
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    scored
}

/// The single best VM id under the objective (ties broken by id order).
pub fn best_vm(
    sim: &Simulator,
    demand: &ExecutionDemand,
    vms: &[VmType],
    nodes: u32,
    objective: Objective,
) -> Result<usize, SimError> {
    exhaustive_ranking(sim, demand, vms, nodes, objective)
        .first()
        .filter(|(_, s)| s.is_finite())
        .map(|(id, _)| *id)
        .ok_or_else(|| SimError::InvalidDemand("no VM type can run this demand".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn demand() -> ExecutionDemand {
        ExecutionDemand {
            workload_id: 1,
            input_gb: 30.0,
            compute_units: 4000.0,
            working_set_gb: 12.0,
            shuffle_gb_per_iter: 2.0,
            disk_gb_per_iter: 4.0,
            iterations: 4,
            parallelism: 32.0,
            sync_barriers_per_iter: 2.0,
            startup_s: 20.0,
            spill_penalty: 2.0,
            memory_hard: false,
            variance_cv: 0.05,
        }
    }

    #[test]
    fn validate_catches_bad_fields() {
        let mut d = demand();
        d.iterations = 0;
        assert!(d.validate().is_err());
        let mut d = demand();
        d.parallelism = 0.5;
        assert!(d.validate().is_err());
        let mut d = demand();
        d.compute_units = -1.0;
        assert!(d.validate().is_err());
        let mut d = demand();
        d.input_gb = f64::NAN;
        assert!(d.validate().is_err());
        assert!(demand().validate().is_ok());
    }

    #[test]
    fn more_cores_never_slower_compute() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let d = demand();
        let small = cat.by_name("m5.large").unwrap();
        let big = cat.by_name("m5.8xlarge").unwrap();
        let ps = sim.expected_phases(&d, small, 1).unwrap();
        let pb = sim.expected_phases(&d, big, 1).unwrap();
        assert!(pb.compute_s <= ps.compute_s);
    }

    #[test]
    fn parallelism_caps_useful_cores() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.parallelism = 2.0; // only 2 useful tasks
        let a = cat.by_name("m5.xlarge").unwrap(); // 4 cores
        let b = cat.by_name("m5.8xlarge").unwrap(); // 32 cores
        let ta = sim.expected_phases(&d, a, 1).unwrap().compute_s;
        let tb = sim.expected_phases(&d, b, 1).unwrap().compute_s;
        assert!((ta - tb).abs() / ta < 1e-9, "extra cores must not help");
    }

    #[test]
    fn memory_pressure_triggers_spill_on_soft_semantics() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.working_set_gb = 100.0; // way above an m5.large's 8 GB
        let vm = cat.by_name("m5.large").unwrap();
        let fits = cat.by_name("r5.8xlarge").unwrap();
        let spill = sim.run(&d, vm, 1, 0).unwrap();
        let clean = sim.run(&d, fits, 1, 0).unwrap();
        assert!(spill.spilled);
        assert!(!clean.spilled);
        assert!(spill.phases.disk_s > clean.phases.disk_s);
    }

    #[test]
    fn hard_memory_semantics_oom() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.memory_hard = true;
        d.working_set_gb = 100.0;
        let vm = cat.by_name("m5.large").unwrap();
        assert!(matches!(
            sim.expected_phases(&d, vm, 1),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn hard_memory_mild_pressure_pays_gc_not_oom() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let vm = cat.by_name("m5.2xlarge").unwrap(); // 32 GB, ~27 usable
        let mut soft = demand();
        soft.working_set_gb = 30.0; // pressure ~1.1
        let mut hard = soft.clone();
        hard.memory_hard = true;
        let ts = sim.expected_phases(&soft, vm, 1).unwrap();
        let th = sim.expected_phases(&hard, vm, 1).unwrap();
        assert!(th.compute_s > ts.compute_s, "GC factor should slow compute");
    }

    #[test]
    fn network_heavy_prefers_n_families() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.shuffle_gb_per_iter = 50.0;
        let m5 = cat.by_name("m5.2xlarge").unwrap();
        let m5n = cat.by_name("m5n.2xlarge").unwrap();
        let t_plain = sim.expected_time(&d, m5, 1).unwrap();
        let t_net = sim.expected_time(&d, m5n, 1).unwrap();
        assert!(t_net < t_plain);
    }

    #[test]
    fn disk_heavy_prefers_storage_optimized() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.disk_gb_per_iter = 60.0;
        let m5 = cat.by_name("m5.2xlarge").unwrap();
        let i3 = cat.by_name("i3.2xlarge").unwrap();
        assert!(sim.expected_time(&d, i3, 1).unwrap() < sim.expected_time(&d, m5, 1).unwrap());
    }

    #[test]
    fn burstable_derated_when_compute_bound() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.compute_units = 50_000.0; // heavily compute-bound
        let t3 = cat.by_name("t3.2xlarge").unwrap();
        let m5 = cat.by_name("m5.2xlarge").unwrap(); // same core count
        let tt = sim.expected_phases(&d, t3, 1).unwrap().compute_s;
        let tm = sim.expected_phases(&d, m5, 1).unwrap().compute_s;
        assert!(
            tt > 1.5 * tm,
            "t3 sustained speed should hurt: {tt} vs {tm}"
        );
    }

    #[test]
    fn run_noise_is_deterministic_and_bounded() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let d = demand();
        let vm = cat.by_name("c5.2xlarge").unwrap();
        let a = sim.run(&d, vm, 1, 3).unwrap();
        let b = sim.run(&d, vm, 1, 3).unwrap();
        assert_eq!(a.execution_time_s, b.execution_time_s);
        let c = sim.run(&d, vm, 1, 4).unwrap();
        assert_ne!(a.execution_time_s, c.execution_time_s);
        // noise around the expectation
        assert!((a.execution_time_s / a.expected_time_s - 1.0).abs() < 0.5);
    }

    #[test]
    fn cost_is_price_times_time() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let d = demand();
        let vm = cat.by_name("c5.2xlarge").unwrap();
        let r = sim.run(&d, vm, 1, 0).unwrap();
        let want = vm.price_per_hour * r.execution_time_s / 3600.0;
        assert!((r.cost_usd - want).abs() < 1e-9);
    }

    #[test]
    fn more_nodes_reduce_time_for_parallel_work() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.parallelism = 256.0;
        let vm = cat.by_name("m5.2xlarge").unwrap();
        let one = sim.expected_time(&d, vm, 1).unwrap();
        let four = sim.expected_time(&d, vm, 4).unwrap();
        assert!(four < one);
    }

    #[test]
    fn exhaustive_ranking_is_sorted_and_complete() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let d = demand();
        let ranking = exhaustive_ranking(&sim, &d, cat.all(), 1, Objective::ExecutionTime);
        assert_eq!(ranking.len(), 120);
        for w in ranking.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn best_vm_objectives_differ() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.compute_units = 20_000.0;
        let fastest = best_vm(&sim, &d, cat.all(), 1, Objective::ExecutionTime).unwrap();
        let cheapest = best_vm(&sim, &d, cat.all(), 1, Objective::Budget).unwrap();
        // The absolute fastest box is rarely the cheapest one.
        let tf = cat.get(fastest).unwrap();
        let tc = cat.get(cheapest).unwrap();
        assert!(tc.price_per_hour <= tf.price_per_hour);
    }

    #[test]
    fn batch_latency_excludes_startup() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.startup_s = 1000.0; // enormous startup
        d.iterations = 10;
        let vm = cat.by_name("m5.2xlarge").unwrap();
        let phases = sim.expected_phases(&d, vm, 1).unwrap();
        let latency = Objective::BatchLatency.score(&phases, &d, vm, 1);
        let time = Objective::ExecutionTime.score(&phases, &d, vm, 1);
        // Startup dominates total time but not per-batch latency.
        assert!(latency < time / 10.0);
        assert!((latency - (phases.total() - 1000.0) / 10.0).abs() < 1e-9);
    }

    #[test]
    fn time_per_gb_normalizes_by_input() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let d = demand();
        let vm = cat.by_name("m5.2xlarge").unwrap();
        let phases = sim.expected_phases(&d, vm, 1).unwrap();
        let per_gb = Objective::TimePerGb.score(&phases, &d, vm, 1);
        assert!((per_gb - phases.total() / d.input_gb).abs() < 1e-9);
    }

    #[test]
    fn latency_objective_reorders_startup_heavy_rankings() {
        // Two demands identical except startup: under ExecutionTime the
        // cheap-startup one wins on any VM; under BatchLatency they tie.
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let vm = cat.by_name("c5.2xlarge").unwrap();
        let mut slow_start = demand();
        slow_start.startup_s = 500.0;
        let fast_start = demand();
        let ps = sim.expected_phases(&slow_start, vm, 1).unwrap();
        let pf = sim.expected_phases(&fast_start, vm, 1).unwrap();
        assert!(
            Objective::ExecutionTime.score(&ps, &slow_start, vm, 1)
                > Objective::ExecutionTime.score(&pf, &fast_start, vm, 1)
        );
        let ls = Objective::BatchLatency.score(&ps, &slow_start, vm, 1);
        let lf = Objective::BatchLatency.score(&pf, &fast_start, vm, 1);
        assert!((ls - lf).abs() < 1e-9);
    }

    #[test]
    fn exhaustive_ranking_supports_all_objectives() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let d = demand();
        for obj in [
            Objective::ExecutionTime,
            Objective::Budget,
            Objective::BatchLatency,
            Objective::TimePerGb,
        ] {
            let r = exhaustive_ranking(&sim, &d, cat.all(), 1, obj);
            assert_eq!(r.len(), 120);
            for w in r.windows(2) {
                assert!(w[0].1 <= w[1].1, "{obj:?} not sorted");
            }
        }
    }

    #[test]
    fn oom_everywhere_yields_error() {
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let mut d = demand();
        d.memory_hard = true;
        d.working_set_gb = 1e7; // no VM holds 10 PB
        assert!(best_vm(&sim, &d, cat.all(), 1, Objective::ExecutionTime).is_err());
    }
}
