//! VM type identities and resource specifications.
//!
//! Mirrors the Amazon EC2 hierarchy the paper relies on (Section 5.1):
//! *VM Category* → *VM Family* → *VM type*. A [`VmType`] carries the
//! resource vector the selector reasons about — vCPUs, memory, disk
//! bandwidth, network bandwidth — plus the hourly price used for the budget
//! experiments (Figs. 1 and 13).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Typed catalog index of a VM type.
///
/// The online pipeline juggles many `usize`s — catalog indexes, latent
/// dimensions, run indexes, node counts — and a swapped pair compiles
/// silently. `VmTypeId` makes "which VM type" its own type: [`Prediction`],
/// the ground-truth oracles and explain output all speak `VmTypeId`, while
/// `From<usize>` / [`VmTypeId::index`] keep the boundary with raw matrix
/// rows explicit and cheap (it is `#[serde(transparent)]`, so snapshots and
/// JSON artifacts are unchanged).
///
/// [`Prediction`]: https://docs.rs/vesta-core
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VmTypeId(usize);

impl VmTypeId {
    /// Wrap a raw catalog index.
    pub const fn new(index: usize) -> Self {
        VmTypeId(index)
    }

    /// The raw 0-based catalog index (row in U/V matrices, key in stores).
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for VmTypeId {
    fn from(index: usize) -> Self {
        VmTypeId(index)
    }
}

impl From<VmTypeId> for usize {
    fn from(id: VmTypeId) -> usize {
        id.0
    }
}

impl From<&VmTypeId> for VmTypeId {
    fn from(id: &VmTypeId) -> Self {
        *id
    }
}

impl fmt::Display for VmTypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm#{}", self.0)
    }
}

/// Top-level EC2 category (Table 4, column 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmCategory {
    /// Balanced CPU:memory (T*, M*).
    GeneralPurpose,
    /// High CPU:memory ratio (C*).
    ComputeOptimized,
    /// High memory:CPU ratio (R*, X1, z1d).
    MemoryOptimized,
    /// GPU instances (G*).
    AcceleratedComputing,
    /// NVMe-heavy instances (I3, I3en).
    StorageOptimized,
}

impl fmt::Display for VmCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VmCategory::GeneralPurpose => "General Purpose",
            VmCategory::ComputeOptimized => "Compute Optimized",
            VmCategory::MemoryOptimized => "Memory Optimized",
            VmCategory::AcceleratedComputing => "Accelerated Computing",
            VmCategory::StorageOptimized => "Storage Optimized",
        };
        f.write_str(s)
    }
}

/// Instance size within a family. EC2 sizes scale resources roughly
/// linearly: `large` = 2 vCPUs, `xlarge` = 4, doubling upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VmSize {
    Micro,
    Small,
    Medium,
    Large,
    XLarge,
    X2Large,
    X4Large,
    X8Large,
    X12Large,
    X16Large,
}

impl VmSize {
    /// Multiplier relative to `large` (2 vCPUs).
    pub fn scale(self) -> f64 {
        match self {
            VmSize::Micro => 0.25,
            VmSize::Small => 0.5,
            VmSize::Medium => 1.0, // T-family medium has 2 vCPUs like large
            VmSize::Large => 1.0,
            VmSize::XLarge => 2.0,
            VmSize::X2Large => 4.0,
            VmSize::X4Large => 8.0,
            VmSize::X8Large => 16.0,
            VmSize::X12Large => 24.0,
            VmSize::X16Large => 32.0,
        }
    }

    /// EC2 suffix string.
    pub fn suffix(self) -> &'static str {
        match self {
            VmSize::Micro => "micro",
            VmSize::Small => "small",
            VmSize::Medium => "medium",
            VmSize::Large => "large",
            VmSize::XLarge => "xlarge",
            VmSize::X2Large => "2xlarge",
            VmSize::X4Large => "4xlarge",
            VmSize::X8Large => "8xlarge",
            VmSize::X12Large => "12xlarge",
            VmSize::X16Large => "16xlarge",
        }
    }
}

impl fmt::Display for VmSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Family-level traits shared by every size of a family.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FamilySpec {
    /// Family name as EC2 spells it (e.g. "m5", "c5n").
    pub name: &'static str,
    /// Category this family belongs to.
    pub category: VmCategory,
    /// Memory per vCPU in GB.
    pub mem_per_vcpu_gb: f64,
    /// Relative single-core speed (M5 ≡ 1.0; C-families and z1d are
    /// faster, burstable T-families slower when sustained).
    pub cpu_speed: f64,
    /// Disk bandwidth in MB/s for a `large` instance (scales with size).
    pub disk_mbps_large: f64,
    /// Network bandwidth in Gbit/s for a `large` instance (scales with
    /// size, capped at the family's `network_cap_gbps`).
    pub network_gbps_large: f64,
    /// Upper bound on network bandwidth for the family.
    pub network_cap_gbps: f64,
    /// On-demand price per vCPU-hour in USD (approximate us-east-1
    /// on-demand pricing; see DESIGN.md for the substitution note).
    pub price_per_vcpu_hour: f64,
    /// Burstable CPU (T-families): sustained throughput is derated.
    pub burstable: bool,
    /// Carries a GPU the big-data workloads cannot use (priced in, wasted).
    pub has_gpu: bool,
    /// Local NVMe storage (I3/I3en/C5d/z1d): very high disk bandwidth.
    pub local_nvme: bool,
}

/// One concrete VM type (e.g. `m5.2xlarge`) with resolved resources.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VmType {
    /// Stable index in the catalog (0-based).
    pub id: usize,
    /// Full EC2-style name, e.g. `"c5.4xlarge"`.
    pub name: String,
    /// Family name, e.g. `"c5"`.
    pub family: String,
    /// Category of the family.
    pub category: VmCategory,
    /// Size step.
    pub size: VmSize,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Memory in GB.
    pub memory_gb: f64,
    /// Disk bandwidth in MB/s.
    pub disk_mbps: f64,
    /// Network bandwidth in Gbit/s.
    pub network_gbps: f64,
    /// Relative single-core speed.
    pub cpu_speed: f64,
    /// On-demand price in USD per hour.
    pub price_per_hour: f64,
    /// Burstable CPU semantics.
    pub burstable: bool,
    /// GPU present (priced, unused by these workloads).
    pub has_gpu: bool,
    /// Local NVMe storage.
    pub local_nvme: bool,
}

impl VmType {
    /// Construct a concrete type from a family spec and a size.
    pub fn from_family(id: usize, spec: &FamilySpec, size: VmSize) -> VmType {
        let scale = size.scale();
        // T-family sizing is irregular: micro..medium all have 2 vCPUs but
        // scale memory. Model that with a vCPU floor of 2 for burstables.
        let raw_vcpus = (2.0 * scale).round().max(1.0);
        let vcpus = if spec.burstable {
            raw_vcpus.max(2.0)
        } else {
            raw_vcpus
        } as u32;
        let memory_gb = spec.mem_per_vcpu_gb * 2.0 * scale;
        let disk_mbps = spec.disk_mbps_large * scale.max(0.5);
        let network_gbps = (spec.network_gbps_large * scale.max(0.5)).min(spec.network_cap_gbps);
        // Price follows nominal resource scale, not the burstable vCPU floor;
        // GPU families pay a fixed accelerator premium per size step.
        let mut price = spec.price_per_vcpu_hour * 2.0 * scale;
        if spec.has_gpu {
            price += 0.35 * scale; // accelerator surcharge
        }
        VmType {
            id,
            name: format!("{}.{}", spec.name, size.suffix()),
            family: spec.name.to_string(),
            category: spec.category,
            size,
            vcpus,
            memory_gb,
            disk_mbps,
            network_gbps,
            cpu_speed: spec.cpu_speed,
            price_per_hour: price,
            burstable: spec.burstable,
            has_gpu: spec.has_gpu,
            local_nvme: spec.local_nvme,
        }
    }

    /// Typed catalog id of this VM type.
    pub fn type_id(&self) -> VmTypeId {
        VmTypeId::new(self.id)
    }

    /// Memory-to-CPU ratio in GB per vCPU; the "8G8U / 16G16U" shorthand of
    /// Fig. 1 is about this ratio.
    pub fn mem_per_vcpu(&self) -> f64 {
        self.memory_gb / self.vcpus as f64
    }

    /// Sustained CPU speed: burstable families are derated when a workload
    /// keeps the CPU busy for longer than their credit budget allows.
    pub fn sustained_cpu_speed(&self) -> f64 {
        if self.burstable {
            self.cpu_speed * 0.55
        } else {
            self.cpu_speed
        }
    }

    /// Resource vector used as K-Means / fingerprint features:
    /// `[vcpus, memory_gb, disk_mbps, network_gbps, cpu_speed, price]`,
    /// log-scaled where spans are multiplicative.
    pub fn feature_vector(&self) -> Vec<f64> {
        vec![
            (self.vcpus as f64).ln(),
            self.memory_gb.ln(),
            self.disk_mbps.ln(),
            self.network_gbps.ln(),
            self.cpu_speed,
            self.price_per_hour.ln(),
        ]
    }

    /// Cost of running for `seconds` on this type, in USD.
    pub fn cost_for(&self, seconds: f64) -> f64 {
        self.price_per_hour * seconds / 3600.0
    }
}

impl fmt::Display for VmType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} vCPU, {:.0} GB, {:.0} MB/s disk, {:.1} Gbps, ${:.3}/h)",
            self.name,
            self.vcpus,
            self.memory_gb,
            self.disk_mbps,
            self.network_gbps,
            self.price_per_hour
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m5_spec() -> FamilySpec {
        FamilySpec {
            name: "m5",
            category: VmCategory::GeneralPurpose,
            mem_per_vcpu_gb: 4.0,
            cpu_speed: 1.0,
            disk_mbps_large: 60.0,
            network_gbps_large: 0.75,
            network_cap_gbps: 10.0,
            price_per_vcpu_hour: 0.048,
            burstable: false,
            has_gpu: false,
            local_nvme: false,
        }
    }

    #[test]
    fn size_scale_doubles_up() {
        assert_eq!(VmSize::Large.scale(), 1.0);
        assert_eq!(VmSize::XLarge.scale(), 2.0);
        assert_eq!(VmSize::X8Large.scale(), 16.0);
        assert!(VmSize::Micro.scale() < VmSize::Small.scale());
    }

    #[test]
    fn from_family_scales_resources() {
        let spec = m5_spec();
        let large = VmType::from_family(0, &spec, VmSize::Large);
        let x4 = VmType::from_family(1, &spec, VmSize::X4Large);
        assert_eq!(large.vcpus, 2);
        assert_eq!(x4.vcpus, 16);
        assert!((large.memory_gb - 8.0).abs() < 1e-9);
        assert!((x4.memory_gb - 64.0).abs() < 1e-9);
        assert!((x4.price_per_hour / large.price_per_hour - 8.0).abs() < 1e-9);
        assert_eq!(large.name, "m5.large");
        assert_eq!(x4.name, "m5.4xlarge");
    }

    #[test]
    fn network_is_capped() {
        let mut spec = m5_spec();
        spec.network_cap_gbps = 10.0;
        let huge = VmType::from_family(0, &spec, VmSize::X16Large);
        assert!(huge.network_gbps <= 10.0);
    }

    #[test]
    fn burstable_has_vcpu_floor_and_derating() {
        let spec = FamilySpec {
            name: "t3",
            burstable: true,
            ..m5_spec()
        };
        let small = VmType::from_family(0, &spec, VmSize::Small);
        assert_eq!(small.vcpus, 2);
        assert!(small.sustained_cpu_speed() < small.cpu_speed);
        let non_burst = VmType::from_family(1, &m5_spec(), VmSize::Large);
        assert_eq!(non_burst.sustained_cpu_speed(), non_burst.cpu_speed);
    }

    #[test]
    fn gpu_surcharge_applies() {
        let gpu = FamilySpec {
            name: "g4",
            has_gpu: true,
            ..m5_spec()
        };
        let with = VmType::from_family(0, &gpu, VmSize::XLarge);
        let without = VmType::from_family(1, &m5_spec(), VmSize::XLarge);
        assert!(with.price_per_hour > without.price_per_hour);
    }

    #[test]
    fn mem_per_vcpu_ratio() {
        let vm = VmType::from_family(0, &m5_spec(), VmSize::X2Large);
        assert!((vm.mem_per_vcpu() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn feature_vector_is_finite_and_sized() {
        let vm = VmType::from_family(0, &m5_spec(), VmSize::Large);
        let f = vm.feature_vector();
        assert_eq!(f.len(), 6);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cost_is_linear_in_time() {
        let vm = VmType::from_family(0, &m5_spec(), VmSize::Large);
        let one_hour = vm.cost_for(3600.0);
        assert!((one_hour - vm.price_per_hour).abs() < 1e-12);
        assert!((vm.cost_for(1800.0) - one_hour / 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_name() {
        let vm = VmType::from_family(0, &m5_spec(), VmSize::Large);
        assert!(vm.to_string().contains("m5.large"));
        assert_eq!(VmCategory::GeneralPurpose.to_string(), "General Purpose");
    }
}
