//! Deterministic cloud-performance variability.
//!
//! Real EC2 runs vary between repetitions (noisy neighbours, EBS
//! throttling, JIT warm-up); the paper responds by running every workload
//! 10 times and keeping a conservative P90 (Section 4.1). The simulator
//! reproduces that with multiplicative lognormal noise whose seed is a pure
//! function of `(workload, vm, run index, stream)` — so experiments are
//! bit-for-bit reproducible, and re-running the "same" run returns the same
//! sample.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stable 64-bit mix of run coordinates (SplitMix64 finalizer).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive a deterministic RNG for one simulated run.
///
/// * `base_seed` — the experiment-wide seed,
/// * `workload_id` / `vm_id` / `run_idx` — run coordinates,
/// * `stream` — separates independent noise consumers (execution time vs
///   metric jitter) so adding one never perturbs the other.
pub fn run_rng(base_seed: u64, workload_id: u64, vm_id: u64, run_idx: u64, stream: u64) -> StdRng {
    let mut h = base_seed;
    for part in [workload_id, vm_id, run_idx, stream] {
        h = mix(h ^ part.wrapping_mul(0x2545F4914F6CDD1D));
    }
    StdRng::seed_from_u64(h)
}

/// Sample a multiplicative lognormal factor with unit median and the given
/// coefficient of variation. `cv = 0` returns exactly 1.
pub fn lognormal_factor(rng: &mut StdRng, cv: f64) -> f64 {
    if cv <= 0.0 {
        return 1.0;
    }
    // For lognormal, cv^2 = exp(sigma^2) - 1  =>  sigma = sqrt(ln(1 + cv^2)).
    let sigma = (1.0 + cv * cv).ln().sqrt();
    let z = standard_normal(rng);
    (sigma * z).exp()
}

/// Box–Muller standard normal sample.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_coordinates_same_stream() {
        let mut a = run_rng(1, 2, 3, 4, 0);
        let mut b = run_rng(1, 2, 3, 4, 0);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_coordinates_diverge() {
        let a: u64 = run_rng(1, 2, 3, 4, 0).gen();
        let b: u64 = run_rng(1, 2, 3, 5, 0).gen();
        let c: u64 = run_rng(1, 2, 3, 4, 1).gen();
        let d: u64 = run_rng(2, 2, 3, 4, 0).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn zero_cv_is_exactly_one() {
        let mut rng = run_rng(0, 0, 0, 0, 0);
        assert_eq!(lognormal_factor(&mut rng, 0.0), 1.0);
    }

    #[test]
    fn lognormal_cv_roughly_matches() {
        let mut rng = run_rng(7, 7, 7, 7, 7);
        let cv = 0.4; // the paper's Spark-svd++ "close to 40%" variance
        let samples: Vec<f64> = (0..20_000)
            .map(|_| lognormal_factor(&mut rng, cv))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / (samples.len() - 1) as f64;
        let observed_cv = var.sqrt() / mean;
        assert!((observed_cv - cv).abs() < 0.05, "observed cv {observed_cv}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = run_rng(3, 1, 4, 1, 5);
        for _ in 0..1000 {
            assert!(lognormal_factor(&mut rng, 1.0) > 0.0);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = run_rng(9, 9, 9, 9, 9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (n - 1) as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
