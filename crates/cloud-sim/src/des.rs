//! Task-level discrete-event execution — a second, finer-grained
//! implementation of the BSP semantics used to *validate* the closed-form
//! model in [`crate::perf`].
//!
//! Where the closed-form model computes phase times analytically (with a
//! wave-overhead factor standing in for stragglers), this module actually
//! schedules individual tasks onto vCPU slots: every iteration fans
//! `parallelism` tasks out over the cluster's cores, each task carries its
//! slice of compute/disk work plus deterministic per-task jitter, the
//! barrier waits for the slowest task, then the shuffle and sync phases
//! run. Straggler effects and wave imbalance *emerge* instead of being
//! modeled.
//!
//! The two implementations are kept in agreement by tests (see
//! `makespans_agree_with_closed_form`): if a change to either model drifts
//! them apart, the suite fails. This is the standard cross-validation
//! pattern for analytic performance models.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::noise::{lognormal_factor, run_rng};
use crate::perf::ExecutionDemand;
use crate::vmtype::VmType;

/// Configuration of the task-level simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesConfig {
    /// Per-task service-time jitter (coefficient of variation). Real
    /// clusters see 10-30% per-task variability; the emergent wave/straggler
    /// overhead comes from this.
    pub task_jitter_cv: f64,
    /// Experiment seed (aligned with [`crate::perf::SimConfig::seed`]).
    pub seed: u64,
    /// Fraction of VM memory usable by tasks.
    pub usable_memory_frac: f64,
    /// Per-barrier base cost and per-core term (matching the closed form).
    pub sync_base_s: f64,
    /// Per-core barrier cost in seconds.
    pub sync_per_task_s: f64,
    /// Serial (non-parallelizable) fraction of compute (shared with the
    /// closed form's Amdahl term).
    pub serial_fraction: f64,
    /// Per-wave dispatch/locality overhead applied to task service times
    /// (shared with the closed form; the DES *adds* emergent scheduling
    /// imbalance and jitter on top, it does not re-derive this constant).
    pub wave_overhead: f64,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            task_jitter_cv: 0.15,
            seed: 42,
            usable_memory_frac: 0.85,
            sync_base_s: 0.3,
            sync_per_task_s: 0.02,
            serial_fraction: 0.04,
            wave_overhead: 0.03,
        }
    }
}

/// Outcome of a task-level simulation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DesResult {
    /// Total wall-clock makespan, seconds.
    pub makespan_s: f64,
    /// Completion time of each iteration's task phase (relative seconds).
    pub iteration_task_times: Vec<f64>,
    /// Total tasks executed.
    pub tasks_executed: usize,
    /// Mean core utilization during task phases (busy time / (cores ×
    /// phase span)).
    pub task_phase_utilization: f64,
    /// Straggler factor: slowest-task time over mean-task time, averaged
    /// across iterations.
    pub straggler_factor: f64,
}

/// Run the task-level simulation of `demand` on `nodes` × `vm`.
pub fn simulate(
    demand: &ExecutionDemand,
    vm: &VmType,
    nodes: u32,
    run_idx: u64,
    config: &DesConfig,
) -> Result<DesResult, SimError> {
    demand.validate()?;
    if nodes == 0 {
        return Err(SimError::InvalidDemand("cluster of 0 nodes".into()));
    }
    let cores = (vm.vcpus as usize) * nodes as usize;
    let nodes_f = nodes as f64;

    // Memory semantics mirror the closed form.
    let usable_gb = vm.memory_gb * config.usable_memory_frac;
    let ws_per_node = demand.working_set_gb / nodes_f;
    let pressure = ws_per_node / usable_gb.max(1e-9);
    if demand.memory_hard && pressure > 1.5 {
        return Err(SimError::OutOfMemory {
            required_gb: ws_per_node,
            available_gb: usable_gb,
        });
    }
    let spill_gb_per_iter = if pressure > 1.0 {
        (ws_per_node - usable_gb) * nodes_f * demand.spill_penalty
    } else {
        0.0
    };
    let gc_factor = if demand.memory_hard && pressure > 1.0 {
        1.0 + 1.8 * (pressure - 1.0)
    } else {
        1.0
    };

    // Per-task service demand: compute and disk split evenly over tasks of
    // one iteration; tasks are CPU+disk bound, shuffle/sync are phase-level.
    let n_tasks = demand.parallelism.ceil().max(1.0) as usize;
    let iters = demand.iterations as usize;
    let serial = config.serial_fraction;
    // The serial slice of each iteration's compute runs on one core before
    // the fan-out.
    let serial_per_iter_s = demand.compute_units * serial / iters as f64 / vm.cpu_speed * gc_factor;
    let waves = (n_tasks as f64 / cores as f64).ceil().max(1.0);
    let dispatch_factor = 1.0 + config.wave_overhead * (waves - 1.0);
    let compute_per_task =
        demand.compute_units * (1.0 - serial) / iters as f64 / n_tasks as f64 / vm.cpu_speed
            * gc_factor
            * dispatch_factor;
    // Disk bandwidth is shared: express a task's disk time at full share
    // and scale by the concurrency it actually gets (approximated by the
    // per-core fair share).
    let disk_gb_iter = demand.disk_gb_per_iter + spill_gb_per_iter;
    let disk_per_task_s = disk_gb_iter * 1024.0 / (vm.disk_mbps * nodes_f) / n_tasks as f64
        * cores.min(n_tasks) as f64
        * dispatch_factor;

    let mut rng = run_rng(config.seed, demand.workload_id, vm.id as u64, run_idx, 2);
    let mut clock = demand.startup_s;
    let mut iteration_task_times = Vec::with_capacity(iters);
    let mut busy_total = 0.0;
    let mut span_total = 0.0;
    let mut straggler_acc = 0.0;

    for _iter in 0..iters {
        // ---- serial stage (driver-side work before the fan-out) ----------
        clock += serial_per_iter_s;
        // ---- task phase: list-schedule n_tasks onto `cores` slots -------
        let mut slots = vec![0.0f64; cores];
        let mut task_times = Vec::with_capacity(n_tasks);
        for _t in 0..n_tasks {
            let jitter = lognormal_factor(&mut rng, config.task_jitter_cv);
            let service = (compute_per_task + disk_per_task_s) * jitter;
            task_times.push(service);
            // earliest-available slot (cores is small; linear scan is fine)
            let (idx, _) = slots
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                // vesta-lint: allow(panic-in-lib, reason = "slots has cores = vcpus * nodes entries; nodes == 0 is rejected at function entry and every catalog type has vcpus >= 1")
                .expect("at least one core");
            slots[idx] += service;
        }
        let phase_span = vesta_ml::stats::fold_max_total(0.0, slots.iter().copied());
        let busy: f64 = slots.iter().sum();
        busy_total += busy;
        span_total += phase_span * cores as f64;
        let mean_task = busy / n_tasks as f64;
        let max_task = vesta_ml::stats::fold_max_total(0.0, task_times.iter().copied());
        straggler_acc += if mean_task > 0.0 {
            max_task / mean_task
        } else {
            1.0
        };
        clock += phase_span;
        iteration_task_times.push(phase_span);

        // ---- shuffle phase ------------------------------------------------
        clock += demand.shuffle_gb_per_iter * 8.0 / (vm.network_gbps * nodes_f);
        // ---- barrier phase ------------------------------------------------
        let useful = (cores as f64).min(demand.parallelism).max(1.0);
        clock +=
            demand.sync_barriers_per_iter * (config.sync_base_s + config.sync_per_task_s * useful);
    }

    Ok(DesResult {
        makespan_s: clock,
        iteration_task_times,
        tasks_executed: n_tasks * iters,
        task_phase_utilization: if span_total > 0.0 {
            busy_total / span_total
        } else {
            0.0
        },
        straggler_factor: straggler_acc / iters as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::perf::Simulator;

    fn demand(seed: u64) -> ExecutionDemand {
        ExecutionDemand {
            workload_id: seed,
            input_gb: 10.0,
            compute_units: 4000.0 + 500.0 * seed as f64,
            working_set_gb: 8.0,
            shuffle_gb_per_iter: 2.0,
            disk_gb_per_iter: 4.0,
            iterations: 4,
            parallelism: 40.0 + 7.0 * seed as f64,
            sync_barriers_per_iter: 2.0,
            startup_s: 20.0,
            spill_penalty: 2.0,
            memory_hard: false,
            variance_cv: 0.05,
        }
    }

    #[test]
    fn makespans_agree_with_closed_form() {
        // The cross-validation contract: the task-level and closed-form
        // models agree within 35% across a demand x VM sweep (the DES has
        // emergent stragglers the closed form only approximates).
        let cat = Catalog::aws_ec2();
        let sim = Simulator::default();
        let cfg = DesConfig::default();
        let mut worst: f64 = 0.0;
        for seed in 0..12u64 {
            let d = demand(seed);
            for vm_name in ["m5.2xlarge", "c5.4xlarge", "i3en.2xlarge", "r5.xlarge"] {
                let vm = cat.by_name(vm_name).unwrap();
                let analytic = sim.expected_time(&d, vm, 1).unwrap();
                let des = simulate(&d, vm, 1, 0, &cfg).unwrap().makespan_s;
                let rel = (des - analytic).abs() / analytic;
                worst = worst.max(rel);
                assert!(
                    rel < 0.35,
                    "seed {seed} on {vm_name}: DES {des:.0}s vs analytic {analytic:.0}s ({rel:.2})"
                );
            }
        }
        // and they are not trivially identical
        assert!(worst > 0.001, "models suspiciously identical");
    }

    #[test]
    fn stragglers_emerge_with_jitter() {
        let cat = Catalog::aws_ec2();
        let vm = cat.by_name("m5.2xlarge").unwrap();
        let d = demand(1);
        let calm = simulate(
            &d,
            vm,
            1,
            0,
            &DesConfig {
                task_jitter_cv: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let noisy = simulate(
            &d,
            vm,
            1,
            0,
            &DesConfig {
                task_jitter_cv: 0.4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((calm.straggler_factor - 1.0).abs() < 1e-9);
        assert!(noisy.straggler_factor > 1.2);
        assert!(noisy.makespan_s > calm.makespan_s);
    }

    #[test]
    fn utilization_reflects_wave_remainders() {
        let cat = Catalog::aws_ec2();
        let vm = cat.by_name("m5.2xlarge").unwrap(); // 8 cores
                                                     // 8 tasks on 8 cores: one clean wave, near-full utilization.
        let mut fit = demand(0);
        fit.parallelism = 8.0;
        // 9 tasks on 8 cores: a 1-task second wave halves utilization.
        let mut spill = demand(0);
        spill.parallelism = 9.0;
        let cfg = DesConfig {
            task_jitter_cv: 0.0,
            ..Default::default()
        };
        let u_fit = simulate(&fit, vm, 1, 0, &cfg)
            .unwrap()
            .task_phase_utilization;
        let u_spill = simulate(&spill, vm, 1, 0, &cfg)
            .unwrap()
            .task_phase_utilization;
        assert!(u_fit > 0.95, "clean wave utilization {u_fit:.2}");
        assert!(u_spill < 0.75, "remainder wave utilization {u_spill:.2}");
    }

    #[test]
    fn deterministic_per_run_index() {
        let cat = Catalog::aws_ec2();
        let vm = cat.by_name("c5.2xlarge").unwrap();
        let d = demand(3);
        let cfg = DesConfig::default();
        let a = simulate(&d, vm, 1, 5, &cfg).unwrap();
        let b = simulate(&d, vm, 1, 5, &cfg).unwrap();
        assert_eq!(a.makespan_s, b.makespan_s);
        let c = simulate(&d, vm, 1, 6, &cfg).unwrap();
        assert_ne!(a.makespan_s, c.makespan_s);
    }

    #[test]
    fn oom_semantics_match_closed_form() {
        let cat = Catalog::aws_ec2();
        let vm = cat.by_name("m5.large").unwrap();
        let mut d = demand(2);
        d.memory_hard = true;
        d.working_set_gb = 100.0;
        assert!(matches!(
            simulate(&d, vm, 1, 0, &DesConfig::default()),
            Err(SimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn task_counts_are_exact() {
        let cat = Catalog::aws_ec2();
        let vm = cat.by_name("m5.2xlarge").unwrap();
        let mut d = demand(4);
        d.parallelism = 33.0;
        d.iterations = 3;
        let r = simulate(&d, vm, 1, 0, &DesConfig::default()).unwrap();
        assert_eq!(r.tasks_executed, 33 * 3);
        assert_eq!(r.iteration_task_times.len(), 3);
    }
}
