//! Error type for the cloud simulator.

use std::fmt;

/// Errors produced by `vesta-cloud-sim`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// Requested a VM type the catalog does not contain.
    UnknownVmType(String),
    /// A demand or configuration field is out of its valid range.
    InvalidDemand(String),
    /// The simulated run aborted with an out-of-memory condition and the
    /// caller asked for hard-OOM semantics (Spark executors without a
    /// memory watcher).
    OutOfMemory {
        /// Memory the workload needed per node, in GB.
        required_gb: f64,
        /// Usable memory the VM offered, in GB.
        available_gb: f64,
    },
    /// Asked the store for data it does not have.
    NoData(String),
    /// An injected transient cloud failure (spot preemption, instance
    /// crash) survived every retry attempt the policy allowed.
    TransientFailure {
        /// Workload whose run kept failing.
        workload_id: u64,
        /// VM type the run was launched on.
        vm_id: usize,
        /// Launch attempts consumed before giving up.
        attempts: u32,
    },
    /// The VM type reported a persistent capacity error for this request;
    /// retrying on the same type cannot succeed.
    VmUnavailable {
        /// VM type that has no capacity.
        vm_id: usize,
    },
}

impl SimError {
    /// True when the failure is a property of the simulated cloud at this
    /// instant rather than of the request: retrying (or retrying elsewhere,
    /// for [`SimError::VmUnavailable`]) may succeed. Retry/shed policy must
    /// branch on this, never on rendered error text.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::TransientFailure { .. } | SimError::VmUnavailable { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownVmType(s) => write!(f, "unknown VM type: {s}"),
            SimError::InvalidDemand(s) => write!(f, "invalid demand: {s}"),
            SimError::OutOfMemory {
                required_gb,
                available_gb,
            } => write!(
                f,
                "out of memory: needs {required_gb:.1} GB, VM offers {available_gb:.1} GB"
            ),
            SimError::NoData(s) => write!(f, "no recorded data: {s}"),
            SimError::TransientFailure {
                workload_id,
                vm_id,
                attempts,
            } => write!(
                f,
                "transient failure: workload {workload_id} on VM {vm_id} failed {attempts} attempt(s)"
            ),
            SimError::VmUnavailable { vm_id } => {
                write!(f, "VM type {vm_id} has no capacity (persistent)")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        for e in [
            SimError::UnknownVmType("x".into()),
            SimError::InvalidDemand("y".into()),
            SimError::OutOfMemory {
                required_gb: 10.0,
                available_gb: 4.0,
            },
            SimError::NoData("z".into()),
            SimError::TransientFailure {
                workload_id: 1,
                vm_id: 2,
                attempts: 3,
            },
            SimError::VmUnavailable { vm_id: 4 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn transience_splits_cloud_weather_from_request_bugs() {
        assert!(SimError::TransientFailure {
            workload_id: 1,
            vm_id: 2,
            attempts: 3,
        }
        .is_transient());
        assert!(SimError::VmUnavailable { vm_id: 4 }.is_transient());
        assert!(!SimError::UnknownVmType("x".into()).is_transient());
        assert!(!SimError::InvalidDemand("y".into()).is_transient());
        assert!(!SimError::NoData("z".into()).is_transient());
        assert!(!SimError::OutOfMemory {
            required_gb: 10.0,
            available_gb: 4.0,
        }
        .is_transient());
    }
}
