//! Seeded, deterministic fault injection for the simulated cloud.
//!
//! Real EC2 campaigns lose runs to spot preemptions and capacity errors,
//! see stragglers from noisy neighbours, and drop or corrupt monitoring
//! samples. The closed-form simulator in [`crate::perf`] models none of
//! that, so nothing downstream ever exercises its failure handling. This
//! module adds a [`FaultPlan`] (the knobs) and a [`FaultInjector`] (the
//! deterministic draws) that consumers weave into the profiling loop.
//!
//! Determinism contract:
//!
//! * Every fault decision is a pure function of
//!   `(base seed, plan seed, workload, vm, run index)` drawn through
//!   [`crate::noise::run_rng`] on dedicated streams (≥ 2). The execution
//!   and metric-jitter streams (0 and 1) are never touched, so a plan with
//!   all rates at zero — [`FaultPlan::none`], the default — leaves the
//!   pipeline output bit-identical to a build without this module.
//! * Re-asking the injector about the same run returns the same answer;
//!   fault schedules are reproducible across processes and thread
//!   interleavings.

use std::sync::Arc;

use rand::Rng;
use serde::{Deserialize, Serialize};
use vesta_obs::{Counter, MetricsRegistry};

use crate::error::SimError;
use crate::metrics::{MetricsTrace, N_METRICS};
use crate::noise::run_rng;

/// Noise stream carrying per-attempt run fate draws (fail / straggle).
const STREAM_RUN_FATE: u64 = 2;
/// Noise stream carrying the per-(workload, VM) availability draw.
const STREAM_AVAILABILITY: u64 = 3;
/// Noise stream carrying per-sample trace dropout / corruption draws.
const STREAM_TRACE: u64 = 4;
/// Noise stream deciding whether a correlated-failure window is bursty.
const STREAM_BURST: u64 = 5;

/// Spacing between the run indices of successive retry attempts of the same
/// repetition, so a retried run draws fresh execution/metric noise without
/// colliding with any other repetition's index. Attempt 0 keeps the raw
/// repetition index, which preserves bit-identical output when no faults
/// fire.
pub const RETRY_RUN_STRIDE: u64 = 1_000_003;

/// Fault rates for one simulated campaign. All rates are probabilities in
/// `[0, 1]`; the default ([`FaultPlan::none`]) injects nothing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Extra seed folded into every fault draw so different fault universes
    /// can share one simulator seed.
    pub seed: u64,
    /// Probability that an individual run attempt aborts (spot preemption,
    /// instance crash). Retryable: the next attempt redraws its fate.
    pub transient_failure_rate: f64,
    /// Probability that a (workload, VM type) pair hits a persistent
    /// capacity error: every launch of that pair fails until the caller
    /// picks a different VM.
    pub unavailable_rate: f64,
    /// Probability that a run completes but straggles, its wall-clock time
    /// (and hence cost) multiplied by [`FaultPlan::straggler_slowdown`].
    pub straggler_rate: f64,
    /// Multiplicative slowdown applied to straggler runs; must be ≥ 1.
    pub straggler_slowdown: f64,
    /// Probability that an individual 5-second metric sample is lost in
    /// transit and never reaches the store.
    pub sample_dropout_rate: f64,
    /// Probability that an individual metric sample arrives with one of its
    /// values corrupted to NaN.
    pub metric_corruption_rate: f64,
    /// Length (in run indices) of a correlated-failure window. Real cloud
    /// incidents are bursty: an AZ brown-out takes out *consecutive*
    /// launches, not an i.i.d. sprinkle. `0` (the default) disables
    /// correlated failures entirely.
    #[serde(default)]
    pub burst_len: u64,
    /// Probability that a given `(workload, VM, window)` is inside a burst.
    /// Drawn once per window on its own stream, so the verdict is stable
    /// for every attempt in the window.
    #[serde(default)]
    pub burst_window_rate: f64,
    /// Transient-failure probability applied to attempts inside a burst
    /// window (replacing `transient_failure_rate` when it is larger).
    #[serde(default)]
    pub burst_failure_rate: f64,
}

impl FaultPlan {
    /// The no-fault plan: every rate zero. Injecting with this plan is a
    /// provable no-op on the pipeline output.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            transient_failure_rate: 0.0,
            unavailable_rate: 0.0,
            straggler_rate: 0.0,
            straggler_slowdown: 2.5,
            sample_dropout_rate: 0.0,
            metric_corruption_rate: 0.0,
            burst_len: 0,
            burst_window_rate: 0.0,
            burst_failure_rate: 0.0,
        }
    }

    /// True when the correlated-failure knobs can actually fire: all three
    /// must be positive for any burst window to raise a failure.
    pub fn burst_active(&self) -> bool {
        self.burst_len > 0 && self.burst_window_rate > 0.0 && self.burst_failure_rate > 0.0
    }

    /// True when no fault class can ever fire.
    pub fn is_none(&self) -> bool {
        self.transient_failure_rate <= 0.0
            && self.unavailable_rate <= 0.0
            && self.straggler_rate <= 0.0
            && self.sample_dropout_rate <= 0.0
            && self.metric_corruption_rate <= 0.0
            && !self.burst_active()
    }

    /// Validate every knob; returns a typed error naming the first bad one.
    pub fn validate(&self) -> Result<(), SimError> {
        let rates = [
            ("transient_failure_rate", self.transient_failure_rate),
            ("unavailable_rate", self.unavailable_rate),
            ("straggler_rate", self.straggler_rate),
            ("sample_dropout_rate", self.sample_dropout_rate),
            ("metric_corruption_rate", self.metric_corruption_rate),
            ("burst_window_rate", self.burst_window_rate),
            ("burst_failure_rate", self.burst_failure_rate),
        ];
        for (name, rate) in rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(SimError::InvalidDemand(format!(
                    "fault plan: {name} must be in [0, 1], got {rate}"
                )));
            }
        }
        if !self.straggler_slowdown.is_finite() || self.straggler_slowdown < 1.0 {
            return Err(SimError::InvalidDemand(format!(
                "fault plan: straggler_slowdown must be ≥ 1, got {}",
                self.straggler_slowdown
            )));
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Bounded-retry knobs used by collectors when a run attempt fails
/// transiently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum launch attempts per repetition (first try included).
    pub max_attempts: u32,
    /// Simulated seconds waited before the first retry; doubles per
    /// attempt (exponential backoff). Pure bookkeeping — the ledger charges
    /// it, no wall clock passes.
    pub backoff_base_s: f64,
}

impl RetryPolicy {
    /// Validate the policy; at least one attempt, finite non-negative
    /// backoff.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.max_attempts == 0 {
            return Err(SimError::InvalidDemand(
                "retry policy: max_attempts must be ≥ 1".into(),
            ));
        }
        if !self.backoff_base_s.is_finite() || self.backoff_base_s < 0.0 {
            return Err(SimError::InvalidDemand(format!(
                "retry policy: backoff_base_s must be finite and ≥ 0, got {}",
                self.backoff_base_s
            )));
        }
        Ok(())
    }

    /// Simulated backoff before retry number `attempt` (1-based): base
    /// doubled per prior attempt.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            return 0.0;
        }
        self.backoff_base_s * f64::powi(2.0, attempt as i32 - 1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 30.0,
        }
    }
}

/// What the cloud decided about one run attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunFate {
    /// The attempt runs to completion normally.
    Healthy,
    /// The attempt completes but its wall-clock time (and cost) are
    /// multiplied by the carried slowdown factor.
    Straggler(f64),
    /// The attempt aborts mid-flight; retrying may succeed.
    TransientFailure,
}

/// Per-kind telemetry counters bumped when a fault draw actually fires.
/// Attached with [`FaultInjector::with_obs`]; bumping relaxed atomics
/// consumes no RNG draws, so an instrumented injector produces the exact
/// fault schedule of an uninstrumented one.
#[derive(Debug)]
pub struct FaultCounters {
    /// `sim.fault.transient` — run attempts aborted transiently.
    pub transient: Arc<Counter>,
    /// `sim.fault.unavailable` — (workload, VM) pairs hit by a persistent
    /// capacity error.
    pub unavailable: Arc<Counter>,
    /// `sim.fault.straggler` — runs completed with amplified wall-clock.
    pub straggler: Arc<Counter>,
    /// `sim.fault.dropped_samples` — monitoring samples lost in transit.
    pub dropped_samples: Arc<Counter>,
    /// `sim.fault.corrupted_metrics` — metric values poisoned to NaN.
    pub corrupted_metrics: Arc<Counter>,
}

impl FaultCounters {
    /// Resolve the `sim.fault.*` counters against `registry`.
    pub fn register(registry: &MetricsRegistry) -> Arc<Self> {
        Arc::new(FaultCounters {
            transient: registry.counter("sim.fault.transient"),
            unavailable: registry.counter("sim.fault.unavailable"),
            straggler: registry.counter("sim.fault.straggler"),
            dropped_samples: registry.counter("sim.fault.dropped_samples"),
            corrupted_metrics: registry.counter("sim.fault.corrupted_metrics"),
        })
    }
}

/// Deterministic oracle answering "what goes wrong with this run?".
///
/// Stateless apart from optional telemetry counters: every draw is a pure
/// function of its arguments and the plan, so concurrent profiling threads
/// can share one injector and the fault schedule never depends on
/// execution order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    obs: Option<Arc<FaultCounters>>,
}

impl FaultInjector {
    /// Build an injector for the given plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, obs: None }
    }

    /// Count fired faults into `counters` (see [`FaultCounters`]).
    pub fn with_obs(mut self, counters: Arc<FaultCounters>) -> Self {
        self.obs = Some(counters);
        self
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when the plan can never fire (the injector is a no-op).
    pub fn is_none(&self) -> bool {
        self.plan.is_none()
    }

    fn fault_seed(&self, base_seed: u64) -> u64 {
        base_seed ^ self.plan.seed.wrapping_mul(0x9E3779B97F4A7C15)
    }

    /// Persistent capacity check: does this (workload, VM type) pair fail
    /// every launch? Independent of the attempt index — re-asking always
    /// returns the same verdict, modelling a capacity error that outlives
    /// retries.
    pub fn vm_unavailable(&self, base_seed: u64, workload_id: u64, vm_id: usize) -> bool {
        if self.plan.unavailable_rate <= 0.0 {
            return false;
        }
        let mut rng = run_rng(
            self.fault_seed(base_seed),
            workload_id,
            vm_id as u64,
            0,
            STREAM_AVAILABILITY,
        );
        let unavailable = rng.gen::<f64>() < self.plan.unavailable_rate;
        if unavailable {
            if let Some(o) = &self.obs {
                o.unavailable.inc();
            }
        }
        unavailable
    }

    /// Draw the fate of one run attempt. `run_idx` is the attempt's
    /// effective run index (repetition plus [`RETRY_RUN_STRIDE`] per prior
    /// attempt), so retries redraw their fate independently.
    pub fn run_fate(
        &self,
        base_seed: u64,
        workload_id: u64,
        vm_id: usize,
        run_idx: u64,
    ) -> RunFate {
        if self.is_none() {
            return RunFate::Healthy;
        }
        let mut rng = run_rng(
            self.fault_seed(base_seed),
            workload_id,
            vm_id as u64,
            run_idx,
            STREAM_RUN_FATE,
        );
        // Draw both uniforms unconditionally so the stream layout (and thus
        // the schedule) depends only on the coordinates, not on which rates
        // happen to be zero.
        let u_fail = rng.gen::<f64>();
        let u_straggle = rng.gen::<f64>();
        // Correlated failures: the window verdict is drawn on its own stream
        // keyed by the *window* index, so every attempt inside a bursty
        // window shares the elevated failure rate. The per-attempt stream
        // layout above is untouched — only the threshold `u_fail` is
        // compared against changes.
        let mut fail_rate = self.plan.transient_failure_rate;
        if self.plan.burst_active() {
            let window = run_idx / self.plan.burst_len;
            let mut wrng = run_rng(
                self.fault_seed(base_seed),
                workload_id,
                vm_id as u64,
                window,
                STREAM_BURST,
            );
            if wrng.gen::<f64>() < self.plan.burst_window_rate {
                fail_rate = fail_rate.max(self.plan.burst_failure_rate);
            }
        }
        if u_fail < fail_rate {
            if let Some(o) = &self.obs {
                o.transient.inc();
            }
            return RunFate::TransientFailure;
        }
        if u_straggle < self.plan.straggler_rate {
            if let Some(o) = &self.obs {
                o.straggler.inc();
            }
            return RunFate::Straggler(self.plan.straggler_slowdown);
        }
        RunFate::Healthy
    }

    /// Apply monitoring-path faults to a collected trace: drop whole
    /// samples and corrupt single metric values to NaN, deterministically
    /// per (workload, vm, run, sample).
    pub fn corrupt_trace(
        &self,
        base_seed: u64,
        workload_id: u64,
        vm_id: usize,
        run_idx: u64,
        trace: &mut MetricsTrace,
    ) {
        if self.plan.sample_dropout_rate <= 0.0 && self.plan.metric_corruption_rate <= 0.0 {
            return;
        }
        let mut rng = run_rng(
            self.fault_seed(base_seed),
            workload_id,
            vm_id as u64,
            run_idx,
            STREAM_TRACE,
        );
        let samples = std::mem::take(&mut trace.samples);
        let mut kept = Vec::with_capacity(samples.len());
        let (mut dropped, mut corrupted) = (0u64, 0u64);
        for mut sample in samples {
            // Fixed three draws per sample keep the schedule aligned even
            // when one fault class is disabled.
            let u_drop = rng.gen::<f64>();
            let u_corrupt = rng.gen::<f64>();
            let metric = rng.gen_range(0..N_METRICS);
            if u_drop < self.plan.sample_dropout_rate {
                dropped += 1;
                continue;
            }
            if u_corrupt < self.plan.metric_corruption_rate {
                sample[metric] = f64::NAN;
                corrupted += 1;
            }
            kept.push(sample);
        }
        if let Some(o) = &self.obs {
            o.dropped_samples.add(dropped);
            o.corrupted_metrics.add(corrupted);
        }
        trace.samples = kept;
    }

    /// Drain one attempt's fate + trace faults into an RNG-free summary,
    /// handy for tests and schedule dumps.
    pub fn schedule_digest(
        &self,
        base_seed: u64,
        workload_id: u64,
        vm_id: usize,
        runs: u64,
    ) -> Vec<RunFate> {
        (0..runs)
            .map(|run_idx| self.run_fate(base_seed, workload_id, vm_id, run_idx))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn trace_of(samples: usize) -> MetricsTrace {
        MetricsTrace {
            sample_period_s: 5.0,
            samples: vec![[1.0; N_METRICS]; samples],
        }
    }

    #[test]
    fn none_plan_is_inert() {
        let inj = FaultInjector::new(FaultPlan::none());
        assert!(inj.is_none());
        for run in 0..200 {
            assert_eq!(inj.run_fate(42, 7, 11, run), RunFate::Healthy);
        }
        assert!(!inj.vm_unavailable(42, 7, 11));
        let mut trace = trace_of(50);
        let before = trace.samples.clone();
        inj.corrupt_trace(42, 7, 11, 0, &mut trace);
        assert_eq!(trace.samples, before);
    }

    #[test]
    fn validate_rejects_bad_knobs() {
        let mut plan = FaultPlan::none();
        plan.transient_failure_rate = 1.5;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::none();
        plan.sample_dropout_rate = -0.1;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::none();
        plan.straggler_slowdown = 0.5;
        assert!(plan.validate().is_err());
        let mut plan = FaultPlan::none();
        plan.metric_corruption_rate = f64::NAN;
        assert!(plan.validate().is_err());
        assert!(FaultPlan::none().validate().is_ok());
    }

    #[test]
    fn retry_policy_backoff_doubles() {
        let retry = RetryPolicy {
            max_attempts: 4,
            backoff_base_s: 10.0,
        };
        assert_eq!(retry.backoff_s(0), 0.0);
        assert_eq!(retry.backoff_s(1), 10.0);
        assert_eq!(retry.backoff_s(2), 20.0);
        assert_eq!(retry.backoff_s(3), 40.0);
        assert!(retry.validate().is_ok());
        assert!(RetryPolicy {
            max_attempts: 0,
            backoff_base_s: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn rates_roughly_match_observed_frequencies() {
        let plan = FaultPlan {
            transient_failure_rate: 0.2,
            straggler_rate: 0.1,
            straggler_slowdown: 3.0,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan);
        let n = 20_000u64;
        let mut failures = 0usize;
        let mut stragglers = 0usize;
        for run in 0..n {
            match inj.run_fate(42, 1, 2, run) {
                RunFate::TransientFailure => failures += 1,
                RunFate::Straggler(s) => {
                    assert_eq!(s, 3.0);
                    stragglers += 1;
                }
                RunFate::Healthy => {}
            }
        }
        let fail_rate = failures as f64 / n as f64;
        // Stragglers only fire on non-failed draws: expected 0.8 * 0.1.
        let straggle_rate = stragglers as f64 / n as f64;
        assert!((fail_rate - 0.2).abs() < 0.02, "fail rate {fail_rate}");
        assert!(
            (straggle_rate - 0.08).abs() < 0.02,
            "straggle rate {straggle_rate}"
        );
    }

    #[test]
    fn unavailability_is_persistent() {
        let plan = FaultPlan {
            unavailable_rate: 0.3,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan);
        let mut unavailable = 0usize;
        for vm in 0..500usize {
            let first = inj.vm_unavailable(42, 9, vm);
            // Re-asking never flips the verdict.
            for _ in 0..5 {
                assert_eq!(inj.vm_unavailable(42, 9, vm), first);
            }
            if first {
                unavailable += 1;
            }
        }
        let rate = unavailable as f64 / 500.0;
        assert!((rate - 0.3).abs() < 0.08, "unavailable rate {rate}");
    }

    #[test]
    fn corruption_poisons_and_dropout_shrinks() {
        let plan = FaultPlan {
            sample_dropout_rate: 0.2,
            metric_corruption_rate: 0.2,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan);
        let mut trace = trace_of(500);
        inj.corrupt_trace(42, 3, 4, 0, &mut trace);
        assert!(trace.samples.len() < 500, "some samples dropped");
        assert!(trace.samples.len() > 300, "dropout bounded by its rate");
        let poisoned = trace
            .samples
            .iter()
            .filter(|s| s.iter().any(|v| v.is_nan()))
            .count();
        assert!(poisoned > 0, "some samples corrupted");
    }

    #[test]
    fn burst_windows_correlate_failures() {
        // Baseline failures off; bursts guarantee failure inside a bursty
        // window, so every window is either all-failed or all-healthy.
        let plan = FaultPlan {
            burst_len: 8,
            burst_window_rate: 0.4,
            burst_failure_rate: 1.0,
            ..FaultPlan::none()
        };
        let inj = FaultInjector::new(plan);
        let sched = inj.schedule_digest(42, 3, 7, 50 * 8);
        let mut bursty_windows = 0usize;
        for (w, chunk) in sched.chunks(8).enumerate() {
            let failures = chunk
                .iter()
                .filter(|f| matches!(f, RunFate::TransientFailure))
                .count();
            assert!(
                failures == 0 || failures == 8,
                "window {w} split {failures}/8: burst verdict must be per-window"
            );
            if failures == 8 {
                bursty_windows += 1;
            }
        }
        let rate = bursty_windows as f64 / 50.0;
        assert!((rate - 0.4).abs() < 0.2, "bursty window rate {rate}");
    }

    #[test]
    fn burst_leaves_per_attempt_stream_layout_unchanged() {
        // With burst_failure_rate below the baseline the max() never raises
        // the threshold, so the schedule is bit-identical to the burst-free
        // plan: bursts reuse the already-drawn attempt uniforms.
        let base = FaultPlan {
            transient_failure_rate: 0.3,
            straggler_rate: 0.2,
            ..FaultPlan::none()
        };
        let with_inert_burst = FaultPlan {
            burst_len: 4,
            burst_window_rate: 1.0,
            burst_failure_rate: 0.1,
            ..base.clone()
        };
        let a = FaultInjector::new(base).schedule_digest(42, 1, 2, 256);
        let b = FaultInjector::new(with_inert_burst).schedule_digest(42, 1, 2, 256);
        assert_eq!(a, b);
    }

    #[test]
    fn partial_burst_knobs_are_inert() {
        // A plan needs all three knobs positive before any burst can fire.
        for plan in [
            FaultPlan {
                burst_len: 8,
                ..FaultPlan::none()
            },
            FaultPlan {
                burst_window_rate: 1.0,
                burst_failure_rate: 1.0,
                ..FaultPlan::none()
            },
        ] {
            assert!(!plan.burst_active());
            assert!(plan.is_none());
            let inj = FaultInjector::new(plan);
            for run in 0..64 {
                assert_eq!(inj.run_fate(42, 7, 11, run), RunFate::Healthy);
            }
        }
        let full = FaultPlan {
            burst_len: 8,
            burst_window_rate: 1.0,
            burst_failure_rate: 1.0,
            ..FaultPlan::none()
        };
        assert!(full.burst_active());
        assert!(!full.is_none());
        let mut bad = FaultPlan::none();
        bad.burst_failure_rate = 2.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn obs_counters_track_fired_faults_without_changing_the_schedule() {
        let plan = FaultPlan {
            transient_failure_rate: 0.3,
            straggler_rate: 0.2,
            sample_dropout_rate: 0.2,
            metric_corruption_rate: 0.2,
            ..FaultPlan::none()
        };
        let reg = MetricsRegistry::noop();
        let plain = FaultInjector::new(plan.clone());
        let counted = FaultInjector::new(plan).with_obs(FaultCounters::register(&reg));
        let a = plain.schedule_digest(42, 1, 2, 256);
        let b = counted.schedule_digest(42, 1, 2, 256);
        assert_eq!(a, b, "telemetry must not perturb the fault schedule");
        let mut trace = trace_of(200);
        counted.corrupt_trace(42, 1, 2, 0, &mut trace);
        let snap = reg.snapshot();
        let failures = a
            .iter()
            .filter(|f| matches!(f, RunFate::TransientFailure))
            .count() as u64;
        let stragglers = a
            .iter()
            .filter(|f| matches!(f, RunFate::Straggler(_)))
            .count() as u64;
        assert_eq!(snap.counter("sim.fault.transient"), failures);
        assert_eq!(snap.counter("sim.fault.straggler"), stragglers);
        assert!(failures > 0 && stragglers > 0);
        assert_eq!(
            snap.counter("sim.fault.dropped_samples"),
            200 - trace.samples.len() as u64
        );
        assert!(snap.counter("sim.fault.corrupted_metrics") > 0);
    }

    #[test]
    fn plan_seed_changes_schedule() {
        let a = FaultInjector::new(FaultPlan {
            transient_failure_rate: 0.5,
            ..FaultPlan::none()
        });
        let b = FaultInjector::new(FaultPlan {
            seed: 1,
            transient_failure_rate: 0.5,
            ..FaultPlan::none()
        });
        let fa = a.schedule_digest(42, 1, 2, 64);
        let fb = b.schedule_digest(42, 1, 2, 64);
        assert_ne!(fa, fb, "plan seed must shift the fault universe");
    }

    proptest! {
        /// Same seed + same plan ⇒ identical fault schedule, independent of
        /// how many times or in what order the injector is asked.
        #[test]
        fn fault_schedule_is_deterministic(
            base_seed in any::<u64>(),
            plan_seed in any::<u64>(),
            fail_rate in 0.0f64..1.0,
            straggle_rate in 0.0f64..1.0,
            workload in 0u64..100,
            vm in 0usize..120,
        ) {
            let plan = FaultPlan {
                seed: plan_seed,
                transient_failure_rate: fail_rate,
                straggler_rate: straggle_rate,
                ..FaultPlan::none()
            };
            let a = FaultInjector::new(plan.clone());
            let b = FaultInjector::new(plan);
            let sched_a = a.schedule_digest(base_seed, workload, vm, 32);
            // Ask b in reverse order: schedules must still agree entry-wise.
            let mut sched_b: Vec<RunFate> = (0..32u64).rev()
                .map(|run| b.run_fate(base_seed, workload, vm, run))
                .collect();
            sched_b.reverse();
            prop_assert_eq!(sched_a, sched_b);
            prop_assert_eq!(
                a.vm_unavailable(base_seed, workload, vm),
                b.vm_unavailable(base_seed, workload, vm)
            );
        }

        /// Trace corruption is deterministic: same coordinates ⇒ same kept
        /// samples and same NaN positions.
        #[test]
        fn trace_corruption_is_deterministic(
            base_seed in any::<u64>(),
            drop_rate in 0.0f64..0.5,
            corrupt_rate in 0.0f64..0.5,
            samples in 3usize..80,
        ) {
            let plan = FaultPlan {
                sample_dropout_rate: drop_rate,
                metric_corruption_rate: corrupt_rate,
                ..FaultPlan::none()
            };
            let inj = FaultInjector::new(plan);
            let mut t1 = trace_of(samples);
            let mut t2 = trace_of(samples);
            inj.corrupt_trace(base_seed, 5, 6, 2, &mut t1);
            inj.corrupt_trace(base_seed, 5, 6, 2, &mut t2);
            // NaN != NaN, so compare bit patterns.
            let bits = |t: &MetricsTrace| -> Vec<u64> {
                t.samples.iter().flat_map(|s| s.iter().map(|v| v.to_bits())).collect()
            };
            prop_assert_eq!(bits(&t1), bits(&t2));
        }
    }
}
