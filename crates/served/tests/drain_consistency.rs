//! Crash-consistency of `Server::drain()` under live load, stated as a
//! property: whatever traffic was in flight when the drain began, the
//! per-tenant journal left behind must replay to exactly the drained
//! live state (`Knowledge::recover` bit-identical, checked through
//! `Server::check_recovery`), every absorbed workload id must be
//! unique, and every request the client saw answered `ok`/`degraded`
//! must appear in the absorbed set — no lost, no duplicated
//! absorptions.
//!
//! The load shape (batch size, request count, drain delay) is drawn by
//! proptest so the drain lands at a different point of the serving loop
//! on every case.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use proptest::prelude::*;
use vesta_cloud_sim::Catalog;
use vesta_core::{Knowledge, PredictOptions, VestaConfig};
use vesta_served::{ClientConfig, Server, ServerConfig, VestaClient};
use vesta_workloads::{Suite, Workload};

/// Train once; every proptest case restores a fresh handle from the
/// shared snapshot so cases never see each other's absorptions.
fn shared() -> &'static (Suite, Knowledge) {
    static SHARED: OnceLock<(Suite, Knowledge)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let sources: Vec<&Workload> = suite.source_training().into_iter().take(4).collect();
        let cfg = VestaConfig::fast()
            .to_builder()
            .offline_reps(1)
            .build()
            .expect("drain test config is valid");
        let knowledge = Knowledge::train(catalog, &sources, cfg).expect("offline training");
        (suite, knowledge)
    })
}

fn fresh_knowledge() -> Knowledge {
    let (_, knowledge) = shared();
    Knowledge::from_snapshot(knowledge.to_snapshot(), knowledge.catalog().clone())
        .expect("snapshot restores")
}

/// A journal path unique per proptest case, so replays of one case
/// never read another's frames.
fn journal_path() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "vesta-drain-consistency-{}-{case}.journal",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    })]

    #[test]
    fn drain_under_live_load_leaves_replayable_journals(
        requests in 2usize..=5,
        batch in 1usize..=3,
        drain_after_ms in 0u64..=60,
    ) {
        let (suite, _) = shared();
        let mut server = Server::start(ServerConfig::default()).expect("server starts");
        let journal = journal_path();
        server
            .add_tenant("t", fresh_knowledge(), &journal)
            .expect("tenant registers");
        let addr = server.local_addr();

        let request_names: Vec<String> = suite
            .target()
            .into_iter()
            .take(batch)
            .map(|w| w.name().to_string())
            .collect();
        let refs: Vec<&str> = request_names.iter().map(String::as_str).collect();

        // Drive load from a scoped thread while the main thread drains
        // partway through; record which workloads the client saw served.
        let mut served_names: BTreeSet<String> = BTreeSet::new();
        let report = std::thread::scope(|scope| {
            let refs = &refs;
            let request_names = &request_names;
            let loader = scope.spawn(move || {
                let mut served = BTreeSet::new();
                let config = ClientConfig {
                    retries: 1,
                    connect_timeout: Duration::from_millis(500),
                    read_timeout: Duration::from_secs(10),
                    ..ClientConfig::default()
                };
                let Ok(mut client) = VestaClient::connect_with(addr, config) else {
                    return served;
                };
                for _ in 0..requests {
                    match client.predict("t", refs, PredictOptions::supervised()) {
                        Ok(reply) => {
                            for (name, outcome) in request_names.iter().zip(&reply.outcomes) {
                                if matches!(outcome.label(), "ok" | "degraded") {
                                    served.insert(name.clone());
                                }
                            }
                        }
                        // The drain closed the connection under us; the
                        // reply (if any) was not observed, which the
                        // absorbed ⊇ served contract tolerates.
                        Err(_) => break,
                    }
                }
                served
            });
            std::thread::sleep(Duration::from_millis(drain_after_ms));
            let report = server.drain().expect("drain completes");
            served_names = loader.join().expect("loader thread exits");
            report
        });

        prop_assert_eq!(report.tenants_flushed, 1);
        prop_assert!(
            server.check_recovery("t").expect("journal replays"),
            "journal replay diverged from the drained live state"
        );

        let absorbed = server.tenant_absorbed_ids("t").expect("tenant registered");
        let unique: BTreeSet<u64> = absorbed.iter().copied().collect();
        prop_assert_eq!(
            unique.len(),
            absorbed.len(),
            "duplicated absorptions after drain: {:?}",
            absorbed
        );

        // Everything the client saw served must have been absorbed
        // (lost = 0); the server absorbing more than the client saw is
        // fine — those are replies the drain cut off in flight.
        for name in &served_names {
            let id = suite.by_name(name).expect("served name is in the suite").id;
            prop_assert!(
                unique.contains(&id),
                "workload '{}' (id {}) served to the client but lost on drain",
                name,
                id
            );
        }

        let _ = std::fs::remove_file(&journal);
    }
}
