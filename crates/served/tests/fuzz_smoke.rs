//! Seeded smoke sweep of the shared codec fuzz harness.
//!
//! Runs [`vesta_served::fuzzing::codec_fuzz_case`] — the exact body the
//! cargo-fuzz target wraps — over three deterministic corpora on every
//! plain `cargo test`, so the codec's no-panic / round-trip-stability
//! contract is exercised even where libFuzzer is unavailable:
//!
//! 1. raw splitmix64 byte strings of varied lengths,
//! 2. well-formed frames and encoded messages (the happy paths), and
//! 3. seeded single-byte mutations of those well-formed buffers (the
//!    near-miss corpus where framing bugs actually live).

use vesta_core::PredictOptions;
use vesta_served::fuzzing::codec_fuzz_case;
use vesta_served::wire::{self, Request, Response};
use vesta_served::ServerError;

/// Deterministic byte-string generator (splitmix64 over a fixed seed).
struct ByteGen(u64);

impl ByteGen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u64() & 0xFF) as u8).collect()
    }
}

#[test]
fn random_bytes_never_panic_the_codec() {
    let mut generator = ByteGen(0xF0CC_5EED_0CDE_C0DE);
    for round in 0..256u64 {
        // Sweep lengths across the interesting boundaries: empty, tiny,
        // around the 8-byte frame header, and into multi-frame sizes.
        let len = match round % 8 {
            0 => 0,
            1 => 1,
            2 => 7,
            3 => 8,
            4 => 9,
            5 => 64,
            6 => 512,
            _ => (generator.next_u64() % 4096) as usize,
        };
        let data = generator.bytes(len);
        codec_fuzz_case(&data);
    }
}

/// Well-formed buffers the sweep mutates: every request verb, the
/// response shapes with interesting payloads, each both bare and framed.
fn seed_corpus() -> Vec<Vec<u8>> {
    let requests = [
        Request::Hello {
            version: wire::WIRE_VERSION,
        },
        Request::Predict {
            tenant: "alpha".to_string(),
            workloads: vec!["Spark-kmeans".to_string(), "Hive-join".to_string()],
            options: PredictOptions::default(),
        },
        Request::Metrics,
    ];
    let responses = [
        Response::HelloAck {
            version: wire::WIRE_VERSION,
        },
        Response::Metrics {
            snapshot_json: "{\"schema\":\"vesta-telemetry/1\"}".to_string(),
        },
        Response::Error(ServerError::Overloaded {
            active: 7,
            limit: 4,
        }),
        Response::Error(ServerError::Timeout { waited_ms: 1234 }),
    ];
    let mut corpus = Vec::new();
    for payload in requests
        .iter()
        .map(wire::encode_request)
        .chain(responses.iter().map(wire::encode_response))
    {
        let mut framed = Vec::new();
        wire::write_frame(&mut framed, &payload).expect("seed payload frames");
        corpus.push(payload);
        corpus.push(framed);
    }
    corpus
}

#[test]
fn well_formed_buffers_survive_the_harness() {
    for buffer in seed_corpus() {
        codec_fuzz_case(&buffer);
    }
}

#[test]
fn mutated_well_formed_buffers_never_panic() {
    let corpus = seed_corpus();
    let mut generator = ByteGen(0x5EED_CAFE);
    for buffer in &corpus {
        for _ in 0..64 {
            let mut mutated = buffer.clone();
            match generator.next_u64() % 4 {
                // Flip one bit somewhere.
                0 if !mutated.is_empty() => {
                    let at = (generator.next_u64() as usize) % mutated.len();
                    mutated[at] ^= 1 << (generator.next_u64() % 8);
                }
                // Truncate to a prefix (torn frame).
                1 if !mutated.is_empty() => {
                    let keep = (generator.next_u64() as usize) % mutated.len();
                    mutated.truncate(keep);
                }
                // Append random garbage (trailing bytes after a frame).
                2 => {
                    let extra_len = 1 + (generator.next_u64() as usize) % 16;
                    let extra = generator.bytes(extra_len);
                    mutated.extend_from_slice(&extra);
                }
                // Overwrite one byte.
                _ if !mutated.is_empty() => {
                    let at = (generator.next_u64() as usize) % mutated.len();
                    mutated[at] = (generator.next_u64() & 0xFF) as u8;
                }
                _ => {}
            }
            codec_fuzz_case(&mutated);
        }
    }
}
