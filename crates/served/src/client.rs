//! `VestaClient` — the in-crate `vesta-wire/1` client, sharing the
//! server's codec byte-for-byte and hardened for real networks: every
//! socket carries read/write deadlines (a dead peer surfaces as a typed
//! [`ServerError::Timeout`], never a hung thread), and transient
//! failures are retried on a fresh connection under a bounded budget
//! with exponential backoff and decorrelated jitter.
//!
//! Retrying a `PREDICT` is safe by construction, not by hope: the
//! engine's publish path dedupes absorbed predictions by workload id
//! (see `vesta_core::PredictRequest`'s idempotency notes), so a reply
//! the client lost to a timeout and then re-requested cannot double-count
//! server-side. That contract is what licenses the retry loop below.
//!
//! After any transient error the client *always* discards the stream and
//! reconnects before the next attempt: a framing error
//! ([`ServerError::Truncated`] / [`ServerError::Checksum`]) means the
//! byte stream is unsynchronized, and a timeout may leave a stale reply
//! in flight that would otherwise be mistaken for the next one.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use vesta_core::PredictOptions;

use crate::wire::{self, FrameEvent, FrameReadPolicy, PredictReply, Request, Response, WIRE_VERSION};
use crate::{RetryAttempt, ServerError};

/// Deadlines and retry budget for a [`VestaClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Per-request reply deadline: maximum silence (zero frame-progress
    /// bytes) tolerated while waiting for a response.
    pub read_timeout: Duration,
    /// Deadline for pushing a request frame into the socket.
    pub write_timeout: Duration,
    /// Extra attempts after the first, spent only on transient errors
    /// ([`ServerError::is_transient`]). `0` disables retrying entirely
    /// and restores single-shot semantics.
    pub retries: u32,
    /// First backoff; later backoffs grow from it with decorrelated
    /// jitter.
    pub backoff_base: Duration,
    /// Upper bound any single backoff is clamped to.
    pub backoff_cap: Duration,
    /// Seed for the jitter stream, so a scenario's backoff schedule is
    /// reproducible.
    pub retry_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            retries: 2,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(1000),
            retry_seed: 0x7E57_C11E_4715,
        }
    }
}

/// The splitmix64 output scrambler: a bijective avalanche over `u64`,
/// used both to whiten the user-provided retry seed and to draw jitter
/// values from the advancing Weyl-sequence state.
fn splitmix64_scramble(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A blocking client over one TCP connection, reconnecting under the
/// hood when its retry budget allows.
#[derive(Debug)]
pub struct VestaClient {
    addrs: Vec<SocketAddr>,
    config: ClientConfig,
    stream: Option<TcpStream>,
    jitter: u64,
}

impl VestaClient {
    /// Connect with [`ClientConfig::default`] deadlines and negotiate
    /// the wire version. Fails with [`ServerError::UnsupportedVersion`]
    /// when the server speaks a different `vesta-wire` revision.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<VestaClient, ServerError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connect under explicit deadlines and retry budget.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<VestaClient, ServerError> {
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| ServerError::Io(format!("resolve: {e}")))?
            .collect();
        if addrs.is_empty() {
            return Err(ServerError::Io("resolve: no addresses".to_string()));
        }
        // Scramble the seed once so adjacent seeds (42 vs 43) start from
        // fully decorrelated states, and never collapse distinct seeds
        // together (`seed | 1` famously aliases 2k and 2k+1).
        let jitter = splitmix64_scramble(config.retry_seed);
        let mut client = VestaClient {
            addrs,
            config,
            stream: None,
            jitter,
        };
        // Dial eagerly (inside the retry budget) so `connect` keeps its
        // historical contract: a returned client has already completed
        // the HELLO negotiation.
        client.with_retries(|c| c.ensure_connected().map(|_| ()))?;
        Ok(client)
    }

    /// The effective configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Serve `workloads` (suite names) for `tenant` under `options`.
    /// Safe to retry: the server's publish path dedupes absorptions by
    /// workload id.
    pub fn predict(
        &mut self,
        tenant: &str,
        workloads: &[&str],
        options: PredictOptions,
    ) -> Result<PredictReply, ServerError> {
        let request = Request::Predict {
            tenant: tenant.to_string(),
            workloads: workloads.iter().map(|w| (*w).to_string()).collect(),
            options,
        };
        self.with_retries(|c| match c.roundtrip_once(&request)? {
            Response::Predict(reply) => Ok(reply),
            Response::Error(e) => Err(e),
            other => Err(ServerError::Malformed(format!(
                "unexpected reply to PREDICT: {other:?}"
            ))),
        })
    }

    /// Fetch the server's `vesta-telemetry/1` snapshot as JSON text.
    pub fn metrics(&mut self) -> Result<String, ServerError> {
        self.with_retries(|c| match c.roundtrip_once(&Request::Metrics)? {
            Response::Metrics { snapshot_json } => Ok(snapshot_json),
            Response::Error(e) => Err(e),
            other => Err(ServerError::Malformed(format!(
                "unexpected reply to METRICS: {other:?}"
            ))),
        })
    }

    /// Run `op` under the retry budget: transient failures burn an
    /// attempt, force a reconnect, and back off with decorrelated
    /// jitter; deterministic failures return immediately. When the
    /// budget runs dry the caller gets the bare error for a single-shot
    /// budget (`retries == 0`, historical semantics) and a
    /// [`ServerError::RetryBudgetExhausted`] ledger otherwise.
    fn with_retries<T>(
        &mut self,
        mut op: impl FnMut(&mut Self) -> Result<T, ServerError>,
    ) -> Result<T, ServerError> {
        let budget = self.config.retries;
        let mut attempts: Vec<RetryAttempt> = Vec::new();
        let mut prev_backoff = self.config.backoff_base.max(Duration::from_millis(1));
        loop {
            let attempt = attempts.len() as u32;
            match op(self) {
                Ok(value) => return Ok(value),
                Err(error) => {
                    let transient = error.is_transient();
                    if transient {
                        // The stream may be unsynchronized or carry a
                        // stale reply; never reuse it across attempts.
                        self.stream = None;
                    }
                    if !transient || attempt >= budget {
                        attempts.push(RetryAttempt {
                            attempt,
                            error: error.to_string(),
                            transient,
                            backoff_ms: 0,
                        });
                        return Err(if !transient || budget == 0 {
                            error
                        } else {
                            ServerError::RetryBudgetExhausted { attempts }
                        });
                    }
                    let backoff = self.next_backoff(prev_backoff);
                    attempts.push(RetryAttempt {
                        attempt,
                        error: error.to_string(),
                        transient,
                        backoff_ms: backoff.as_millis() as u64,
                    });
                    std::thread::sleep(backoff);
                    prev_backoff = backoff;
                }
            }
        }
    }

    /// Decorrelated jitter (the AWS-architecture scheme): draw uniformly
    /// from `[base, 3 * previous]`, clamp to the cap. Grows roughly
    /// exponentially while desynchronizing concurrent clients.
    fn next_backoff(&mut self, prev: Duration) -> Duration {
        // splitmix64 step over the client's seeded jitter state.
        self.jitter = self.jitter.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let draw = splitmix64_scramble(self.jitter);

        let base = self.config.backoff_base.as_millis() as u64;
        let cap = (self.config.backoff_cap.as_millis() as u64).max(1);
        let hi = (prev.as_millis() as u64).saturating_mul(3).max(base + 1);
        let span = hi - base;
        let ms = (base + draw % span).min(cap).max(1);
        Duration::from_millis(ms)
    }

    /// Return the live stream, dialing and re-negotiating HELLO first if
    /// the previous attempt discarded it.
    fn ensure_connected(&mut self) -> Result<(), ServerError> {
        if self.stream.is_some() {
            return Ok(());
        }
        let mut last_err = ServerError::Io("connect: no addresses".to_string());
        let mut stream = None;
        for addr in &self.addrs {
            match TcpStream::connect_timeout(addr, self.config.connect_timeout) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(e) => last_err = ServerError::Io(format!("connect {addr}: {e}")),
            }
        }
        let stream = stream.ok_or(last_err)?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(self.config.read_timeout))
            .map_err(|e| ServerError::Io(format!("set read timeout: {e}")))?;
        stream
            .set_write_timeout(Some(self.config.write_timeout))
            .map_err(|e| ServerError::Io(format!("set write timeout: {e}")))?;
        self.stream = Some(stream);
        match self.roundtrip_once(&Request::Hello {
            version: WIRE_VERSION,
        }) {
            Ok(Response::HelloAck { .. }) => Ok(()),
            Ok(Response::Error(e)) => {
                self.stream = None;
                Err(e)
            }
            Ok(other) => {
                self.stream = None;
                Err(ServerError::Malformed(format!(
                    "unexpected reply to HELLO: {other:?}"
                )))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    /// One request/reply exchange on the live connection (establishing
    /// it first if needed). The reply read runs under a
    /// [`FrameReadPolicy`] that converts a full read-timeout window with
    /// zero frame progress into a typed [`ServerError::Timeout`] — this
    /// is the fix for the historical "client blocks forever on a dead
    /// peer" hang.
    fn roundtrip_once(&mut self, request: &Request) -> Result<Response, ServerError> {
        self.ensure_connected()?;
        let read_timeout = self.config.read_timeout;
        let stream = match self.stream.as_mut() {
            Some(stream) => stream,
            None => return Err(ServerError::Io("connection lost before send".to_string())),
        };
        let frame = wire::encode_request(request);
        wire::write_frame(stream, &frame)?;
        let policy = FrameReadPolicy {
            idle_event: false,
            stall_ticks: 1,
            tick_ms: read_timeout.as_millis() as u64,
        };
        match wire::read_frame_with(stream, policy)? {
            FrameEvent::Frame(payload) => wire::decode_response(&payload),
            FrameEvent::Closed => Err(ServerError::Io(
                "server closed the connection mid-request".to_string(),
            )),
            // `idle_event` is off: a silent window surfaces as
            // `ServerError::Timeout` from the policy, never as Idle.
            FrameEvent::Idle => Err(ServerError::Io(
                "unexpected idle event with idle_event disabled".to_string(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_has_deadlines_and_budget() {
        let config = ClientConfig::default();
        assert!(config.read_timeout > Duration::ZERO);
        assert!(config.write_timeout > Duration::ZERO);
        assert!(config.connect_timeout > Duration::ZERO);
        assert!(config.retries >= 1);
        assert!(config.backoff_cap >= config.backoff_base);
    }

    #[test]
    fn backoff_is_seeded_jittered_and_capped() {
        let config = ClientConfig {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(80),
            retry_seed: 42,
            ..ClientConfig::default()
        };
        let mk = |seed| VestaClient {
            addrs: vec!["127.0.0.1:1".parse().unwrap()],
            config: ClientConfig {
                retry_seed: seed,
                ..config.clone()
            },
            stream: None,
            jitter: splitmix64_scramble(seed),
        };
        let schedule = |mut c: VestaClient| {
            let mut prev = c.config.backoff_base;
            (0..8)
                .map(|_| {
                    prev = c.next_backoff(prev);
                    prev
                })
                .collect::<Vec<_>>()
        };
        let a = schedule(mk(42));
        let b = schedule(mk(42));
        let c = schedule(mk(43));
        assert_eq!(a, b, "same seed, same backoff schedule");
        assert_ne!(a, c, "different seeds decorrelate");
        for d in &a {
            assert!(*d >= Duration::from_millis(1));
            assert!(*d <= Duration::from_millis(80), "cap violated: {d:?}");
        }
    }

    #[test]
    fn connect_to_dead_port_is_typed_not_hung() {
        // Bind-then-drop gives a port with (very likely) no listener.
        let port = {
            let sock = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            sock.local_addr().unwrap().port()
        };
        let config = ClientConfig {
            connect_timeout: Duration::from_millis(200),
            retries: 1,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..ClientConfig::default()
        };
        let started = std::time::Instant::now();
        let err = VestaClient::connect_with(("127.0.0.1", port), config)
            .expect_err("no listener must not yield a client");
        assert!(
            matches!(
                err,
                ServerError::Io(_) | ServerError::RetryBudgetExhausted { .. }
            ),
            "unexpected error shape: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "connect failure took too long — deadline not applied"
        );
    }
}
