//! `VestaClient` — the in-crate `vesta-wire/1` client, sharing the
//! server's codec byte-for-byte. One connection serves many requests;
//! the constructor performs the HELLO version negotiation.

use std::net::{TcpStream, ToSocketAddrs};

use vesta_core::PredictOptions;

use crate::wire::{self, FrameEvent, PredictReply, Request, Response, WIRE_VERSION};
use crate::ServerError;

/// A blocking client over one TCP connection.
#[derive(Debug)]
pub struct VestaClient {
    stream: TcpStream,
}

impl VestaClient {
    /// Connect and negotiate the wire version. Fails with
    /// [`ServerError::UnsupportedVersion`] when the server speaks a
    /// different `vesta-wire` revision.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<VestaClient, ServerError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ServerError::Io(format!("connect: {e}")))?;
        let _ = stream.set_nodelay(true);
        let mut client = VestaClient { stream };
        match client.roundtrip(&Request::Hello {
            version: WIRE_VERSION,
        })? {
            Response::HelloAck { .. } => Ok(client),
            Response::Error(e) => Err(e),
            other => Err(ServerError::Malformed(format!(
                "unexpected reply to HELLO: {other:?}"
            ))),
        }
    }

    /// Serve `workloads` (suite names) for `tenant` under `options`.
    pub fn predict(
        &mut self,
        tenant: &str,
        workloads: &[&str],
        options: PredictOptions,
    ) -> Result<PredictReply, ServerError> {
        let request = Request::Predict {
            tenant: tenant.to_string(),
            workloads: workloads.iter().map(|w| (*w).to_string()).collect(),
            options,
        };
        match self.roundtrip(&request)? {
            Response::Predict(reply) => Ok(reply),
            Response::Error(e) => Err(e),
            other => Err(ServerError::Malformed(format!(
                "unexpected reply to PREDICT: {other:?}"
            ))),
        }
    }

    /// Fetch the server's `vesta-telemetry/1` snapshot as JSON text.
    pub fn metrics(&mut self) -> Result<String, ServerError> {
        match self.roundtrip(&Request::Metrics)? {
            Response::Metrics { snapshot_json } => Ok(snapshot_json),
            Response::Error(e) => Err(e),
            other => Err(ServerError::Malformed(format!(
                "unexpected reply to METRICS: {other:?}"
            ))),
        }
    }

    fn roundtrip(&mut self, request: &Request) -> Result<Response, ServerError> {
        let frame = wire::encode_request(request);
        wire::write_frame(&mut self.stream, &frame)?;
        match wire::read_frame(&mut self.stream)? {
            FrameEvent::Frame(payload) => wire::decode_response(&payload),
            FrameEvent::Closed => Err(ServerError::Io(
                "server closed the connection mid-request".to_string(),
            )),
            // The client never sets a read timeout, so a blocking read
            // cannot report idle; treat it as an IO anomaly if it does.
            FrameEvent::Idle => Err(ServerError::Io(
                "unexpected idle read on a blocking socket".to_string(),
            )),
        }
    }
}
