//! Shared fuzz harness for the `vesta-wire/1` codec.
//!
//! The actual cargo-fuzz target (`fuzz/fuzz_targets/wire_codec.rs`) is a
//! two-line wrapper around [`codec_fuzz_case`]; keeping the body here
//! means the exact same property runs three ways:
//!
//! 1. under libFuzzer with coverage feedback (CI's `fuzz-smoke` job),
//! 2. as a seeded in-tree smoke sweep (`tests/fuzz_smoke.rs`) on every
//!    plain `cargo test`, and
//! 3. under miri via the codec unit tests it leans on.
//!
//! The property is the codec's safety contract stated as code: arbitrary
//! bytes may produce typed errors but never a panic, and anything that
//! decodes cleanly must re-encode and decode back to the same value
//! (round-trip stability — the guarantee the absorption-idempotency
//! story rests on, since a retried request must mean the same thing).

use std::io::Cursor;

use crate::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameEvent,
};

/// Run every codec entry point over one arbitrary byte string. Panics
/// (and therefore fails the fuzzer or the smoke test) only when a codec
/// guarantee is broken; returns normally otherwise.
pub fn codec_fuzz_case(data: &[u8]) {
    if let Err(violation) = codec_properties(data) {
        // vesta-lint: allow(panic-in-lib, reason = "this IS the fuzz oracle: a panic here is libFuzzer's (and the smoke sweep's) failure signal for a broken codec guarantee; production code never calls this module")
        panic!("vesta-wire codec contract violated: {violation}");
    }
}

/// The codec contract as a checkable property; `Err` describes the first
/// violated guarantee.
fn codec_properties(data: &[u8]) -> Result<(), String> {
    // 1. Arbitrary bytes as a message payload: decoding may fail with a
    //    typed error but must not panic, and a successful decode must
    //    round-trip bit-stably through its encoder.
    message_round_trips(data)?;

    // 2. Arbitrary bytes as a frame stream: reading frames until the
    //    stream errors or drains must never panic, and every payload a
    //    frame yields must itself survive step 1's property.
    let mut cursor = Cursor::new(data);
    for _ in 0..4 {
        match read_frame(&mut cursor) {
            Ok(FrameEvent::Frame(payload)) => message_round_trips(&payload)?,
            Ok(FrameEvent::Closed) | Ok(FrameEvent::Idle) | Err(_) => break,
        }
    }

    // 3. Arbitrary bytes as a payload to *frame*: framing is total for
    //    payloads under the cap, and a framed payload reads back intact.
    if data.len() <= 1 << 16 {
        let mut framed = Vec::new();
        write_frame(&mut framed, data)
            .map_err(|e| format!("framing a small payload must be total: {e}"))?;
        match read_frame(&mut Cursor::new(&framed)) {
            Ok(FrameEvent::Frame(payload)) if payload == data => {}
            Ok(FrameEvent::Frame(_)) => return Err("frame round-trip altered payload".to_string()),
            Ok(FrameEvent::Closed) | Ok(FrameEvent::Idle) => {
                return Err("own frame read back as closed/idle".to_string())
            }
            Err(e) => return Err(format!("own frame must read back: {e}")),
        }
    }
    Ok(())
}

/// If `payload` decodes as a request and/or a response, its re-encoding
/// must decode back to the identical value.
fn message_round_trips(payload: &[u8]) -> Result<(), String> {
    if let Ok(request) = decode_request(payload) {
        match decode_request(&encode_request(&request)) {
            Ok(again) if again == request => {}
            Ok(again) => {
                return Err(format!(
                    "request round-trip not stable: {request:?} re-decoded as {again:?}"
                ))
            }
            Err(e) => return Err(format!("re-encoded request must decode: {e}")),
        }
    }
    if let Ok(response) = decode_response(payload) {
        match decode_response(&encode_response(&response)) {
            Ok(again) if again == response => {}
            Ok(again) => {
                return Err(format!(
                    "response round-trip not stable: {response:?} re-decoded as {again:?}"
                ))
            }
            Err(e) => return Err(format!("re-encoded response must decode: {e}")),
        }
    }
    Ok(())
}
