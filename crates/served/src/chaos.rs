//! Seeded, deterministic network chaos for the `vesta-wire/1` serving
//! path: a TCP proxy that sits between a [`crate::VestaClient`] and a
//! [`crate::Server`] and injects the failure modes a real network
//! produces — latency, mid-frame stalls, torn (fragmented) writes,
//! connection resets, and byte corruption.
//!
//! The discipline mirrors `vesta-cloud-sim`'s [`FaultPlan`] /
//! `DynamicPlan`: every injection decision is drawn from an fnv1a-derived
//! splitmix64 stream keyed by `(plan seed, connection index, direction)`,
//! so two runs of the same scenario make the same *decisions* in the same
//! order per connection, and [`ChaosPlan::none`] — every rate zero — is a
//! pure byte pump, provably bit-identical to a direct connection (pinned
//! by `tests/serving.rs`).
//!
//! What "deterministic" means here, precisely: the decision *stream* is
//! seeded and reproducible, but the chunk boundaries it is applied to
//! depend on kernel read timing. Chaos scenarios therefore assert
//! *invariants* (zero lost absorptions, bounded retries), not byte-exact
//! transcripts — exactly like the simulator's straggler model.
//!
//! [`FaultPlan`]: vesta_cloud_sim::fault::FaultPlan

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use crate::ServerError;

/// Injection rates and magnitudes for one proxied link. All `*_rate`
/// fields are per-forwarded-chunk probabilities in `[0, 1]`; the default
/// ([`ChaosPlan::none`]) injects nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    /// Seed folded into every decision stream, so different chaos
    /// universes can share one scenario.
    pub seed: u64,
    /// Probability a chunk is delayed before forwarding.
    pub delay_rate: f64,
    /// Upper bound (inclusive) of the injected delay, milliseconds;
    /// the actual delay is drawn uniformly from `[1, delay_ms_max]`.
    pub delay_ms_max: u64,
    /// Probability a chunk is forwarded in two halves with a stall
    /// between them — a *mid-frame* stall, since chunks usually split
    /// inside a wire frame. This is the slow-loris generator.
    pub stall_rate: f64,
    /// Length of an injected stall, milliseconds.
    pub stall_ms: u64,
    /// Probability a chunk is forwarded as a sequence of tiny writes
    /// (each flushed) instead of one — exercises every torn-read path in
    /// the frame codec without breaking byte content.
    pub torn_rate: f64,
    /// Maximum bytes per torn sub-write (≥ 1 when `torn_rate > 0`).
    pub torn_chunk: usize,
    /// Probability the connection is reset (both sides shut down) instead
    /// of forwarding the chunk.
    pub reset_rate: f64,
    /// Probability one bit of one byte of the chunk is flipped before
    /// forwarding — must surface as a typed CRC/length error at the
    /// receiving codec, never as phantom data.
    pub corrupt_rate: f64,
}

impl ChaosPlan {
    /// The no-chaos plan: every rate zero. Proxying under it is a pure
    /// byte pump — bit-identical to a direct connection.
    pub fn none() -> Self {
        ChaosPlan {
            seed: 0,
            delay_rate: 0.0,
            delay_ms_max: 5,
            stall_rate: 0.0,
            stall_ms: 100,
            torn_rate: 0.0,
            torn_chunk: 7,
            reset_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }

    /// True when no injection can ever fire.
    pub fn is_none(&self) -> bool {
        self.delay_rate == 0.0
            && self.stall_rate == 0.0
            && self.torn_rate == 0.0
            && self.reset_rate == 0.0
            && self.corrupt_rate == 0.0
    }

    /// Reject structurally invalid plans: rates outside `[0, 1]`, a
    /// non-finite rate, or an active fault with a degenerate magnitude.
    pub fn validate(&self) -> Result<(), ServerError> {
        let rates = [
            ("delay_rate", self.delay_rate),
            ("stall_rate", self.stall_rate),
            ("torn_rate", self.torn_rate),
            ("reset_rate", self.reset_rate),
            ("corrupt_rate", self.corrupt_rate),
        ];
        for (name, rate) in rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(ServerError::Malformed(format!(
                    "chaos plan {name} {rate} outside [0, 1]"
                )));
            }
        }
        if self.delay_rate > 0.0 && self.delay_ms_max == 0 {
            return Err(ServerError::Malformed(
                "chaos plan delays enabled with delay_ms_max = 0".into(),
            ));
        }
        if self.stall_rate > 0.0 && self.stall_ms == 0 {
            return Err(ServerError::Malformed(
                "chaos plan stalls enabled with stall_ms = 0".into(),
            ));
        }
        if self.torn_rate > 0.0 && self.torn_chunk == 0 {
            return Err(ServerError::Malformed(
                "chaos plan torn writes enabled with torn_chunk = 0".into(),
            ));
        }
        Ok(())
    }
}

/// Injection counters, shared between the proxy and its observer. All
/// loads are `Relaxed`: the stats are a monitoring surface, not a
/// synchronization point.
#[derive(Debug, Default)]
struct StatsInner {
    connections: AtomicU64,
    forwarded_bytes: AtomicU64,
    delays: AtomicU64,
    stalls: AtomicU64,
    torn_chunks: AtomicU64,
    resets: AtomicU64,
    corrupted_bytes: AtomicU64,
}

/// A cheap cloneable handle onto a proxy's injection counters.
#[derive(Debug, Clone, Default)]
pub struct ChaosStats(Arc<StatsInner>);

impl ChaosStats {
    /// Connections accepted by the proxy.
    pub fn connections(&self) -> u64 {
        self.0.connections.load(Ordering::Relaxed)
    }

    /// Total payload bytes pumped (both directions).
    pub fn forwarded_bytes(&self) -> u64 {
        self.0.forwarded_bytes.load(Ordering::Relaxed)
    }

    /// Chunks delayed.
    pub fn delays(&self) -> u64 {
        self.0.delays.load(Ordering::Relaxed)
    }

    /// Mid-chunk stalls injected.
    pub fn stalls(&self) -> u64 {
        self.0.stalls.load(Ordering::Relaxed)
    }

    /// Chunks forwarded as torn sub-writes.
    pub fn torn_chunks(&self) -> u64 {
        self.0.torn_chunks.load(Ordering::Relaxed)
    }

    /// Connections reset by the plan.
    pub fn resets(&self) -> u64 {
        self.0.resets.load(Ordering::Relaxed)
    }

    /// Bytes corrupted in flight.
    pub fn corrupted_bytes(&self) -> u64 {
        self.0.corrupted_bytes.load(Ordering::Relaxed)
    }

    /// Sum of all injection events (everything except clean forwards).
    pub fn injections(&self) -> u64 {
        self.delays() + self.stalls() + self.torn_chunks() + self.resets() + self.corrupted_bytes()
    }
}

/// fnv1a-64 over a byte string — the same derivation discipline the
/// simulator and obs span IDs use for seeded sub-streams.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Splitmix64 decision stream; one per `(connection, direction)`.
struct ChaosRng(u64);

impl ChaosRng {
    /// Derive the stream for `conn`/`direction` under `seed`.
    fn for_link(seed: u64, conn: u64, direction: &str) -> Self {
        let mut key = Vec::with_capacity(direction.len() + 17);
        key.extend_from_slice(b"chaos/");
        key.extend_from_slice(&seed.to_le_bytes());
        key.extend_from_slice(&conn.to_le_bytes());
        key.extend_from_slice(direction.as_bytes());
        ChaosRng(fnv1a(&key))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` from the top 53 bits.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[1, max]` (returns 1 when `max` ≤ 1).
    fn range1(&mut self, max: u64) -> u64 {
        if max <= 1 {
            1
        } else {
            1 + self.next() % max
        }
    }
}

/// A seeded chaos TCP proxy: listen on a loopback port, forward every
/// accepted connection to `upstream`, and apply the plan's injections to
/// each forwarded chunk in both directions.
///
/// Dropping the proxy (or calling [`ChaosProxy::shutdown`]) closes the
/// listener and joins every pump thread; live proxied connections are
/// reset, which the resilient client surfaces as a transient error.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    pumps: Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: ChaosStats,
}

/// Poll interval pump threads use to notice shutdown while idle.
const PUMP_POLL: Duration = Duration::from_millis(20);

impl ChaosProxy {
    /// Validate `plan`, bind a fresh loopback port and start proxying to
    /// `upstream`.
    pub fn start(upstream: SocketAddr, plan: ChaosPlan) -> Result<ChaosProxy, ServerError> {
        plan.validate()?;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| ServerError::Io(format!("chaos proxy bind: {e}")))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServerError::Io(format!("chaos proxy local_addr: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let pumps: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let stats = ChaosStats::default();
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let pumps = Arc::clone(&pumps);
            let stats = stats.clone();
            std::thread::Builder::new()
                .name("vesta-chaos-accept".to_string())
                .spawn(move || {
                    accept_loop(&listener, upstream, &plan, &shutdown, &pumps, &stats);
                })
                .map_err(|e| ServerError::Io(format!("spawn chaos accept thread: {e}")))?
        };
        Ok(ChaosProxy {
            local_addr,
            shutdown,
            accept: Some(accept),
            pumps,
            stats,
        })
    }

    /// The proxy's listening address — point the client here instead of
    /// at the server.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live injection counters.
    pub fn stats(&self) -> ChaosStats {
        self.stats.clone()
    }

    /// Stop accepting, reset live links and join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // Self-connect to unblock accept().
            // vesta-lint: allow(swallowed-result, reason = "wakeup poke at the accept loop; if the connect fails the listener is already gone, which is the goal state")
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.pumps.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: &ChaosPlan,
    shutdown: &Arc<AtomicBool>,
    pumps: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    stats: &ChaosStats,
) {
    let mut conn_index: u64 = 0;
    loop {
        let (client, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        stats.0.connections.fetch_add(1, Ordering::Relaxed);
        let server = match TcpStream::connect(upstream) {
            Ok(s) => s,
            // Upstream refused (drained or dead): drop the client, which
            // sees a reset — exactly what a dead backend looks like.
            Err(_) => continue,
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        for (src, dst, dir) in [
            (&client, &server, "c2s"),
            (&server, &client, "s2c"),
        ] {
            let (Ok(src), Ok(dst)) = (src.try_clone(), dst.try_clone()) else {
                continue;
            };
            let rng = ChaosRng::for_link(plan.seed, conn_index, dir);
            let plan = plan.clone();
            let shutdown = Arc::clone(shutdown);
            let stats = stats.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("vesta-chaos-{dir}"))
                .spawn(move || pump(src, dst, &plan, rng, &shutdown, &stats));
            if let Ok(handle) = spawned {
                pumps.lock().push(handle);
            }
        }
        conn_index += 1;
        // Reap finished pump threads so a long chaos run does not hoard
        // join handles.
        pumps.lock().retain(|h| !h.is_finished());
    }
}

/// Forward `src` → `dst` chunk by chunk, applying the plan's injections
/// in a fixed decision order (reset, corrupt, delay, stall/torn) drawn
/// from this link's seeded stream.
fn pump(
    mut src: TcpStream,
    mut dst: TcpStream,
    plan: &ChaosPlan,
    mut rng: ChaosRng,
    shutdown: &AtomicBool,
    stats: &ChaosStats,
) {
    let _ = src.set_read_timeout(Some(PUMP_POLL));
    let mut buf = [0u8; 4096];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: propagate the half-close and stop.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        };
        let chunk = &mut buf[..n];

        if plan.reset_rate > 0.0 && rng.f64() < plan.reset_rate {
            stats.0.resets.fetch_add(1, Ordering::Relaxed);
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        if plan.corrupt_rate > 0.0 && rng.f64() < plan.corrupt_rate {
            let at = (rng.next() as usize) % chunk.len();
            let bit = (rng.next() % 8) as u8;
            chunk[at] ^= 1 << bit;
            stats.0.corrupted_bytes.fetch_add(1, Ordering::Relaxed);
        }
        if plan.delay_rate > 0.0 && rng.f64() < plan.delay_rate {
            stats.0.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(rng.range1(plan.delay_ms_max)));
        }

        let write_failed = if plan.stall_rate > 0.0 && rng.f64() < plan.stall_rate {
            // Mid-frame stall: half the chunk, silence, then the rest.
            stats.0.stalls.fetch_add(1, Ordering::Relaxed);
            let split = (chunk.len() / 2).max(1);
            write_all(&mut dst, &chunk[..split]).is_err() || {
                std::thread::sleep(Duration::from_millis(plan.stall_ms));
                write_all(&mut dst, &chunk[split..]).is_err()
            }
        } else if plan.torn_rate > 0.0 && rng.f64() < plan.torn_rate {
            stats.0.torn_chunks.fetch_add(1, Ordering::Relaxed);
            chunk
                .chunks(plan.torn_chunk.max(1))
                .any(|piece| write_all(&mut dst, piece).is_err())
        } else {
            write_all(&mut dst, chunk).is_err()
        };
        if write_failed {
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        stats.0.forwarded_bytes.fetch_add(n as u64, Ordering::Relaxed);
    }
}

fn write_all(dst: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    dst.write_all(bytes)?;
    dst.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_structurally_inert_and_valid() {
        let plan = ChaosPlan::none();
        assert!(plan.is_none());
        plan.validate().expect("none() validates");
    }

    #[test]
    fn invalid_plans_are_typed_errors() {
        let mut plan = ChaosPlan::none();
        plan.reset_rate = 1.5;
        assert!(matches!(
            plan.validate(),
            Err(ServerError::Malformed(_))
        ));
        let mut plan = ChaosPlan::none();
        plan.corrupt_rate = f64::NAN;
        assert!(matches!(
            plan.validate(),
            Err(ServerError::Malformed(_))
        ));
        let mut plan = ChaosPlan::none();
        plan.torn_rate = 0.5;
        plan.torn_chunk = 0;
        assert!(matches!(
            plan.validate(),
            Err(ServerError::Malformed(_))
        ));
        let mut plan = ChaosPlan::none();
        plan.stall_rate = 0.1;
        plan.stall_ms = 0;
        assert!(matches!(
            plan.validate(),
            Err(ServerError::Malformed(_))
        ));
    }

    #[test]
    fn decision_streams_are_seeded_and_link_disjoint() {
        let mut a = ChaosRng::for_link(7, 0, "c2s");
        let mut a2 = ChaosRng::for_link(7, 0, "c2s");
        let mut b = ChaosRng::for_link(7, 0, "s2c");
        let mut c = ChaosRng::for_link(7, 1, "c2s");
        let draws_a: Vec<u64> = (0..16).map(|_| a.next()).collect();
        let draws_a2: Vec<u64> = (0..16).map(|_| a2.next()).collect();
        let draws_b: Vec<u64> = (0..16).map(|_| b.next()).collect();
        let draws_c: Vec<u64> = (0..16).map(|_| c.next()).collect();
        assert_eq!(draws_a, draws_a2, "same link, same stream");
        assert_ne!(draws_a, draws_b, "directions draw disjoint streams");
        assert_ne!(draws_a, draws_c, "connections draw disjoint streams");
        for mut rng in [ChaosRng::for_link(7, 0, "c2s")] {
            for _ in 0..256 {
                let u = rng.f64();
                assert!((0.0..1.0).contains(&u));
            }
        }
    }

    /// A none() proxy in front of a raw TCP echo must be a transparent
    /// byte pump: what goes in comes out, byte for byte.
    #[test]
    fn none_proxy_echoes_bit_identically() {
        let echo = TcpListener::bind("127.0.0.1:0").expect("echo binds");
        let echo_addr = echo.local_addr().expect("echo addr");
        let echo_thread = std::thread::spawn(move || {
            let (mut sock, _) = echo.accept().expect("echo accepts");
            let mut buf = [0u8; 1024];
            loop {
                match sock.read(&mut buf) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => {
                        if sock.write_all(&buf[..n]).is_err() {
                            return;
                        }
                    }
                }
            }
        });

        let mut proxy = ChaosProxy::start(echo_addr, ChaosPlan::none()).expect("proxy starts");
        let mut client = TcpStream::connect(proxy.local_addr()).expect("client connects");
        let payload: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        client.write_all(&payload).expect("writes");
        let mut back = vec![0u8; payload.len()];
        client.read_exact(&mut back).expect("echo returns");
        assert_eq!(back, payload, "none() proxy altered bytes");
        assert_eq!(proxy.stats().injections(), 0, "none() proxy injected");
        drop(client);
        proxy.shutdown();
        let _ = echo_thread.join();
    }
}
