//! # vesta-served
//!
//! A long-running, multi-tenant prediction server over the trained Vesta
//! knowledge, speaking `vesta-wire/1` — a length-prefixed, CRC-32-framed
//! binary protocol that reuses the codec discipline of the core crate's
//! absorption journal (little-endian fields, floats as IEEE-754 bit
//! patterns, torn or corrupt frames surface as typed errors, never as
//! panics or phantom data).
//!
//! The pieces:
//!
//! * [`wire`] — the typed request/response schema and frame codec shared
//!   byte-for-byte by the server and the in-crate [`VestaClient`].
//! * [`Server`] — a thread-per-connection TCP listener in front of a
//!   tenant registry: each tenant id maps to its own
//!   [`vesta_core::Knowledge`] handle and therefore its own supervisor
//!   (admission gate, breakers, deadline budget).
//! * Drain-and-swap publish — [`Server::publish`] folds a tenant's
//!   absorbed predictions through the crash-consistent journal, rebuilds
//!   a handle via [`vesta_core::Knowledge::recover`], proves it
//!   bit-identical to the live one with
//!   [`vesta_core::KnowledgeSnapshot::same_state`], and only then swaps
//!   the `Arc`. In-flight requests finish on the old handle; new
//!   requests land on the recovered one.
//! * A `METRICS` wire verb returning the byte-stable `vesta-telemetry/1`
//!   snapshot, including the server's own `served.*` counter family
//!   (connections, frames, per-tenant outcome mix, drain events).
//!
//! ```no_run
//! use vesta_served::{Server, ServerConfig, VestaClient};
//! use vesta_core::{PredictOptions, Knowledge};
//!
//! # fn demo(knowledge: Knowledge) -> Result<(), vesta_served::ServerError> {
//! let server = Server::start(ServerConfig::default())?;
//! server.add_tenant("alpha", knowledge, std::env::temp_dir().join("alpha.vjl"))?;
//! let mut client = VestaClient::connect(server.local_addr())?;
//! let reply = client.predict("alpha", &["Spark-kmeans"], PredictOptions::default())?;
//! assert_eq!(reply.outcomes.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod server;
pub mod wire;

pub use client::VestaClient;
pub use server::{Server, ServerConfig};
pub use wire::{
    FrameEvent, PredictReply, Request, Response, WireOutcome, WirePrediction, MAX_FRAME_LEN,
    WIRE_PROTOCOL, WIRE_VERSION,
};

/// Everything that can go wrong on either side of the wire.
///
/// Framing problems ([`ServerError::Truncated`], [`ServerError::Checksum`],
/// [`ServerError::Oversize`], [`ServerError::Malformed`]) are typed —
/// a corrupt frame can never panic the peer. Server-side refusals
/// ([`ServerError::UnknownTenant`], [`ServerError::UnknownWorkload`],
/// [`ServerError::UnsupportedVersion`]) round-trip through the `ERR` wire
/// verb, so a client observes the same variant the server constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServerError {
    /// Socket-level failure (connect, read, write, bind).
    Io(String),
    /// The stream ended mid-frame.
    Truncated,
    /// The payload did not match the frame's CRC-32.
    Checksum {
        /// Checksum carried by the frame header.
        expected: u32,
        /// Checksum recomputed over the received payload.
        found: u32,
    },
    /// The frame header declared a payload longer than [`MAX_FRAME_LEN`].
    Oversize {
        /// The declared payload length.
        len: u32,
    },
    /// The payload decoded to no well-formed message.
    Malformed(String),
    /// Version negotiation failed.
    UnsupportedVersion {
        /// The version the peer asked for.
        requested: u32,
        /// The single version this build speaks.
        supported: u32,
    },
    /// The request named a tenant the registry does not hold.
    UnknownTenant(String),
    /// The request named a workload outside the extended suite.
    UnknownWorkload(String),
    /// A server-side failure that is not a protocol violation (journal
    /// IO, a publish whose recovered state diverged, …).
    Internal {
        /// Whether retrying the same request may succeed.
        transient: bool,
        /// Human-readable description.
        message: String,
    },
}

impl ServerError {
    /// True when the failure is a property of the environment at this
    /// instant — a socket hiccup or a transient server-side error — so
    /// retrying (a reconnect, a resend) may succeed. Framing and schema
    /// violations are deterministic and retrying them is futile.
    pub fn is_transient(&self) -> bool {
        match self {
            ServerError::Io(_) => true,
            ServerError::Internal { transient, .. } => *transient,
            _ => false,
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(m) => write!(f, "io: {m}"),
            ServerError::Truncated => write!(f, "stream ended mid-frame"),
            ServerError::Checksum { expected, found } => write!(
                f,
                "frame checksum mismatch: header {expected:#010x}, payload {found:#010x}"
            ),
            ServerError::Oversize { len } => write!(
                f,
                "frame declares {len} payload bytes, over the {MAX_FRAME_LEN}-byte cap"
            ),
            ServerError::Malformed(m) => write!(f, "malformed payload: {m}"),
            ServerError::UnsupportedVersion {
                requested,
                supported,
            } => write!(
                f,
                "unsupported wire version {requested} (this build speaks {supported})"
            ),
            ServerError::UnknownTenant(t) => write!(f, "unknown tenant '{t}'"),
            ServerError::UnknownWorkload(w) => write!(f, "unknown workload '{w}'"),
            ServerError::Internal { message, .. } => write!(f, "server error: {message}"),
        }
    }
}

impl std::error::Error for ServerError {}
