//! # vesta-served
//!
//! A long-running, multi-tenant prediction server over the trained Vesta
//! knowledge, speaking `vesta-wire/1` — a length-prefixed, CRC-32-framed
//! binary protocol that reuses the codec discipline of the core crate's
//! absorption journal (little-endian fields, floats as IEEE-754 bit
//! patterns, torn or corrupt frames surface as typed errors, never as
//! panics or phantom data).
//!
//! The pieces:
//!
//! * [`wire`] — the typed request/response schema and frame codec shared
//!   byte-for-byte by the server and the in-crate [`VestaClient`].
//! * [`Server`] — a thread-per-connection TCP listener in front of a
//!   tenant registry: each tenant id maps to its own
//!   [`vesta_core::Knowledge`] handle and therefore its own supervisor
//!   (admission gate, breakers, deadline budget).
//! * Drain-and-swap publish — [`Server::publish`] folds a tenant's
//!   absorbed predictions through the crash-consistent journal, rebuilds
//!   a handle via [`vesta_core::Knowledge::recover`], proves it
//!   bit-identical to the live one with
//!   [`vesta_core::KnowledgeSnapshot::same_state`], and only then swaps
//!   the `Arc`. In-flight requests finish on the old handle; new
//!   requests land on the recovered one.
//! * A `METRICS` wire verb returning the byte-stable `vesta-telemetry/1`
//!   snapshot, including the server's own `served.*` counter family
//!   (connections, frames, per-tenant outcome mix, drain events).
//!
//! ```no_run
//! use vesta_served::{Server, ServerConfig, VestaClient};
//! use vesta_core::{PredictOptions, Knowledge};
//!
//! # fn demo(knowledge: Knowledge) -> Result<(), vesta_served::ServerError> {
//! let server = Server::start(ServerConfig::default())?;
//! server.add_tenant("alpha", knowledge, std::env::temp_dir().join("alpha.vjl"))?;
//! let mut client = VestaClient::connect(server.local_addr())?;
//! let reply = client.predict("alpha", &["Spark-kmeans"], PredictOptions::default())?;
//! assert_eq!(reply.outcomes.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod chaos;
pub mod client;
pub mod fuzzing;
pub mod server;
pub mod wire;

pub use chaos::{ChaosPlan, ChaosProxy, ChaosStats};
pub use client::{ClientConfig, VestaClient};
pub use server::{DrainReport, Server, ServerConfig};
pub use wire::{
    FrameEvent, PredictReply, Request, Response, WireOutcome, WirePrediction, MAX_FRAME_LEN,
    WIRE_PROTOCOL, WIRE_VERSION,
};

/// One entry in the ledger a [`ServerError::RetryBudgetExhausted`] error
/// carries: what each attempt saw and how long the client backed off
/// before the next one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryAttempt {
    /// 0-based attempt index.
    pub attempt: u32,
    /// Rendered error the attempt died with.
    pub error: String,
    /// Whether that error was classified retryable at the time.
    pub transient: bool,
    /// Backoff slept *after* this attempt, milliseconds (0 on the last).
    pub backoff_ms: u64,
}

/// Everything that can go wrong on either side of the wire.
///
/// Framing problems ([`ServerError::Truncated`], [`ServerError::Checksum`],
/// [`ServerError::Oversize`], [`ServerError::Malformed`]) are typed —
/// a corrupt frame can never panic the peer. Server-side refusals
/// ([`ServerError::UnknownTenant`], [`ServerError::UnknownWorkload`],
/// [`ServerError::UnsupportedVersion`], [`ServerError::Overloaded`],
/// [`ServerError::RateLimited`]) round-trip through the `ERR` wire
/// verb, so a client observes the same variant the server constructed.
/// Client-local failures ([`ServerError::Timeout`],
/// [`ServerError::RetryBudgetExhausted`]) have wire codes too, so a relay
/// can forward them without flattening the type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServerError {
    /// Socket-level failure (connect, read, write, bind).
    Io(String),
    /// The stream ended mid-frame.
    Truncated,
    /// The payload did not match the frame's CRC-32.
    Checksum {
        /// Checksum carried by the frame header.
        expected: u32,
        /// Checksum recomputed over the received payload.
        found: u32,
    },
    /// The frame header declared a payload longer than [`MAX_FRAME_LEN`].
    Oversize {
        /// The declared payload length.
        len: u32,
    },
    /// The payload decoded to no well-formed message.
    Malformed(String),
    /// Version negotiation failed.
    UnsupportedVersion {
        /// The version the peer asked for.
        requested: u32,
        /// The single version this build speaks.
        supported: u32,
    },
    /// The request named a tenant the registry does not hold.
    UnknownTenant(String),
    /// The request named a workload outside the extended suite.
    UnknownWorkload(String),
    /// A server-side failure that is not a protocol violation (journal
    /// IO, a publish whose recovered state diverged, …).
    Internal {
        /// Whether retrying the same request may succeed.
        transient: bool,
        /// Human-readable description.
        message: String,
    },
    /// A read or write deadline fired with the peer silent: no frame
    /// progress for the configured window. The connection is dead to the
    /// caller; reconnect-and-retry may succeed.
    Timeout {
        /// How long the caller waited without a byte of progress.
        waited_ms: u64,
    },
    /// The server shed this connection at admission: its connection count
    /// was at the configured bound. Transient by construction — retrying
    /// after a backoff lands in a freed slot.
    Overloaded {
        /// Live connections when the shed happened.
        active: u32,
        /// The configured connection bound.
        limit: u32,
    },
    /// The connection exceeded the server's per-connection frame-rate cap
    /// and was dropped. Transient: a reconnecting client that paces
    /// itself is served normally.
    RateLimited {
        /// The configured cap, frames per second.
        limit: u32,
    },
    /// A client retry loop ran out of budget. Carries the full attempt
    /// ledger so callers (and logs) can see every intermediate error and
    /// backoff instead of only the last one.
    RetryBudgetExhausted {
        /// One entry per attempt, in order.
        attempts: Vec<RetryAttempt>,
    },
}

impl ServerError {
    /// True when the failure is a property of the environment at this
    /// instant, so retrying (a reconnect, a resend) may succeed: socket
    /// hiccups, timeouts, admission sheds, rate-limit drops, and wire
    /// damage ([`ServerError::Truncated`], [`ServerError::Checksum`] —
    /// a fresh connection re-sends the frame intact). Schema violations
    /// ([`ServerError::Malformed`], version/tenant/workload refusals) are
    /// deterministic and retrying them is futile, as is
    /// [`ServerError::RetryBudgetExhausted`] itself: the budget is spent.
    pub fn is_transient(&self) -> bool {
        match self {
            ServerError::Io(_)
            | ServerError::Truncated
            | ServerError::Checksum { .. }
            | ServerError::Timeout { .. }
            | ServerError::Overloaded { .. }
            | ServerError::RateLimited { .. } => true,
            ServerError::Internal { transient, .. } => *transient,
            _ => false,
        }
    }
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(m) => write!(f, "io: {m}"),
            ServerError::Truncated => write!(f, "stream ended mid-frame"),
            ServerError::Checksum { expected, found } => write!(
                f,
                "frame checksum mismatch: header {expected:#010x}, payload {found:#010x}"
            ),
            ServerError::Oversize { len } => write!(
                f,
                "frame declares {len} payload bytes, over the {MAX_FRAME_LEN}-byte cap"
            ),
            ServerError::Malformed(m) => write!(f, "malformed payload: {m}"),
            ServerError::UnsupportedVersion {
                requested,
                supported,
            } => write!(
                f,
                "unsupported wire version {requested} (this build speaks {supported})"
            ),
            ServerError::UnknownTenant(t) => write!(f, "unknown tenant '{t}'"),
            ServerError::UnknownWorkload(w) => write!(f, "unknown workload '{w}'"),
            ServerError::Internal { message, .. } => write!(f, "server error: {message}"),
            ServerError::Timeout { waited_ms } => {
                write!(f, "peer made no frame progress for {waited_ms} ms")
            }
            ServerError::Overloaded { active, limit } => write!(
                f,
                "server overloaded: {active} live connection(s) at the bound of {limit}"
            ),
            ServerError::RateLimited { limit } => {
                write!(f, "connection exceeded the {limit} frames/s cap")
            }
            ServerError::RetryBudgetExhausted { attempts } => {
                write!(f, "retry budget exhausted after {} attempt(s): [", attempts.len())?;
                for (i, a) in attempts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "#{} {}", a.attempt, a.error)?;
                }
                write!(f, "]")
            }
        }
    }
}

impl std::error::Error for ServerError {}
