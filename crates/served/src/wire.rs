//! The `vesta-wire/1` protocol: framing and the typed message schema.
//!
//! Every message travels as one frame:
//!
//! ```text
//! [u32 le payload_len][u32 le crc32(payload)][payload bytes]
//! ```
//!
//! — the exact discipline of the core crate's absorption journal
//! ([`vesta_core::crc32`] is the same reflected IEEE 802.3 polynomial),
//! with the same 64 MB cap on a single record. The payload's first byte
//! is the verb; the body is little-endian fields read through a bounded
//! cursor, floats as IEEE-754 bit patterns (exact round-trip, NaN
//! included), strings as `[u32 len][utf8]`. A frame that is truncated,
//! oversized, checksum-damaged or undecodable yields a typed
//! [`ServerError`] — never a panic, never a partial message.

use std::io::{Read, Write};

use vesta_core::{crc32, PredictOptions, SupervisorConfig, SupervisorReport};

use crate::ServerError;

/// Protocol name, as documented and as the METRICS snapshot schema pins.
pub const WIRE_PROTOCOL: &str = "vesta-wire/1";

/// The single wire version this build speaks.
pub const WIRE_VERSION: u32 = 1;

/// Largest payload either side will frame or accept; anything bigger is
/// treated as a torn/corrupt length field (journal discipline).
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

// Verb bytes. Requests stay below 128, responses at or above it, so a
// misdirected frame decodes to a typed error instead of a wrong message.
const VERB_HELLO: u8 = 1;
const VERB_PREDICT: u8 = 2;
const VERB_METRICS: u8 = 3;
const VERB_HELLO_ACK: u8 = 128;
const VERB_PREDICT_OK: u8 = 129;
const VERB_METRICS_OK: u8 = 130;
const VERB_ERR: u8 = 131;

// Error codes inside an ERR payload.
const ERR_IO: u8 = 0;
const ERR_TRUNCATED: u8 = 1;
const ERR_CHECKSUM: u8 = 2;
const ERR_OVERSIZE: u8 = 3;
const ERR_MALFORMED: u8 = 4;
const ERR_VERSION: u8 = 5;
const ERR_TENANT: u8 = 6;
const ERR_WORKLOAD: u8 = 7;
const ERR_INTERNAL: u8 = 8;
const ERR_TIMEOUT: u8 = 9;
const ERR_OVERLOADED: u8 = 10;
const ERR_RATE_LIMITED: u8 = 11;
const ERR_RETRY_EXHAUSTED: u8 = 12;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version negotiation; must be the first frame on a connection.
    Hello {
        /// The wire version the client speaks.
        version: u32,
    },
    /// Serve a batch of workloads for one tenant.
    Predict {
        /// Tenant id in the server's registry.
        tenant: String,
        /// Workload names, resolved server-side against the extended
        /// suite.
        workloads: Vec<String>,
        /// Per-request serving options, verbatim
        /// [`vesta_core::Knowledge::handle`] semantics.
        options: PredictOptions,
    },
    /// Fetch the server's `vesta-telemetry/1` snapshot.
    Metrics,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The server accepted the client's version.
    HelloAck {
        /// The version the connection will speak.
        version: u32,
    },
    /// Outcome of a `PREDICT`.
    Predict(PredictReply),
    /// The telemetry snapshot, `vesta-telemetry/1` JSON.
    Metrics {
        /// Byte-stable snapshot text.
        snapshot_json: String,
    },
    /// The request failed; the variant round-trips the server's error.
    Error(ServerError),
}

/// The decoded body of a successful `PREDICT`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictReply {
    /// The tenant's publish generation that served this batch; bumps by
    /// one on every drain-and-swap, so a client can tell old from new
    /// knowledge across a publish.
    pub generation: u64,
    /// Per-request outcomes, in request order.
    pub outcomes: Vec<WireOutcome>,
    /// Counters of the supervisor that served the batch.
    pub report: SupervisorReport,
}

impl PredictReply {
    /// How many outcomes carry `label` (`"ok"`, `"degraded"`, `"shed"`,
    /// `"failed"`).
    pub fn count(&self, label: &str) -> usize {
        self.outcomes.iter().filter(|o| o.label() == label).count()
    }
}

/// One request's outcome as it travels the wire — the serving facts of
/// [`vesta_core::Outcome`] without the full prediction curve.
#[derive(Debug, Clone, PartialEq)]
pub enum WireOutcome {
    /// Served cleanly.
    Ok(WirePrediction),
    /// Served, but a serving control degraded the path.
    Degraded {
        /// The degraded prediction.
        prediction: WirePrediction,
        /// Why it is degraded.
        reason: String,
    },
    /// Refused by admission control.
    Shed,
    /// Failed outright.
    Failed {
        /// Whether the server classified the error as transient.
        transient: bool,
        /// Rendered error text.
        error: String,
    },
}

impl WireOutcome {
    /// Stable lowercase label, mirroring [`vesta_core::Outcome::label`].
    pub fn label(&self) -> &'static str {
        match self {
            WireOutcome::Ok(_) => "ok",
            WireOutcome::Degraded { .. } => "degraded",
            WireOutcome::Shed => "shed",
            WireOutcome::Failed { .. } => "failed",
        }
    }

    /// The served prediction, when there is one.
    pub fn prediction(&self) -> Option<&WirePrediction> {
        match self {
            WireOutcome::Ok(p) | WireOutcome::Degraded { prediction: p, .. } => Some(p),
            _ => None,
        }
    }
}

/// The selected VM and the headline serving facts.
#[derive(Debug, Clone)]
pub struct WirePrediction {
    /// Catalog index of the selected best VM.
    pub best_vm: u32,
    /// Predicted execution time on it, seconds (bit-exact over the wire).
    pub predicted_time_s: f64,
    /// Reference-VM count the prediction consumed.
    pub reference_vms: u32,
    /// Whether the CMF solve converged.
    pub converged: bool,
}

/// Equality is bit-exact on the predicted time — the codec promises to
/// preserve every `f64` (NaN payloads included), and the round-trip tests
/// hold it to that, so `NaN == NaN` here.
impl PartialEq for WirePrediction {
    fn eq(&self, other: &WirePrediction) -> bool {
        self.best_vm == other.best_vm
            && self.predicted_time_s.to_bits() == other.predicted_time_s.to_bits()
            && self.reference_vms == other.reference_vms
            && self.converged == other.converged
    }
}

impl Eq for WirePrediction {}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// What one attempt to read a frame produced.
#[derive(Debug)]
pub enum FrameEvent {
    /// A whole, checksum-verified payload.
    Frame(Vec<u8>),
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// A read timeout fired with no frame in progress (only on sockets
    /// with a read timeout set; the server uses this to poll shutdown).
    Idle,
}

enum Fill {
    Done,
    /// EOF before the first byte — a clean close between frames.
    Eof,
    /// EOF after some bytes — the peer tore the stream mid-buffer.
    Partial,
    Idle,
    /// The stall bound fired: `stall_ticks` consecutive read timeouts
    /// passed without a single byte of progress.
    Stalled,
}

/// Fill `buf` from `r`. `allow_idle` turns a timeout **before the first
/// byte** into [`Fill::Idle`]. `stall_ticks` bounds mid-buffer stalls:
/// after that many *consecutive* zero-progress timeout ticks the fill
/// reports [`Fill::Stalled`] (0 keeps the legacy behavior of looping
/// forever, trusting the peer to eventually finish the frame).
fn fill(
    r: &mut impl Read,
    buf: &mut [u8],
    allow_idle: bool,
    stall_ticks: u32,
) -> Result<Fill, ServerError> {
    let mut got = 0;
    let mut idle_ticks = 0u32;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 => return Ok(Fill::Eof),
            Ok(0) => return Ok(Fill::Partial),
            Ok(n) => {
                got += n;
                idle_ticks = 0;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if got == 0 && allow_idle {
                    return Ok(Fill::Idle);
                }
                idle_ticks += 1;
                if stall_ticks > 0 && idle_ticks >= stall_ticks {
                    return Ok(Fill::Stalled);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServerError::Io(e.to_string())),
        }
    }
    Ok(Fill::Done)
}

/// Write one `[len][crc][payload]` frame and flush it.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), ServerError> {
    let len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    if len > MAX_FRAME_LEN {
        return Err(ServerError::Oversize { len });
    }
    let io = |e: std::io::Error| ServerError::Io(e.to_string());
    w.write_all(&len.to_le_bytes()).map_err(io)?;
    w.write_all(&crc32(payload).to_le_bytes()).map_err(io)?;
    w.write_all(payload).map_err(io)?;
    w.flush().map_err(io)
}

/// How a [`read_frame_with`] call treats read-timeout ticks (the socket's
/// `set_read_timeout` interval). The policy is what turns a silent or
/// slow-loris peer into a typed error instead of a hung thread.
#[derive(Debug, Clone, Copy)]
pub struct FrameReadPolicy {
    /// `true`: a timeout tick **before the first header byte** yields
    /// [`FrameEvent::Idle`] so the caller can poll (server shutdown
    /// flag). `false`: pre-frame ticks count against `stall_ticks` like
    /// any other — a caller that *expects* a reply wants a timeout, not
    /// an idle event.
    pub idle_event: bool,
    /// Consecutive zero-progress timeout ticks tolerated once a frame is
    /// in progress (and before it, when `idle_event` is `false`) before
    /// the read dies with [`ServerError::Timeout`]. `0` = unbounded
    /// (the legacy behavior — only safe against trusted peers).
    pub stall_ticks: u32,
    /// Length of one socket read-timeout tick in milliseconds; only used
    /// to report the total stall in the [`ServerError::Timeout`].
    pub tick_ms: u64,
}

impl FrameReadPolicy {
    /// The legacy policy [`read_frame`] uses: idle events on, no stall
    /// bound.
    pub fn trusting() -> Self {
        FrameReadPolicy {
            idle_event: true,
            stall_ticks: 0,
            tick_ms: 0,
        }
    }

    fn stall_error(&self) -> ServerError {
        ServerError::Timeout {
            waited_ms: self.tick_ms.saturating_mul(u64::from(self.stall_ticks)),
        }
    }
}

/// Read one frame. Clean EOF between frames is [`FrameEvent::Closed`];
/// EOF mid-frame is [`ServerError::Truncated`]; a checksum mismatch is
/// [`ServerError::Checksum`]. The declared length is validated against
/// [`MAX_FRAME_LEN`] before any allocation. Timeout ticks follow the
/// trusting policy: idle before a frame, looping forever inside one —
/// use [`read_frame_with`] to bound stalls.
pub fn read_frame(r: &mut impl Read) -> Result<FrameEvent, ServerError> {
    read_frame_with(r, FrameReadPolicy::trusting())
}

/// [`read_frame`] under an explicit [`FrameReadPolicy`]: the serving path
/// uses it to kill slow-loris connections (bounded mid-frame stall), the
/// client to surface a dead peer as [`ServerError::Timeout`] instead of
/// blocking forever.
pub fn read_frame_with(
    r: &mut impl Read,
    policy: FrameReadPolicy,
) -> Result<FrameEvent, ServerError> {
    let mut header = [0u8; 8];
    match fill(r, &mut header, policy.idle_event, policy.stall_ticks)? {
        Fill::Done => {}
        Fill::Eof => return Ok(FrameEvent::Closed),
        Fill::Partial => return Err(ServerError::Truncated),
        Fill::Idle => return Ok(FrameEvent::Idle),
        Fill::Stalled => return Err(policy.stall_error()),
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let expected = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_FRAME_LEN {
        return Err(ServerError::Oversize { len });
    }
    let mut payload = vec![0u8; len as usize];
    match fill(r, &mut payload, false, policy.stall_ticks)? {
        Fill::Done => {}
        Fill::Eof | Fill::Partial | Fill::Idle => return Err(ServerError::Truncated),
        Fill::Stalled => return Err(policy.stall_error()),
    }
    let found = crc32(&payload);
    if found != expected {
        return Err(ServerError::Checksum { expected, found });
    }
    Ok(FrameEvent::Frame(payload))
}

// ---------------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounded little-endian reader over a payload, journal-cursor style:
/// every take is length-checked, so a hostile count field runs out of
/// bytes instead of out of memory.
struct Cursor<'a>(&'a [u8]);

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ServerError> {
        if self.0.len() < n {
            return Err(ServerError::Malformed(format!(
                "payload needs {n} more byte(s), has {}",
                self.0.len()
            )));
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ServerError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ServerError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, ServerError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, ServerError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, ServerError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(ServerError::Malformed(format!("bad bool byte {other}"))),
        }
    }

    fn str(&mut self) -> Result<String, ServerError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?.to_vec();
        String::from_utf8(bytes)
            .map_err(|e| ServerError::Malformed(format!("string is not UTF-8: {e}")))
    }

    fn finish(self) -> Result<(), ServerError> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err(ServerError::Malformed(format!(
                "{} trailing byte(s) after a well-formed message",
                self.0.len()
            )))
        }
    }
}

const OPT_SUPERVISED: u8 = 1;
const OPT_SEQUENTIAL: u8 = 1 << 1;
const OPT_OVERRIDE: u8 = 1 << 2;

fn put_options(buf: &mut Vec<u8>, options: &PredictOptions) {
    let mut flags = 0u8;
    if options.supervised {
        flags |= OPT_SUPERVISED;
    }
    if options.sequential {
        flags |= OPT_SEQUENTIAL;
    }
    if options.supervisor.is_some() {
        flags |= OPT_OVERRIDE;
    }
    buf.push(flags);
    if let Some(cfg) = &options.supervisor {
        put_u64(buf, cfg.deadline_ms);
        put_u32(buf, cfg.breaker_threshold);
        put_u32(buf, cfg.breaker_probe_after);
        put_u64(buf, cfg.max_in_flight as u64);
    }
}

fn read_options(c: &mut Cursor<'_>) -> Result<PredictOptions, ServerError> {
    let flags = c.u8()?;
    if flags & !(OPT_SUPERVISED | OPT_SEQUENTIAL | OPT_OVERRIDE) != 0 {
        return Err(ServerError::Malformed(format!(
            "unknown option flag bits {flags:#010b}"
        )));
    }
    let supervisor = if flags & OPT_OVERRIDE != 0 {
        Some(SupervisorConfig {
            deadline_ms: c.u64()?,
            breaker_threshold: c.u32()?,
            breaker_probe_after: c.u32()?,
            max_in_flight: c.u64()? as usize,
        })
    } else {
        None
    };
    Ok(PredictOptions {
        supervised: flags & OPT_SUPERVISED != 0,
        sequential: flags & OPT_SEQUENTIAL != 0,
        supervisor,
    })
}

/// Encode a request into a frame payload.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match request {
        Request::Hello { version } => {
            buf.push(VERB_HELLO);
            put_u32(&mut buf, *version);
        }
        Request::Predict {
            tenant,
            workloads,
            options,
        } => {
            buf.push(VERB_PREDICT);
            put_str(&mut buf, tenant);
            put_u32(&mut buf, workloads.len() as u32);
            for w in workloads {
                put_str(&mut buf, w);
            }
            put_options(&mut buf, options);
        }
        Request::Metrics => buf.push(VERB_METRICS),
    }
    buf
}

/// Decode a frame payload into a request.
pub fn decode_request(payload: &[u8]) -> Result<Request, ServerError> {
    let mut c = Cursor(payload);
    let verb = c.u8()?;
    let request = match verb {
        VERB_HELLO => Request::Hello { version: c.u32()? },
        VERB_PREDICT => {
            let tenant = c.str()?;
            let n = c.u32()? as usize;
            let mut workloads = Vec::with_capacity(n.min(payload.len() / 4));
            for _ in 0..n {
                workloads.push(c.str()?);
            }
            let options = read_options(&mut c)?;
            Request::Predict {
                tenant,
                workloads,
                options,
            }
        }
        VERB_METRICS => Request::Metrics,
        other => {
            return Err(ServerError::Malformed(format!(
                "unknown request verb {other}"
            )))
        }
    };
    c.finish()?;
    Ok(request)
}

fn put_report(buf: &mut Vec<u8>, r: &SupervisorReport) {
    put_u64(buf, r.ok);
    put_u64(buf, r.degraded);
    put_u64(buf, r.shed);
    put_u64(buf, r.failed);
    put_u64(buf, r.deadline_hits);
    put_u64(buf, r.breaker_trips);
    put_u64(buf, r.breaker_refusals);
    put_u64(buf, r.breaker_probes);
    put_u64(buf, r.open_breakers as u64);
}

fn read_report(c: &mut Cursor<'_>) -> Result<SupervisorReport, ServerError> {
    Ok(SupervisorReport {
        ok: c.u64()?,
        degraded: c.u64()?,
        shed: c.u64()?,
        failed: c.u64()?,
        deadline_hits: c.u64()?,
        breaker_trips: c.u64()?,
        breaker_refusals: c.u64()?,
        breaker_probes: c.u64()?,
        open_breakers: c.u64()? as usize,
    })
}

fn put_prediction(buf: &mut Vec<u8>, p: &WirePrediction) {
    put_u32(buf, p.best_vm);
    put_f64(buf, p.predicted_time_s);
    put_u32(buf, p.reference_vms);
    buf.push(p.converged as u8);
}

fn read_prediction(c: &mut Cursor<'_>) -> Result<WirePrediction, ServerError> {
    Ok(WirePrediction {
        best_vm: c.u32()?,
        predicted_time_s: c.f64()?,
        reference_vms: c.u32()?,
        converged: c.bool()?,
    })
}

const OUTCOME_OK: u8 = 0;
const OUTCOME_DEGRADED: u8 = 1;
const OUTCOME_SHED: u8 = 2;
const OUTCOME_FAILED: u8 = 3;

fn put_outcome(buf: &mut Vec<u8>, o: &WireOutcome) {
    match o {
        WireOutcome::Ok(p) => {
            buf.push(OUTCOME_OK);
            put_prediction(buf, p);
        }
        WireOutcome::Degraded { prediction, reason } => {
            buf.push(OUTCOME_DEGRADED);
            put_prediction(buf, prediction);
            put_str(buf, reason);
        }
        WireOutcome::Shed => buf.push(OUTCOME_SHED),
        WireOutcome::Failed { transient, error } => {
            buf.push(OUTCOME_FAILED);
            buf.push(*transient as u8);
            put_str(buf, error);
        }
    }
}

fn read_outcome(c: &mut Cursor<'_>) -> Result<WireOutcome, ServerError> {
    Ok(match c.u8()? {
        OUTCOME_OK => WireOutcome::Ok(read_prediction(c)?),
        OUTCOME_DEGRADED => WireOutcome::Degraded {
            prediction: read_prediction(c)?,
            reason: c.str()?,
        },
        OUTCOME_SHED => WireOutcome::Shed,
        OUTCOME_FAILED => WireOutcome::Failed {
            transient: c.bool()?,
            error: c.str()?,
        },
        other => {
            return Err(ServerError::Malformed(format!(
                "unknown outcome tag {other}"
            )))
        }
    })
}

fn put_error(buf: &mut Vec<u8>, e: &ServerError) {
    match e {
        ServerError::Io(m) => {
            buf.push(ERR_IO);
            put_str(buf, m);
        }
        ServerError::Truncated => buf.push(ERR_TRUNCATED),
        ServerError::Checksum { expected, found } => {
            buf.push(ERR_CHECKSUM);
            put_u32(buf, *expected);
            put_u32(buf, *found);
        }
        ServerError::Oversize { len } => {
            buf.push(ERR_OVERSIZE);
            put_u32(buf, *len);
        }
        ServerError::Malformed(m) => {
            buf.push(ERR_MALFORMED);
            put_str(buf, m);
        }
        ServerError::UnsupportedVersion {
            requested,
            supported,
        } => {
            buf.push(ERR_VERSION);
            put_u32(buf, *requested);
            put_u32(buf, *supported);
        }
        ServerError::UnknownTenant(t) => {
            buf.push(ERR_TENANT);
            put_str(buf, t);
        }
        ServerError::UnknownWorkload(w) => {
            buf.push(ERR_WORKLOAD);
            put_str(buf, w);
        }
        // In-crate the match is exhaustive; a future variant added here
        // must pick a wire code (or travel as ERR_INTERNAL) explicitly.
        ServerError::Internal { transient, message } => {
            buf.push(ERR_INTERNAL);
            buf.push(*transient as u8);
            put_str(buf, message);
        }
        ServerError::Timeout { waited_ms } => {
            buf.push(ERR_TIMEOUT);
            put_u64(buf, *waited_ms);
        }
        ServerError::Overloaded { active, limit } => {
            buf.push(ERR_OVERLOADED);
            put_u32(buf, *active);
            put_u32(buf, *limit);
        }
        ServerError::RateLimited { limit } => {
            buf.push(ERR_RATE_LIMITED);
            put_u32(buf, *limit);
        }
        ServerError::RetryBudgetExhausted { attempts } => {
            buf.push(ERR_RETRY_EXHAUSTED);
            put_u32(buf, attempts.len() as u32);
            for a in attempts {
                put_u32(buf, a.attempt);
                buf.push(a.transient as u8);
                put_u64(buf, a.backoff_ms);
                put_str(buf, &a.error);
            }
        }
    }
}

fn read_error(c: &mut Cursor<'_>) -> Result<ServerError, ServerError> {
    Ok(match c.u8()? {
        ERR_IO => ServerError::Io(c.str()?),
        ERR_TRUNCATED => ServerError::Truncated,
        ERR_CHECKSUM => ServerError::Checksum {
            expected: c.u32()?,
            found: c.u32()?,
        },
        ERR_OVERSIZE => ServerError::Oversize { len: c.u32()? },
        ERR_MALFORMED => ServerError::Malformed(c.str()?),
        ERR_VERSION => ServerError::UnsupportedVersion {
            requested: c.u32()?,
            supported: c.u32()?,
        },
        ERR_TENANT => ServerError::UnknownTenant(c.str()?),
        ERR_WORKLOAD => ServerError::UnknownWorkload(c.str()?),
        ERR_INTERNAL => ServerError::Internal {
            transient: c.bool()?,
            message: c.str()?,
        },
        ERR_TIMEOUT => ServerError::Timeout {
            waited_ms: c.u64()?,
        },
        ERR_OVERLOADED => ServerError::Overloaded {
            active: c.u32()?,
            limit: c.u32()?,
        },
        ERR_RATE_LIMITED => ServerError::RateLimited { limit: c.u32()? },
        ERR_RETRY_EXHAUSTED => {
            let n = c.u32()? as usize;
            let mut attempts = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                attempts.push(crate::RetryAttempt {
                    attempt: c.u32()?,
                    transient: c.bool()?,
                    backoff_ms: c.u64()?,
                    error: c.str()?,
                });
            }
            ServerError::RetryBudgetExhausted { attempts }
        }
        other => {
            return Err(ServerError::Malformed(format!(
                "unknown error code {other}"
            )))
        }
    })
}

/// Encode a response into a frame payload.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match response {
        Response::HelloAck { version } => {
            buf.push(VERB_HELLO_ACK);
            put_u32(&mut buf, *version);
        }
        Response::Predict(reply) => {
            buf.push(VERB_PREDICT_OK);
            put_u64(&mut buf, reply.generation);
            put_report(&mut buf, &reply.report);
            put_u32(&mut buf, reply.outcomes.len() as u32);
            for o in &reply.outcomes {
                put_outcome(&mut buf, o);
            }
        }
        Response::Metrics { snapshot_json } => {
            buf.push(VERB_METRICS_OK);
            put_str(&mut buf, snapshot_json);
        }
        Response::Error(e) => {
            buf.push(VERB_ERR);
            put_error(&mut buf, e);
        }
    }
    buf
}

/// Decode a frame payload into a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, ServerError> {
    let mut c = Cursor(payload);
    let verb = c.u8()?;
    let response = match verb {
        VERB_HELLO_ACK => Response::HelloAck { version: c.u32()? },
        VERB_PREDICT_OK => {
            let generation = c.u64()?;
            let report = read_report(&mut c)?;
            let n = c.u32()? as usize;
            let mut outcomes = Vec::with_capacity(n.min(payload.len()));
            for _ in 0..n {
                outcomes.push(read_outcome(&mut c)?);
            }
            Response::Predict(PredictReply {
                generation,
                outcomes,
                report,
            })
        }
        VERB_METRICS_OK => Response::Metrics {
            snapshot_json: c.str()?,
        },
        VERB_ERR => Response::Error(read_error(&mut c)?),
        other => {
            return Err(ServerError::Malformed(format!(
                "unknown response verb {other}"
            )))
        }
    };
    c.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    // The `codec_*` tests are pure in-memory (no sockets, no filesystem,
    // no clock), so CI runs them under Miri:
    // `cargo miri test -p vesta-served --lib codec_`.

    fn sample_reply() -> PredictReply {
        PredictReply {
            generation: 3,
            outcomes: vec![
                WireOutcome::Ok(WirePrediction {
                    best_vm: 17,
                    predicted_time_s: 123.456,
                    reference_vms: 3,
                    converged: true,
                }),
                WireOutcome::Degraded {
                    prediction: WirePrediction {
                        best_vm: 4,
                        predicted_time_s: f64::NAN,
                        reference_vms: 2,
                        converged: false,
                    },
                    reason: "2 reference VM(s) replaced".into(),
                },
                WireOutcome::Shed,
                WireOutcome::Failed {
                    transient: true,
                    error: "deadline exceeded".into(),
                },
            ],
            report: SupervisorReport {
                ok: 1,
                degraded: 1,
                shed: 1,
                failed: 1,
                deadline_hits: 1,
                breaker_trips: 2,
                breaker_refusals: 3,
                breaker_probes: 4,
                open_breakers: 5,
            },
        }
    }

    fn roundtrip_request(r: &Request) -> Request {
        decode_request(&encode_request(r)).expect("request decodes")
    }

    fn roundtrip_response(r: &Response) -> Response {
        decode_response(&encode_response(r)).expect("response decodes")
    }

    #[test]
    fn codec_requests_round_trip() {
        let hello = Request::Hello {
            version: WIRE_VERSION,
        };
        assert_eq!(roundtrip_request(&hello), hello);
        let metrics = Request::Metrics;
        assert_eq!(roundtrip_request(&metrics), metrics);
        let predict = Request::Predict {
            tenant: "alpha".into(),
            workloads: vec!["Spark-kmeans".into(), "Hadoop-join".into()],
            options: PredictOptions {
                supervised: true,
                sequential: false,
                supervisor: Some(SupervisorConfig {
                    deadline_ms: 250,
                    breaker_threshold: 3,
                    breaker_probe_after: 2,
                    max_in_flight: 8,
                }),
            },
        };
        assert_eq!(roundtrip_request(&predict), predict);
    }

    #[test]
    fn codec_responses_round_trip_bit_exact() {
        let reply = Response::Predict(sample_reply());
        let back = roundtrip_response(&reply);
        assert_eq!(back, reply);
        // NaN predicted time survives as the same bit pattern even though
        // PartialEq on the enum can't witness it.
        if let (Response::Predict(a), Response::Predict(b)) = (&reply, &back) {
            let (pa, pb) = (
                a.outcomes[1].prediction().expect("degraded has prediction"),
                b.outcomes[1].prediction().expect("degraded has prediction"),
            );
            assert_eq!(pa.predicted_time_s.to_bits(), pb.predicted_time_s.to_bits());
        } else {
            unreachable!("both sides are Predict");
        }
        let ack = Response::HelloAck { version: 1 };
        assert_eq!(roundtrip_response(&ack), ack);
        let metrics = Response::Metrics {
            snapshot_json: "{\"schema\": \"vesta-telemetry/1\"}".into(),
        };
        assert_eq!(roundtrip_response(&metrics), metrics);
    }

    #[test]
    fn codec_errors_round_trip_with_transience() {
        let errors = [
            ServerError::Io("refused".into()),
            ServerError::Truncated,
            ServerError::Checksum {
                expected: 1,
                found: 2,
            },
            ServerError::Oversize { len: u32::MAX },
            ServerError::Malformed("bad".into()),
            ServerError::UnsupportedVersion {
                requested: 9,
                supported: 1,
            },
            ServerError::UnknownTenant("ghost".into()),
            ServerError::UnknownWorkload("nope".into()),
            ServerError::Internal {
                transient: true,
                message: "journal io".into(),
            },
            ServerError::Timeout { waited_ms: 1500 },
            ServerError::Overloaded {
                active: 64,
                limit: 64,
            },
            ServerError::RateLimited { limit: 512 },
            ServerError::RetryBudgetExhausted {
                attempts: vec![
                    crate::RetryAttempt {
                        attempt: 0,
                        error: "io: connection reset".into(),
                        transient: true,
                        backoff_ms: 25,
                    },
                    crate::RetryAttempt {
                        attempt: 1,
                        error: "peer made no frame progress for 200 ms".into(),
                        transient: true,
                        backoff_ms: 0,
                    },
                ],
            },
        ];
        for e in errors {
            let back = roundtrip_response(&Response::Error(e.clone()));
            assert_eq!(back, Response::Error(e.clone()));
            if let Response::Error(b) = back {
                assert_eq!(b.is_transient(), e.is_transient(), "{e:?}");
            }
        }
    }

    #[test]
    fn codec_truncated_payloads_are_typed_errors() {
        let bytes = encode_response(&Response::Predict(sample_reply()));
        for cut in 0..bytes.len() {
            match decode_response(&bytes[..cut]) {
                Err(ServerError::Malformed(_)) => {}
                other => panic!("cut at {cut}: expected Malformed, got {other:?}"),
            }
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(matches!(
            decode_response(&padded),
            Err(ServerError::Malformed(_))
        ));
    }

    #[test]
    fn codec_unknown_verbs_and_flags_are_typed_errors() {
        assert!(matches!(
            decode_request(&[99]),
            Err(ServerError::Malformed(_))
        ));
        assert!(matches!(
            decode_response(&[7]),
            Err(ServerError::Malformed(_))
        ));
        // An options byte with a future flag set must not decode silently.
        let mut bytes = encode_request(&Request::Predict {
            tenant: "t".into(),
            workloads: vec![],
            options: PredictOptions::default(),
        });
        let flags_at = bytes.len() - 1;
        bytes[flags_at] |= 1 << 7;
        assert!(matches!(
            decode_request(&bytes),
            Err(ServerError::Malformed(_))
        ));
    }

    #[test]
    fn codec_frame_roundtrips_and_rejects_bit_flips() {
        let payload = encode_request(&Request::Hello { version: 1 });
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("frame writes");
        assert_eq!(framed.len(), 8 + payload.len());

        let mut reader: &[u8] = &framed;
        match read_frame(&mut reader).expect("frame reads") {
            FrameEvent::Frame(p) => assert_eq!(p, payload),
            other => panic!("expected a frame, got {other:?}"),
        }

        // Every single-bit corruption of the frame is caught: payload
        // flips fail the CRC, header flips mis-declare length or CRC.
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                let mut r: &[u8] = &bad;
                match read_frame(&mut r) {
                    Err(
                        ServerError::Checksum { .. }
                        | ServerError::Truncated
                        | ServerError::Oversize { .. },
                    ) => {}
                    Ok(FrameEvent::Frame(_)) => {
                        panic!("flip at {byte}:{bit} slipped through the CRC")
                    }
                    other => panic!("flip at {byte}:{bit}: unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn codec_truncated_frame_tail_is_typed() {
        let payload = encode_request(&Request::Metrics);
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("frame writes");
        // Cut after the header: EOF lands mid-payload.
        for cut in 1..framed.len() {
            let mut r: &[u8] = &framed[..cut];
            assert!(
                matches!(read_frame(&mut r), Err(ServerError::Truncated)),
                "cut at {cut}"
            );
        }
        // Zero bytes is a clean close, not an error.
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(FrameEvent::Closed)));
    }

    #[test]
    fn codec_oversize_length_is_rejected_before_allocation() {
        let mut framed = Vec::new();
        framed.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        framed.extend_from_slice(&0u32.to_le_bytes());
        let mut r: &[u8] = &framed;
        assert!(matches!(
            read_frame(&mut r),
            Err(ServerError::Oversize { .. })
        ));
        assert!(matches!(
            write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME_LEN as usize + 1]),
            Err(ServerError::Oversize { .. })
        ));
    }

    // Seeded structure generator for the property tests: a splitmix64
    // stream drives every choice, so one `u64` strategy input expands to
    // arbitrary requests/responses while staying portable across proptest
    // implementations (and cheap under Miri).

    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn gen_string(state: &mut u64) -> String {
        const ALPHABET: &[u8] = b"abcXYZ019 _-./:\xc3\xa9"; // ends in 'é'
        let len = (next(state) % 12) as usize;
        let mut s = String::new();
        for _ in 0..len {
            // The last two alphabet bytes form one multi-byte char; pick
            // char-wise so the string stays valid UTF-8.
            let chars: Vec<char> = std::str::from_utf8(ALPHABET)
                .expect("alphabet is UTF-8")
                .chars()
                .collect();
            s.push(chars[(next(state) as usize) % chars.len()]);
        }
        s
    }

    fn gen_options(state: &mut u64) -> PredictOptions {
        PredictOptions {
            supervised: next(state) % 2 == 0,
            sequential: next(state) % 2 == 0,
            supervisor: if next(state) % 2 == 0 {
                Some(SupervisorConfig {
                    deadline_ms: next(state),
                    breaker_threshold: next(state) as u32,
                    breaker_probe_after: next(state) as u32,
                    max_in_flight: (next(state) % (1 << 32)) as usize,
                })
            } else {
                None
            },
        }
    }

    fn gen_prediction(state: &mut u64) -> WirePrediction {
        WirePrediction {
            best_vm: next(state) as u32,
            // Raw bits: NaNs, infinities and subnormals all occur.
            predicted_time_s: f64::from_bits(next(state)),
            reference_vms: next(state) as u32,
            converged: next(state) % 2 == 0,
        }
    }

    fn gen_outcome(state: &mut u64) -> WireOutcome {
        match next(state) % 4 {
            0 => WireOutcome::Ok(gen_prediction(state)),
            1 => WireOutcome::Degraded {
                prediction: gen_prediction(state),
                reason: gen_string(state),
            },
            2 => WireOutcome::Shed,
            _ => WireOutcome::Failed {
                transient: next(state) % 2 == 0,
                error: gen_string(state),
            },
        }
    }

    fn gen_reply(state: &mut u64) -> PredictReply {
        let n = (next(state) % 6) as usize;
        PredictReply {
            generation: next(state),
            outcomes: (0..n).map(|_| gen_outcome(state)).collect(),
            report: SupervisorReport {
                ok: next(state),
                degraded: next(state),
                shed: next(state),
                failed: next(state),
                deadline_hits: next(state),
                breaker_trips: next(state),
                breaker_refusals: next(state),
                breaker_probes: next(state),
                open_breakers: next(state) as usize,
            },
        }
    }

    proptest! {
        /// Any request round-trips the codec unchanged.
        #[test]
        fn codec_prop_requests_round_trip(seed in any::<u64>()) {
            let rounds = if cfg!(miri) { 4 } else { 32 };
            let mut state = seed;
            for _ in 0..rounds {
                let n = (next(&mut state) % 5) as usize;
                let predict = Request::Predict {
                    tenant: gen_string(&mut state),
                    workloads: (0..n).map(|_| gen_string(&mut state)).collect(),
                    options: gen_options(&mut state),
                };
                prop_assert_eq!(roundtrip_request(&predict), predict);
                let hello = Request::Hello { version: next(&mut state) as u32 };
                prop_assert_eq!(roundtrip_request(&hello), hello);
            }
        }

        /// Any response round-trips, predicted times bit-exact.
        #[test]
        fn codec_prop_responses_round_trip(seed in any::<u64>()) {
            let rounds = if cfg!(miri) { 4 } else { 32 };
            let mut state = seed.wrapping_add(1);
            for _ in 0..rounds {
                let reply = Response::Predict(gen_reply(&mut state));
                let back = roundtrip_response(&reply);
                prop_assert_eq!(&back, &reply);
                if let (Response::Predict(a), Response::Predict(b)) = (&reply, &back) {
                    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
                        if let (Some(p), Some(q)) = (x.prediction(), y.prediction()) {
                            prop_assert_eq!(
                                p.predicted_time_s.to_bits(),
                                q.predicted_time_s.to_bits()
                            );
                        }
                    }
                }
            }
        }

        /// A payload of arbitrary junk either decodes or yields a typed
        /// error — it never panics.
        #[test]
        fn codec_prop_junk_never_panics(seed in any::<u64>(), len in 0usize..256) {
            let mut state = seed.wrapping_add(2);
            let payload: Vec<u8> = (0..len).map(|_| next(&mut state) as u8).collect();
            let _ = decode_request(&payload);
            let _ = decode_response(&payload);
        }
    }
}
