//! The multi-tenant prediction server: a thread-per-connection TCP
//! listener over a tenant registry, with graceful drain-and-swap on
//! overlay publish and overload protection at every resource the wire
//! can exhaust.
//!
//! ## Tenant lifecycle
//!
//! ```text
//! add_tenant ──▶ SERVING ──publish()──▶ SERVING (generation + 1)
//!     │             │  ▲                    │
//!     │             └──┘ predict/absorb     └── remove_tenant ──▶ gone
//!     └── captures the base snapshot + creates the journal
//! ```
//!
//! Every tenant owns one live [`Knowledge`] handle behind an `Arc`
//! (its own supervisor: admission gate, breakers, deadline budget), a
//! pristine *base* handle frozen at registration, and a crash-consistent
//! absorption journal. Serving a request clones the live `Arc` under a
//! read lock, so a concurrent publish never tears a batch: requests in
//! flight finish on the handle they started with, requests arriving
//! after the swap land on the recovered one.
//!
//! ## Drain protocol (publish)
//!
//! [`Server::publish`] (1) journals + publishes the live handle's
//! pending absorptions, (2) rebuilds a fresh handle from the base
//! snapshot plus the journal via [`Knowledge::recover`], (3) proves the
//! rebuild bit-identical to the live handle with
//! [`KnowledgeSnapshot::same_state`] — aborting the swap on any
//! divergence — and only then (4) swaps the `Arc` and bumps the
//! tenant's generation. `served.drains` counts completed swaps.
//!
//! ## Overload protection
//!
//! Three independent bounds, each surfacing as a *typed* refusal the
//! resilient client can classify (all three are
//! [`ServerError::is_transient`]):
//!
//! * **Connection bound** — past [`ServerConfig::max_connections`] live
//!   connections, new arrivals are shed at admission with a single
//!   [`ServerError::Overloaded`] reply frame (`served.overloaded`); no
//!   thread is spawned for them.
//! * **Progress timeout** — a connection whose frame stops making byte
//!   progress for [`ServerConfig::progress_timeout`] (a slow-loris
//!   writer, a wedged peer) is killed with a typed
//!   [`ServerError::Timeout`] reply (`served.stall_kills`).
//! * **Frame-rate cap** — a connection pushing more than
//!   [`ServerConfig::max_frames_per_sec`] frames sustained is dropped
//!   with [`ServerError::RateLimited`] (`served.rate_limited`); a
//!   token bucket of one second's depth absorbs bursts.
//!
//! ## Graceful drain (shutdown)
//!
//! [`Server::drain`] stops accepting, lets every in-flight request
//! finish (connection loops exit at the next frame boundary), joins all
//! threads, then journals + publishes every tenant's still-pending
//! absorptions so the on-disk journals are a complete, replayable record
//! of the server's final state. The returned [`DrainReport`] carries the
//! accounting; `served.drain.*` counters mirror it.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use vesta_core::{AbsorptionJournal, Knowledge, KnowledgeSnapshot, Outcome, PredictRequest};
use vesta_obs::{Clock, MetricsRegistry};
use vesta_workloads::Suite;

use crate::wire::{
    self, FrameEvent, FrameReadPolicy, PredictReply, Request, Response, WireOutcome,
    WirePrediction,
};
use crate::ServerError;

/// How the server binds, paces its shutdown polling, and bounds the
/// resources one peer can consume.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free one.
    pub addr: String,
    /// Read-timeout used by connection threads to poll the shutdown and
    /// drain flags between frames — also the tick the progress timeout
    /// is measured in.
    pub idle_poll: Duration,
    /// Live-connection bound; arrivals past it are shed with a typed
    /// [`ServerError::Overloaded`] reply. `0` means unbounded.
    pub max_connections: u32,
    /// Maximum time a frame may sit with zero byte progress before the
    /// connection is killed as a slow-loris ([`ServerError::Timeout`]).
    /// Rounded up to a whole number of `idle_poll` ticks.
    pub progress_timeout: Duration,
    /// Sustained per-connection frame-rate cap (token bucket with one
    /// second of burst depth); violators are dropped with
    /// [`ServerError::RateLimited`]. `0` means uncapped.
    pub max_frames_per_sec: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            idle_poll: Duration::from_millis(50),
            max_connections: 256,
            progress_timeout: Duration::from_secs(5),
            max_frames_per_sec: 0,
        }
    }
}

/// What [`Server::drain`] accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Connection threads joined after finishing their in-flight work.
    pub connections_drained: usize,
    /// Tenants whose journals were flushed.
    pub tenants_flushed: usize,
    /// Absorptions journaled + published by the final flush (absorptions
    /// already published by earlier [`Server::publish`] calls do not
    /// reappear here — the journal had them).
    pub absorptions_flushed: usize,
}

/// One registered tenant: the serving generation and live handle under
/// one lock (so a reader never observes a torn pair), plus the rebuild
/// ingredients.
struct Tenant {
    /// `(generation, live handle)`; the generation bumps with every
    /// completed publish.
    live: RwLock<(u64, Arc<Knowledge>)>,
    /// Pristine handle frozen at registration; its snapshot is the
    /// recovery base every publish rebuilds from.
    base: Knowledge,
    journal: Mutex<AbsorptionJournal>,
    journal_path: PathBuf,
}

struct Shared {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    suite: Suite,
    registry: Arc<MetricsRegistry>,
    shutdown: AtomicBool,
    /// Drain differs from shutdown only in bookkeeping: both stop the
    /// accept loop and end connection loops at the next frame boundary;
    /// drain additionally flushes journals afterwards.
    draining: AtomicBool,
    /// Live connection count, bounded by `limits.max_connections`.
    active: AtomicU32,
    limits: Limits,
}

#[derive(Debug, Clone, Copy)]
struct Limits {
    max_connections: u32,
    /// Progress timeout expressed in idle-poll ticks (0 = unbounded).
    stall_ticks: u32,
    tick_ms: u64,
    max_frames_per_sec: u32,
}

impl Shared {
    fn count(&self, name: &str) {
        self.registry.counter(name).inc();
    }

    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || self.draining.load(Ordering::SeqCst)
    }
}

/// Decrements the live-connection gauge however the connection ends.
struct ActiveGuard(Arc<Shared>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The running server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop and joins every connection thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind and start accepting connections.
    pub fn start(config: ServerConfig) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServerError::Io(format!("bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServerError::Io(format!("local_addr: {e}")))?;
        let tick_ms = (config.idle_poll.as_millis() as u64).max(1);
        let stall_ticks = if config.progress_timeout.is_zero() {
            0
        } else {
            // Round up so the enforced timeout is never shorter than
            // configured.
            (((config.progress_timeout.as_millis() as u64) + tick_ms - 1) / tick_ms).max(1) as u32
        };
        let shared = Arc::new(Shared {
            tenants: RwLock::new(BTreeMap::new()),
            suite: Suite::extended(),
            // The monotonic clock feeds span durations only; predictions
            // are clock-independent (the engine's determinism contract).
            registry: Arc::new(MetricsRegistry::with_clock(Clock::Monotonic)),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            active: AtomicU32::new(0),
            limits: Limits {
                max_connections: config.max_connections,
                stall_ticks,
                tick_ms,
                max_frames_per_sec: config.max_frames_per_sec,
            },
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            let idle_poll = config.idle_poll;
            std::thread::Builder::new()
                .name("vesta-served-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &connections, idle_poll))
                .map_err(|e| ServerError::Io(format!("spawn accept thread: {e}")))?
        };
        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            connections,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics registry — the same snapshot the `METRICS`
    /// wire verb serves.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// Register `knowledge` under `id`, creating its absorption journal
    /// at `journal_path`. The handle starts at generation 0; its state
    /// at registration becomes the recovery base for every later
    /// publish. Re-registering an id replaces the tenant wholesale.
    pub fn add_tenant(
        &self,
        id: &str,
        knowledge: Knowledge,
        journal_path: impl AsRef<Path>,
    ) -> Result<(), ServerError> {
        let journal_path = journal_path.as_ref().to_path_buf();
        let base = Knowledge::from_snapshot(knowledge.to_snapshot(), knowledge.catalog().clone())
            .map_err(|e| ServerError::Internal {
            transient: false,
            message: format!("freeze base snapshot for tenant '{id}': {e}"),
        })?;
        let journal =
            AbsorptionJournal::create(&journal_path).map_err(|e| ServerError::Internal {
                transient: true,
                message: format!("create journal for tenant '{id}': {e}"),
            })?;
        let live = knowledge.with_telemetry(Arc::clone(&self.shared.registry));
        let tenant = Arc::new(Tenant {
            live: RwLock::new((0, Arc::new(live))),
            base,
            journal: Mutex::new(journal),
            journal_path,
        });
        self.shared.tenants.write().insert(id.to_string(), tenant);
        self.shared.count("served.tenants.added");
        Ok(())
    }

    /// Drop a tenant from the registry. In-flight requests holding its
    /// live `Arc` finish normally.
    pub fn remove_tenant(&self, id: &str) -> bool {
        self.shared.tenants.write().remove(id).is_some()
    }

    /// A tenant's current publish generation.
    pub fn generation(&self, id: &str) -> Option<u64> {
        let tenant = self.shared.tenants.read().get(id).cloned()?;
        let generation = tenant.live.read().0;
        Some(generation)
    }

    /// Live connections right now (the gauge the connection bound sheds
    /// against).
    pub fn active_connections(&self) -> u32 {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// The workload ids a tenant's published overlay has absorbed, in
    /// absorption order. The ground truth the chaos harness audits its
    /// zero-lost / zero-duplicated invariant against.
    pub fn tenant_absorbed_ids(&self, id: &str) -> Option<Vec<u64>> {
        let tenant = self.shared.tenants.read().get(id).cloned()?;
        let live = Arc::clone(&tenant.live.read().1);
        // Queued-but-unpublished absorptions count too: they are lost
        // only if a drain/publish never happens, which the callers of
        // this accessor do perform first.
        Some(live.overlay().absorbed_ids().to_vec())
    }

    /// A tenant's journal path (for crash-recovery audits).
    pub fn tenant_journal_path(&self, id: &str) -> Option<PathBuf> {
        let tenant = self.shared.tenants.read().get(id).cloned()?;
        Some(tenant.journal_path.clone())
    }

    /// Snapshot of a tenant's live handle.
    pub fn tenant_live_snapshot(&self, id: &str) -> Option<KnowledgeSnapshot> {
        let tenant = self.shared.tenants.read().get(id).cloned()?;
        let live = Arc::clone(&tenant.live.read().1);
        Some(live.to_snapshot())
    }

    /// Replay a tenant's base snapshot + journal from disk and check the
    /// result is bit-identical to the live handle — the crash-recovery
    /// audit the drain-consistency suite runs after [`Server::drain`] or
    /// [`Server::publish`]. Only meaningful when the tenant has no
    /// pending (unjournaled) absorptions; both of those entry points
    /// guarantee that.
    pub fn check_recovery(&self, id: &str) -> Result<bool, ServerError> {
        let tenant = self
            .shared
            .tenants
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| ServerError::UnknownTenant(id.to_string()))?;
        let live = Arc::clone(&tenant.live.read().1);
        let recovered = Knowledge::recover(
            tenant.base.to_snapshot(),
            &tenant.journal_path,
            live.catalog().clone(),
        )
        .map_err(|e| ServerError::Internal {
            transient: false,
            message: format!("recover tenant '{id}': {e}"),
        })?;
        Ok(recovered.to_snapshot().same_state(&live.to_snapshot()))
    }

    /// Drain-and-swap publish for one tenant (see the module docs for
    /// the protocol). Returns the new generation.
    pub fn publish(&self, id: &str) -> Result<u64, ServerError> {
        let tenant = self
            .shared
            .tenants
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| ServerError::UnknownTenant(id.to_string()))?;
        let live = Arc::clone(&tenant.live.read().1);
        {
            let mut journal = tenant.journal.lock();
            live.absorb_pending_journaled(&mut journal)
                .map_err(|e| ServerError::Internal {
                    transient: true,
                    message: format!("journal absorptions for tenant '{id}': {e}"),
                })?;
        }
        let recovered = Knowledge::recover(
            tenant.base.to_snapshot(),
            &tenant.journal_path,
            live.catalog().clone(),
        )
        .map_err(|e| ServerError::Internal {
            transient: false,
            message: format!("recover tenant '{id}': {e}"),
        })?;
        if !recovered.to_snapshot().same_state(&live.to_snapshot()) {
            return Err(ServerError::Internal {
                transient: false,
                message: format!(
                    "publish aborted for tenant '{id}': recovered state diverged from the live \
                     handle"
                ),
            });
        }
        let recovered = recovered.with_telemetry(Arc::clone(&self.shared.registry));
        let generation = {
            let mut slot = tenant.live.write();
            slot.0 += 1;
            slot.1 = Arc::new(recovered);
            slot.0
        };
        self.shared.count("served.drains");
        Ok(generation)
    }

    /// Graceful shutdown: stop accepting, let every in-flight request
    /// finish and its connection close at the next frame boundary, join
    /// all threads, then journal + publish every tenant's still-pending
    /// absorptions. After a drain the journals on disk are a complete
    /// record: `Knowledge::recover(base, journal)` reproduces each
    /// tenant's final published state bit-for-bit (auditable via
    /// [`Server::check_recovery`]).
    ///
    /// The server stops serving permanently; calling it twice is safe
    /// and the second call only re-flushes (finding nothing new).
    pub fn drain(&mut self) -> Result<DrainReport, ServerError> {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.count("served.drain.initiated");
        if let Some(accept) = self.accept.take() {
            // Self-connect to unblock the accept() call.
            // vesta-lint: allow(swallowed-result, reason = "wakeup poke at the accept loop; if the connect fails the listener is already gone, which is the goal state")
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock());
        let connections_drained = handles.len();
        for h in handles {
            let _ = h.join();
        }
        let tenants: Vec<(String, Arc<Tenant>)> = self
            .shared
            .tenants
            .read()
            .iter()
            .map(|(id, t)| (id.clone(), Arc::clone(t)))
            .collect();
        let mut tenants_flushed = 0usize;
        let mut absorptions_flushed = 0usize;
        for (id, tenant) in tenants {
            let live = Arc::clone(&tenant.live.read().1);
            let flushed = {
                let mut journal = tenant.journal.lock();
                live.absorb_pending_journaled(&mut journal)
                    .map_err(|e| ServerError::Internal {
                        transient: true,
                        message: format!("drain flush for tenant '{id}': {e}"),
                    })?
            };
            tenants_flushed += 1;
            absorptions_flushed += flushed;
        }
        self.shared
            .registry
            .counter("served.drain.connections")
            .add(connections_drained as u64);
        self.shared
            .registry
            .counter("served.drain.absorptions_flushed")
            .add(absorptions_flushed as u64);
        self.shared.count("served.drain.completed");
        Ok(DrainReport {
            connections_drained,
            tenants_flushed,
            absorptions_flushed,
        })
    }

    /// Stop accepting, wake the accept loop, and join every thread.
    /// Idempotent; also runs on drop. Unlike [`Server::drain`] it does
    /// not flush journals — pending absorptions die with the process,
    /// which is exactly the crash the journal protocol tolerates.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // Self-connect to unblock the accept() call.
            // vesta-lint: allow(swallowed-result, reason = "wakeup poke at the accept loop; if the connect fails the listener is already gone, which is the goal state")
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    idle_poll: Duration,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.stopping() {
                    return;
                }
                continue;
            }
        };
        if shared.stopping() {
            return;
        }
        let limit = shared.limits.max_connections;
        if limit > 0 {
            let active = shared.active.load(Ordering::SeqCst);
            if active >= limit {
                shed_overloaded(shared, stream, active, limit);
                continue;
            }
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let guard = ActiveGuard(Arc::clone(shared));
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(idle_poll));
        let shared_for_conn = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("vesta-served-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                serve_connection(&shared_for_conn, stream)
            });
        match spawned {
            Ok(handle) => {
                let mut conns = connections.lock();
                conns.push(handle);
                // Reap finished threads so a long-lived server does not
                // hoard join handles (shutdown/drain still join the rest).
                conns.retain(|h| !h.is_finished());
            }
            // Out of threads: drop the connection rather than the server.
            Err(_) => continue,
        }
    }
}

/// Shed one arrival at admission: consume the greeting frame already in
/// flight, answer it with a single typed `Overloaded` reply, then
/// half-close and wait briefly for the peer's FIN. Reading first matters:
/// closing a socket with unread inbound bytes (the client's HELLO) sends
/// an RST that destroys the queued reply before the client can read it,
/// turning the typed shed into an opaque "broken pipe". Every step runs
/// under a short deadline so a slow shed never stalls the accept loop.
fn shed_overloaded(shared: &Arc<Shared>, mut stream: TcpStream, active: u32, limit: u32) {
    shared.count("served.overloaded");
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let greeting = FrameReadPolicy {
        idle_event: false,
        stall_ticks: 1,
        tick_ms: 250,
    };
    // vesta-lint: allow(swallowed-result, reason = "shed path: the greeting read only drains in-flight bytes so the RST doesn't destroy the queued reply; any read error just means there is nothing to drain")
    let _ = wire::read_frame_with(&mut stream, greeting);
    let frame = wire::encode_response(&Response::Error(ServerError::Overloaded {
        active,
        limit,
    }));
    // vesta-lint: allow(swallowed-result, reason = "best-effort typed goodbye on a connection being shed; if the write fails the peer sees a plain close, which is the fallback outcome anyway")
    let _ = wire::write_frame(&mut stream, &frame);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Bounded wait (the 250 ms read deadline) for the peer to see the
    // reply and close; a zero-byte read is its FIN.
    let mut sink = [0u8; 16];
    let _ = std::io::Read::read(&mut stream, &mut sink);
}

/// Per-connection token bucket enforcing the sustained frame-rate cap
/// with one second of burst depth.
struct FrameBudget {
    rate: f64,
    tokens: f64,
    last: Instant,
}

impl FrameBudget {
    fn new(max_frames_per_sec: u32) -> Option<FrameBudget> {
        (max_frames_per_sec > 0).then(|| FrameBudget {
            rate: f64::from(max_frames_per_sec),
            tokens: f64::from(max_frames_per_sec),
            // vesta-lint: allow(wallclock-in-core, reason = "the frame-rate cap meters real inter-arrival time on the wire; prediction math stays deterministic — only connection admission depends on this read")
            last: Instant::now(),
        })
    }

    /// Account one frame; false when the cap is breached.
    fn admit(&mut self) -> bool {
        // vesta-lint: allow(wallclock-in-core, reason = "token-bucket refill is proportional to real elapsed wire time; this guards the socket, not the deterministic prediction path")
        let now = Instant::now();
        self.tokens = (self.tokens + now.duration_since(self.last).as_secs_f64() * self.rate)
            .min(self.rate);
        self.last = now;
        if self.tokens < 1.0 {
            return false;
        }
        self.tokens -= 1.0;
        true
    }
}

fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.count("served.connections");
    let policy = FrameReadPolicy {
        idle_event: true,
        stall_ticks: shared.limits.stall_ticks,
        tick_ms: shared.limits.tick_ms,
    };
    let mut budget = FrameBudget::new(shared.limits.max_frames_per_sec);
    loop {
        if shared.stopping() {
            // Drain/shutdown between frames: in-flight work already
            // finished, close at this frame boundary.
            return;
        }
        let payload = match wire::read_frame_with(&mut stream, policy) {
            Ok(FrameEvent::Frame(payload)) => payload,
            Ok(FrameEvent::Closed) => return,
            Ok(FrameEvent::Idle) => continue,
            Err(e @ ServerError::Timeout { .. }) => {
                // Slow-loris: mid-frame silence outlived the progress
                // timeout. Typed reply, then kill the connection.
                shared.count("served.stall_kills");
                let frame = wire::encode_response(&Response::Error(e));
                let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                // vesta-lint: allow(swallowed-result, reason = "best-effort typed reply to a stalled peer already being disconnected; a failed write changes nothing about the close")
                let _ = wire::write_frame(&mut stream, &frame);
                return;
            }
            Err(e) => {
                // Best-effort typed reply; the stream is unsynchronized
                // after a framing error, so the connection ends here.
                let frame = wire::encode_response(&Response::Error(e));
                // vesta-lint: allow(swallowed-result, reason = "the stream is unsynchronized after a framing error; this reply is purely advisory and the connection closes either way")
                let _ = wire::write_frame(&mut stream, &frame);
                return;
            }
        };
        shared.count("served.frames");
        if let Some(b) = budget.as_mut() {
            if !b.admit() {
                shared.count("served.rate_limited");
                let frame = wire::encode_response(&Response::Error(ServerError::RateLimited {
                    limit: shared.limits.max_frames_per_sec,
                }));
                // vesta-lint: allow(swallowed-result, reason = "best-effort typed reply before killing a rate-capped connection; the kill is the enforcement, the reply is courtesy")
                let _ = wire::write_frame(&mut stream, &frame);
                return;
            }
        }
        let response = handle_payload(shared, &payload);
        let close = matches!(
            response,
            Response::Error(ServerError::UnsupportedVersion { .. })
        );
        let frame = wire::encode_response(&response);
        if wire::write_frame(&mut stream, &frame).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

fn handle_payload(shared: &Arc<Shared>, payload: &[u8]) -> Response {
    let request = match wire::decode_request(payload) {
        Ok(r) => r,
        Err(e) => return Response::Error(e),
    };
    match request {
        Request::Hello { version } => {
            if version == wire::WIRE_VERSION {
                Response::HelloAck {
                    version: wire::WIRE_VERSION,
                }
            } else {
                Response::Error(ServerError::UnsupportedVersion {
                    requested: version,
                    supported: wire::WIRE_VERSION,
                })
            }
        }
        Request::Metrics => Response::Metrics {
            snapshot_json: shared.registry.snapshot().to_json(),
        },
        Request::Predict {
            tenant,
            workloads,
            options,
        } => match handle_predict(shared, &tenant, &workloads, options) {
            Ok(reply) => Response::Predict(reply),
            Err(e) => Response::Error(e),
        },
    }
}

fn handle_predict(
    shared: &Arc<Shared>,
    tenant_id: &str,
    names: &[String],
    options: vesta_core::PredictOptions,
) -> Result<PredictReply, ServerError> {
    options
        .validate()
        .map_err(|e| ServerError::Malformed(e.to_string()))?;
    let tenant = shared
        .tenants
        .read()
        .get(tenant_id)
        .cloned()
        .ok_or_else(|| ServerError::UnknownTenant(tenant_id.to_string()))?;
    // One read of the (generation, handle) pair: the whole batch is
    // served — and its generation reported — from exactly one handle,
    // whatever publishes happen meanwhile.
    let (generation, knowledge) = {
        let slot = tenant.live.read();
        (slot.0, Arc::clone(&slot.1))
    };
    let mut workloads = Vec::with_capacity(names.len());
    for name in names {
        let w = shared
            .suite
            .by_name(name)
            .ok_or_else(|| ServerError::UnknownWorkload(name.clone()))?;
        workloads.push(w.clone());
    }
    shared.count("served.requests");
    shared
        .registry
        .counter("served.workloads")
        .add(workloads.len() as u64);

    let response = knowledge.handle(PredictRequest::new(workloads).with_options(options));
    let mut outcomes = Vec::with_capacity(response.outcomes.len());
    for r in &response.outcomes {
        let wire_outcome = match &r.outcome {
            Outcome::Ok(p) => {
                knowledge.absorb(p);
                WireOutcome::Ok(to_wire_prediction(p))
            }
            Outcome::Degraded { prediction, reason } => {
                knowledge.absorb(prediction);
                WireOutcome::Degraded {
                    prediction: to_wire_prediction(prediction),
                    reason: reason.clone(),
                }
            }
            Outcome::Shed => WireOutcome::Shed,
            Outcome::Failed { error } => WireOutcome::Failed {
                transient: error.is_transient(),
                error: error.to_string(),
            },
        };
        shared.count(&format!("served.outcome.{}", wire_outcome.label()));
        shared.count(&format!(
            "served.tenant.{tenant_id}.{}",
            wire_outcome.label()
        ));
        outcomes.push(wire_outcome);
    }
    Ok(PredictReply {
        generation,
        outcomes,
        report: response.report,
    })
}

fn to_wire_prediction(p: &vesta_core::Prediction) -> WirePrediction {
    WirePrediction {
        best_vm: p.best_vm.index() as u32,
        predicted_time_s: p.best_predicted_time(),
        reference_vms: p.reference_vms as u32,
        converged: p.converged,
    }
}
