//! The multi-tenant prediction server: a thread-per-connection TCP
//! listener over a tenant registry, with graceful drain-and-swap on
//! overlay publish.
//!
//! ## Tenant lifecycle
//!
//! ```text
//! add_tenant ──▶ SERVING ──publish()──▶ SERVING (generation + 1)
//!     │             │  ▲                    │
//!     │             └──┘ predict/absorb     └── remove_tenant ──▶ gone
//!     └── captures the base snapshot + creates the journal
//! ```
//!
//! Every tenant owns one live [`Knowledge`] handle behind an `Arc`
//! (its own supervisor: admission gate, breakers, deadline budget), a
//! pristine *base* handle frozen at registration, and a crash-consistent
//! absorption journal. Serving a request clones the live `Arc` under a
//! read lock, so a concurrent publish never tears a batch: requests in
//! flight finish on the handle they started with, requests arriving
//! after the swap land on the recovered one.
//!
//! ## Drain protocol
//!
//! [`Server::publish`] (1) journals + publishes the live handle's
//! pending absorptions, (2) rebuilds a fresh handle from the base
//! snapshot plus the journal via [`Knowledge::recover`], (3) proves the
//! rebuild bit-identical to the live handle with
//! [`KnowledgeSnapshot::same_state`] — aborting the swap on any
//! divergence — and only then (4) swaps the `Arc` and bumps the
//! tenant's generation. `served.drains` counts completed swaps.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use vesta_core::{AbsorptionJournal, Knowledge, Outcome, PredictRequest};
use vesta_obs::{Clock, MetricsRegistry};
use vesta_workloads::Suite;

use crate::wire::{self, FrameEvent, PredictReply, Request, Response, WireOutcome, WirePrediction};
use crate::ServerError;

/// How the server binds and paces its shutdown polling.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks a free one.
    pub addr: String,
    /// Read-timeout used by connection threads to poll the shutdown
    /// flag between frames.
    pub idle_poll: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            idle_poll: Duration::from_millis(50),
        }
    }
}

/// One registered tenant: the serving generation and live handle under
/// one lock (so a reader never observes a torn pair), plus the rebuild
/// ingredients.
struct Tenant {
    /// `(generation, live handle)`; the generation bumps with every
    /// completed publish.
    live: RwLock<(u64, Arc<Knowledge>)>,
    /// Pristine handle frozen at registration; its snapshot is the
    /// recovery base every publish rebuilds from.
    base: Knowledge,
    journal: Mutex<AbsorptionJournal>,
    journal_path: PathBuf,
}

struct Shared {
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
    suite: Suite,
    registry: Arc<MetricsRegistry>,
    shutdown: AtomicBool,
}

impl Shared {
    fn count(&self, name: &str) {
        self.registry.counter(name).inc();
    }
}

/// The running server. Dropping it (or calling [`Server::shutdown`])
/// stops the accept loop and joins every connection thread.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind and start accepting connections.
    pub fn start(config: ServerConfig) -> Result<Server, ServerError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServerError::Io(format!("bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| ServerError::Io(format!("local_addr: {e}")))?;
        let shared = Arc::new(Shared {
            tenants: RwLock::new(BTreeMap::new()),
            suite: Suite::extended(),
            // The monotonic clock feeds span durations only; predictions
            // are clock-independent (the engine's determinism contract).
            registry: Arc::new(MetricsRegistry::with_clock(Clock::Monotonic)),
            shutdown: AtomicBool::new(false),
        });
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let connections = Arc::clone(&connections);
            let idle_poll = config.idle_poll;
            std::thread::Builder::new()
                .name("vesta-served-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &connections, idle_poll))
                .map_err(|e| ServerError::Io(format!("spawn accept thread: {e}")))?
        };
        Ok(Server {
            shared,
            local_addr,
            accept: Some(accept),
            connections,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's metrics registry — the same snapshot the `METRICS`
    /// wire verb serves.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.shared.registry
    }

    /// Register `knowledge` under `id`, creating its absorption journal
    /// at `journal_path`. The handle starts at generation 0; its state
    /// at registration becomes the recovery base for every later
    /// publish. Re-registering an id replaces the tenant wholesale.
    pub fn add_tenant(
        &self,
        id: &str,
        knowledge: Knowledge,
        journal_path: impl AsRef<Path>,
    ) -> Result<(), ServerError> {
        let journal_path = journal_path.as_ref().to_path_buf();
        let base = Knowledge::from_snapshot(knowledge.to_snapshot(), knowledge.catalog().clone())
            .map_err(|e| ServerError::Internal {
            transient: false,
            message: format!("freeze base snapshot for tenant '{id}': {e}"),
        })?;
        let journal =
            AbsorptionJournal::create(&journal_path).map_err(|e| ServerError::Internal {
                transient: true,
                message: format!("create journal for tenant '{id}': {e}"),
            })?;
        let live = knowledge.with_telemetry(Arc::clone(&self.shared.registry));
        let tenant = Arc::new(Tenant {
            live: RwLock::new((0, Arc::new(live))),
            base,
            journal: Mutex::new(journal),
            journal_path,
        });
        self.shared.tenants.write().insert(id.to_string(), tenant);
        self.shared.count("served.tenants.added");
        Ok(())
    }

    /// Drop a tenant from the registry. In-flight requests holding its
    /// live `Arc` finish normally.
    pub fn remove_tenant(&self, id: &str) -> bool {
        self.shared.tenants.write().remove(id).is_some()
    }

    /// A tenant's current publish generation.
    pub fn generation(&self, id: &str) -> Option<u64> {
        let tenant = self.shared.tenants.read().get(id).cloned()?;
        let generation = tenant.live.read().0;
        Some(generation)
    }

    /// Drain-and-swap publish for one tenant (see the module docs for
    /// the protocol). Returns the new generation.
    pub fn publish(&self, id: &str) -> Result<u64, ServerError> {
        let tenant = self
            .shared
            .tenants
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| ServerError::UnknownTenant(id.to_string()))?;
        let live = Arc::clone(&tenant.live.read().1);
        {
            let mut journal = tenant.journal.lock();
            live.absorb_pending_journaled(&mut journal)
                .map_err(|e| ServerError::Internal {
                    transient: true,
                    message: format!("journal absorptions for tenant '{id}': {e}"),
                })?;
        }
        let recovered = Knowledge::recover(
            tenant.base.to_snapshot(),
            &tenant.journal_path,
            live.catalog().clone(),
        )
        .map_err(|e| ServerError::Internal {
            transient: false,
            message: format!("recover tenant '{id}': {e}"),
        })?;
        if !recovered.to_snapshot().same_state(&live.to_snapshot()) {
            return Err(ServerError::Internal {
                transient: false,
                message: format!(
                    "publish aborted for tenant '{id}': recovered state diverged from the live \
                     handle"
                ),
            });
        }
        let recovered = recovered.with_telemetry(Arc::clone(&self.shared.registry));
        let generation = {
            let mut slot = tenant.live.write();
            slot.0 += 1;
            slot.1 = Arc::new(recovered);
            slot.0
        };
        self.shared.count("served.drains");
        Ok(generation)
    }

    /// Stop accepting, wake the accept loop, and join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            // Self-connect to unblock the accept() call.
            let _ = TcpStream::connect(self.local_addr);
            let _ = accept.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.connections.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    idle_poll: Duration,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(idle_poll));
        let shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("vesta-served-conn".to_string())
            .spawn(move || serve_connection(&shared, stream));
        match spawned {
            Ok(handle) => connections.lock().push(handle),
            // Out of threads: drop the connection rather than the server.
            Err(_) => continue,
        }
    }
}

fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.count("served.connections");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let payload = match wire::read_frame(&mut stream) {
            Ok(FrameEvent::Frame(payload)) => payload,
            Ok(FrameEvent::Closed) => return,
            Ok(FrameEvent::Idle) => continue,
            Err(e) => {
                // Best-effort typed reply; the stream is unsynchronized
                // after a framing error, so the connection ends here.
                let frame = wire::encode_response(&Response::Error(e));
                let _ = wire::write_frame(&mut stream, &frame);
                return;
            }
        };
        shared.count("served.frames");
        let response = handle_payload(shared, &payload);
        let close = matches!(
            response,
            Response::Error(ServerError::UnsupportedVersion { .. })
        );
        let frame = wire::encode_response(&response);
        if wire::write_frame(&mut stream, &frame).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

fn handle_payload(shared: &Arc<Shared>, payload: &[u8]) -> Response {
    let request = match wire::decode_request(payload) {
        Ok(r) => r,
        Err(e) => return Response::Error(e),
    };
    match request {
        Request::Hello { version } => {
            if version == wire::WIRE_VERSION {
                Response::HelloAck {
                    version: wire::WIRE_VERSION,
                }
            } else {
                Response::Error(ServerError::UnsupportedVersion {
                    requested: version,
                    supported: wire::WIRE_VERSION,
                })
            }
        }
        Request::Metrics => Response::Metrics {
            snapshot_json: shared.registry.snapshot().to_json(),
        },
        Request::Predict {
            tenant,
            workloads,
            options,
        } => match handle_predict(shared, &tenant, &workloads, options) {
            Ok(reply) => Response::Predict(reply),
            Err(e) => Response::Error(e),
        },
    }
}

fn handle_predict(
    shared: &Arc<Shared>,
    tenant_id: &str,
    names: &[String],
    options: vesta_core::PredictOptions,
) -> Result<PredictReply, ServerError> {
    options
        .validate()
        .map_err(|e| ServerError::Malformed(e.to_string()))?;
    let tenant = shared
        .tenants
        .read()
        .get(tenant_id)
        .cloned()
        .ok_or_else(|| ServerError::UnknownTenant(tenant_id.to_string()))?;
    // One read of the (generation, handle) pair: the whole batch is
    // served — and its generation reported — from exactly one handle,
    // whatever publishes happen meanwhile.
    let (generation, knowledge) = {
        let slot = tenant.live.read();
        (slot.0, Arc::clone(&slot.1))
    };
    let mut workloads = Vec::with_capacity(names.len());
    for name in names {
        let w = shared
            .suite
            .by_name(name)
            .ok_or_else(|| ServerError::UnknownWorkload(name.clone()))?;
        workloads.push(w.clone());
    }
    shared.count("served.requests");
    shared
        .registry
        .counter("served.workloads")
        .add(workloads.len() as u64);

    let response = knowledge.handle(PredictRequest::new(workloads).with_options(options));
    let mut outcomes = Vec::with_capacity(response.outcomes.len());
    for r in &response.outcomes {
        let wire_outcome = match &r.outcome {
            Outcome::Ok(p) => {
                knowledge.absorb(p);
                WireOutcome::Ok(to_wire_prediction(p))
            }
            Outcome::Degraded { prediction, reason } => {
                knowledge.absorb(prediction);
                WireOutcome::Degraded {
                    prediction: to_wire_prediction(prediction),
                    reason: reason.clone(),
                }
            }
            Outcome::Shed => WireOutcome::Shed,
            Outcome::Failed { error } => WireOutcome::Failed {
                transient: error.is_transient(),
                error: error.to_string(),
            },
        };
        shared.count(&format!("served.outcome.{}", wire_outcome.label()));
        shared.count(&format!(
            "served.tenant.{tenant_id}.{}",
            wire_outcome.label()
        ));
        outcomes.push(wire_outcome);
    }
    Ok(PredictReply {
        generation,
        outcomes,
        report: response.report,
    })
}

fn to_wire_prediction(p: &vesta_core::Prediction) -> WirePrediction {
    WirePrediction {
        best_vm: p.best_vm.index() as u32,
        predicted_time_s: p.best_predicted_time(),
        reference_vms: p.reference_vms as u32,
        converged: p.converged,
    }
}
