//! # vesta-baselines
//!
//! The comparison systems of the Vesta evaluation (Table 5), implemented
//! from scratch on the same simulated EC2 substrate:
//!
//! * [`paris`] — PARIS (SoCC '17): random forest over workload fingerprints
//!   ⊕ VM features, trained from scratch across the full catalog; fragile
//!   when the training and target frameworks differ (Figs. 2 and 6).
//! * [`ernest`] — Ernest (NSDI '16): per-workload NNLS performance model
//!   from scaled-down training runs; cheap to train, accurate on Spark,
//!   blind to disk/memory capacity (Fig. 6's Hadoop/Hive gap).
//! * [`cherrypick`] — a CherryPick-style (NSDI '17) sequential black-box
//!   searcher, included as the related-work extension: it needs no offline
//!   model but pays one cloud run per probe.

pub mod cherrypick;
pub mod ernest;
pub mod paris;

pub use cherrypick::{CherryPick, CherryPickConfig, CherryPickOutcome};
pub use ernest::{Ernest, ErnestConfig, ErnestSelection};
pub use paris::{Paris, ParisConfig, ParisSelection};

use std::fmt;

/// Errors produced by the baseline systems.
#[derive(Debug)]
#[non_exhaustive]
pub enum BaselineError {
    /// Training was impossible (empty inputs, degenerate config).
    Training(String),
    /// Error from the cloud simulator.
    Sim(vesta_cloud_sim::SimError),
    /// Error from the ML substrate.
    Ml(vesta_ml::MlError),
}

impl BaselineError {
    /// True when a retry can plausibly succeed: delegates to the wrapped
    /// simulator/ML classification; training-setup errors never are.
    pub fn is_transient(&self) -> bool {
        match self {
            BaselineError::Training(_) => false,
            BaselineError::Sim(e) => e.is_transient(),
            BaselineError::Ml(e) => e.is_transient(),
        }
    }
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Training(s) => write!(f, "training failed: {s}"),
            BaselineError::Sim(e) => write!(f, "simulator: {e}"),
            BaselineError::Ml(e) => write!(f, "ml: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        for e in [
            BaselineError::Training("x".into()),
            BaselineError::Sim(vesta_cloud_sim::SimError::NoData("y".into())),
            BaselineError::Ml(vesta_ml::MlError::InvalidParameter("z".into())),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
