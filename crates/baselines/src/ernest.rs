//! The Ernest baseline (Venkataraman et al., NSDI '16), as the paper
//! compares against it (Table 5):
//!
//! Ernest builds a per-workload performance model from a handful of cheap
//! training runs on *scaled-down inputs*, fitting the non-negative linear
//! model `T(n, m) = θ₀ + θ₁·(n/m) + θ₂·log m + θ₃·m` where `n` is the data
//! size and `m` the parallel machine budget. Its training overhead is tiny
//! (the low bar of Fig. 8), and it is accurate for Spark-style
//! compute-scalable jobs — but "it only works well in Spark applications":
//! the feature map has no disk- or memory-capacity terms, so Hadoop/Hive
//! workloads whose cost is dominated by disk bandwidth or spill behave
//! unpredictably (the 4× error gap of Fig. 6).

use std::collections::BTreeMap;

use vesta_cloud_sim::{Catalog, Simulator, VmType};
use vesta_ml::linear::{ernest_features, LinearModel};
use vesta_ml::Matrix;
use vesta_workloads::{MemoryWatcher, Workload};

use crate::BaselineError;

/// Ernest configuration.
#[derive(Debug, Clone)]
pub struct ErnestConfig {
    /// Input-size fractions of the full dataset used for training runs.
    pub fractions: Vec<f64>,
    /// VM types (names) the training runs execute on — a small ladder
    /// within one family, as Ernest varies machines, not instance kinds.
    pub training_vms: Vec<String>,
    /// Repetitions per training run.
    pub reps: u64,
    /// Cluster size.
    pub nodes: u32,
}

impl Default for ErnestConfig {
    fn default() -> Self {
        ErnestConfig {
            fractions: vec![0.125, 0.25, 0.5],
            training_vms: vec!["m5.large".into(), "m5.xlarge".into(), "m5.2xlarge".into()],
            reps: 2,
            nodes: 1,
        }
    }
}

/// A per-workload Ernest model.
pub struct Ernest {
    model: LinearModel,
    workload_input_gb: f64,
    training_runs: usize,
}

impl Ernest {
    /// Train Ernest for one workload from scaled-down runs.
    pub fn train(
        catalog: &Catalog,
        workload: &Workload,
        config: &ErnestConfig,
    ) -> Result<Ernest, BaselineError> {
        if config.fractions.is_empty() || config.training_vms.is_empty() {
            return Err(BaselineError::Training(
                "Ernest needs fractions and training VMs".into(),
            ));
        }
        let sim = Simulator::default();
        let watcher = MemoryWatcher::default();
        let full_gb = workload.demand().input_gb;
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut y: Vec<f64> = Vec::new();
        let mut training_runs = 0usize;
        for name in &config.training_vms {
            let vm = catalog.by_name(name).map_err(BaselineError::Sim)?;
            for &frac in &config.fractions {
                let demand = watcher.apply(&workload.demand_with_input(full_gb * frac), vm);
                let mut times = Vec::with_capacity(config.reps as usize);
                for rep in 0..config.reps {
                    let r = sim
                        .run(&demand, vm, config.nodes, rep)
                        .map_err(BaselineError::Sim)?;
                    times.push(r.execution_time_s);
                    training_runs += 1;
                }
                let t = vesta_ml::stats::mean(&times);
                rows.push(ernest_features(full_gb * frac, machines_of(vm)));
                y.push(t);
            }
        }
        let x = Matrix::from_rows(&rows).map_err(BaselineError::Ml)?;
        let model = LinearModel::fit_nonnegative(&x, &y).map_err(BaselineError::Ml)?;
        Ok(Ernest {
            model,
            workload_input_gb: full_gb,
            training_runs,
        })
    }

    /// Training overhead in simulated runs.
    pub fn training_runs(&self) -> usize {
        self.training_runs
    }

    /// Predict the workload's execution time on a VM type at full input.
    pub fn predict(&self, vm: &VmType) -> Result<f64, BaselineError> {
        self.predict_at(vm, self.workload_input_gb)
    }

    /// Predict at an arbitrary input size.
    pub fn predict_at(&self, vm: &VmType, input_gb: f64) -> Result<f64, BaselineError> {
        let f = ernest_features(input_gb, machines_of(vm));
        self.model.predict(&f).map_err(BaselineError::Ml)
    }

    /// Predict for every VM type.
    pub fn predict_times(&self, catalog: &Catalog) -> Result<BTreeMap<usize, f64>, BaselineError> {
        let mut out = BTreeMap::new();
        for vm in catalog.all() {
            out.insert(vm.id, self.predict(vm)?);
        }
        Ok(out)
    }

    /// Pick the best VM under the model.
    pub fn select(&self, catalog: &Catalog) -> Result<ErnestSelection, BaselineError> {
        let predicted = self.predict_times(catalog)?;
        let best_vm = predicted
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&vm, _)| vm)
            .ok_or_else(|| BaselineError::Training("empty catalog".into()))?;
        Ok(ErnestSelection {
            best_vm,
            predicted_times: predicted,
            training_runs: self.training_runs,
        })
    }
}

/// Ernest's notion of "machines": effective parallel compute slots of the
/// VM (vCPUs × relative speed). This is the *only* resource dimension the
/// model sees — its blind spot by design.
fn machines_of(vm: &VmType) -> f64 {
    vm.vcpus as f64 * vm.sustained_cpu_speed()
}

/// Result of an Ernest selection.
#[derive(Debug, Clone)]
pub struct ErnestSelection {
    /// VM the model picks.
    pub best_vm: usize,
    /// Predicted time per VM.
    pub predicted_times: BTreeMap<usize, f64>,
    /// Training runs spent for this workload.
    pub training_runs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vesta_cloud_sim::Objective;
    use vesta_workloads::Suite;

    #[test]
    fn trains_and_predicts_spark_reasonably() {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let w = suite.by_name("Spark-lr").unwrap();
        let ernest = Ernest::train(&catalog, w, &ErnestConfig::default()).unwrap();
        assert_eq!(ernest.training_runs(), 3 * 3 * 2);
        // Prediction error on a compute-scalable Spark job, same family as
        // training, should be moderate.
        let sim = Simulator::default();
        let watcher = MemoryWatcher::default();
        let vm = catalog.by_name("m5.4xlarge").unwrap();
        let truth = sim
            .expected_time(&watcher.apply(&w.demand(), vm), vm, 1)
            .unwrap();
        let pred = ernest.predict(vm).unwrap();
        let err = (pred - truth).abs() / truth;
        assert!(err < 0.6, "Spark prediction error {err:.2}");
    }

    #[test]
    fn spark_beats_hadoop_accuracy() {
        // The Table 5 claim: Ernest works well on Spark, poorly on
        // disk-dominated Hadoop/Hive. Compare cross-family prediction error.
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let sim = Simulator::default();
        let watcher = MemoryWatcher::default();
        let eval = |name: &str| -> f64 {
            let w = suite.by_name(name).unwrap();
            let ernest = Ernest::train(&catalog, w, &ErnestConfig::default()).unwrap();
            // error across disk-diverse families
            let mut errs = Vec::new();
            for vm_name in ["c5.2xlarge", "r5.2xlarge", "i3.2xlarge", "i3en.4xlarge"] {
                let vm = catalog.by_name(vm_name).unwrap();
                let truth = sim
                    .expected_time(&watcher.apply(&w.demand(), vm), vm, 1)
                    .unwrap();
                let pred = ernest.predict(vm).unwrap();
                errs.push((pred - truth).abs() / truth);
            }
            vesta_ml::stats::mean(&errs)
        };
        let spark_err = eval("Spark-kmeans");
        let hadoop_err = eval("Hadoop-terasort");
        assert!(
            hadoop_err > spark_err,
            "hadoop {hadoop_err:.2} should exceed spark {spark_err:.2}"
        );
    }

    #[test]
    fn selection_returns_full_map() {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let w = suite.by_name("Spark-count").unwrap();
        let ernest = Ernest::train(&catalog, w, &ErnestConfig::default()).unwrap();
        let sel = ernest.select(&catalog).unwrap();
        assert_eq!(sel.predicted_times.len(), 120);
        assert!(sel.predicted_times.values().all(|t| t.is_finite()));
        // Selection error against ground truth stays bounded for Spark.
        let ranking = vesta_core::ground_truth_ranking(&catalog, w, 1, Objective::ExecutionTime);
        let best = ranking[0].1;
        let chosen = ranking
            .iter()
            .find(|(v, _)| *v == sel.best_vm.into())
            .unwrap()
            .1;
        assert!(chosen <= 4.0 * best, "{}x off", chosen / best);
    }

    #[test]
    fn rejects_degenerate_config() {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let w = suite.by_name("Spark-grep").unwrap();
        let empty_frac = ErnestConfig {
            fractions: vec![],
            ..Default::default()
        };
        assert!(Ernest::train(&catalog, w, &empty_frac).is_err());
        let bad_vm = ErnestConfig {
            training_vms: vec!["zzz.large".into()],
            ..Default::default()
        };
        assert!(Ernest::train(&catalog, w, &bad_vm).is_err());
    }

    #[test]
    fn predict_scales_with_input() {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let w = suite.by_name("Spark-lr").unwrap();
        let ernest = Ernest::train(&catalog, w, &ErnestConfig::default()).unwrap();
        let vm = catalog.by_name("m5.2xlarge").unwrap();
        let small = ernest.predict_at(vm, 1.0).unwrap();
        let big = ernest.predict_at(vm, 50.0).unwrap();
        assert!(big > small);
    }
}
