//! The PARIS baseline (Yadwadkar et al., SoCC '17), as the paper compares
//! against it (Table 5):
//!
//! PARIS trains a Random Forest that maps *(workload fingerprint ⊕ VM-type
//! features)* → runtime. The fingerprint comes from profiling the workload
//! on two fixed **reference VM types**; offline training requires profiling
//! the training workloads across the full VM catalog (the from-scratch
//! overhead of Figs. 3 and 8). "It assumes that a new-coming workload can
//! be located to a category in Random Forest perfectly if it is from the
//! same framework" — the experiments of Figs. 2 and 6 train it on
//! Hadoop/Hive and test it on Spark, which is exactly where it breaks.

use std::collections::BTreeMap;

use vesta_cloud_sim::{Catalog, MetricsStore, RunKey, SimError, Simulator, VmType, N_METRICS};
use vesta_ml::forest::{ForestConfig, RandomForest};
use vesta_ml::Matrix;
use vesta_workloads::{MemoryWatcher, Workload};

use crate::BaselineError;

/// PARIS configuration.
#[derive(Debug, Clone)]
pub struct ParisConfig {
    /// Names of the two reference VM types used for fingerprinting.
    pub reference_vms: [String; 2],
    /// Random-forest hyper-parameters.
    pub forest: ForestConfig,
    /// Repetitions per profiling run.
    pub reps: u64,
    /// Cluster size.
    pub nodes: u32,
}

impl Default for ParisConfig {
    fn default() -> Self {
        ParisConfig {
            // The PARIS paper uses one small and one large box.
            reference_vms: ["m5.large".to_string(), "m5.4xlarge".to_string()],
            forest: ForestConfig {
                n_trees: 60,
                max_depth: 14,
                ..Default::default()
            },
            reps: 3,
            nodes: 1,
        }
    }
}

/// A trained PARIS model.
pub struct Paris {
    forest: RandomForest,
    reference_vm_ids: [usize; 2],
    config: ParisConfig,
    sim: Simulator,
    store: MetricsStore,
    training_runs: usize,
}

impl Paris {
    /// Offline training: profile every training workload on every VM type
    /// (plus the reference VMs for fingerprints) and fit the forest.
    pub fn train(
        catalog: &Catalog,
        workloads: &[&Workload],
        config: ParisConfig,
    ) -> Result<Paris, BaselineError> {
        let all: Vec<usize> = (0..catalog.len()).collect();
        Paris::train_on_vms(catalog, workloads, &all, config)
    }

    /// Train on a *subset* of VM types — the knob behind the Fig. 3
    /// training-overhead-vs-error curve. The two fingerprint reference VMs
    /// are always added to the subset.
    pub fn train_on_vms(
        catalog: &Catalog,
        workloads: &[&Workload],
        vm_ids: &[usize],
        config: ParisConfig,
    ) -> Result<Paris, BaselineError> {
        if workloads.is_empty() {
            return Err(BaselineError::Training("no training workloads".into()));
        }
        if vm_ids.is_empty() {
            return Err(BaselineError::Training("no training VM types".into()));
        }
        let ref_a = catalog
            .by_name(&config.reference_vms[0])
            .map_err(BaselineError::Sim)?
            .id;
        let ref_b = catalog
            .by_name(&config.reference_vms[1])
            .map_err(BaselineError::Sim)?
            .id;
        let sim = Simulator::default();
        let store = MetricsStore::new();
        let sampler = vesta_cloud_sim::Collector::default();
        let watcher = MemoryWatcher::default();

        // Profiling sweep over the training VM set: the from-scratch
        // training overhead.
        let mut train_vms: Vec<usize> = vm_ids.to_vec();
        for r in [ref_a, ref_b] {
            if !train_vms.contains(&r) {
                train_vms.push(r);
            }
        }
        use rayon::prelude::*;
        let jobs: Vec<(&Workload, &VmType)> = workloads
            .iter()
            .flat_map(|w| train_vms.iter().map(move |&id| (*w, catalog.get(id))))
            .filter_map(|(w, v)| v.ok().map(|v| (w, v)))
            .collect();
        let errors: Vec<SimError> = jobs
            .par_iter()
            .filter_map(|(w, v)| {
                profile_into(
                    &sim,
                    &sampler,
                    &watcher,
                    &store,
                    w,
                    v,
                    config.reps,
                    config.nodes,
                )
                .err()
            })
            .collect();
        if let Some(e) = errors.into_iter().next() {
            return Err(BaselineError::Sim(e));
        }
        let training_runs = store.total_runs();

        // Assemble the design matrix.
        let mut rows: Vec<Vec<f64>> = Vec::new();
        let mut targets: Vec<f64> = Vec::new();
        for w in workloads {
            let fp = fingerprint_from_store(&store, w.id, [ref_a, ref_b])?;
            for &vm_id in &train_vms {
                let vm = catalog.get(vm_id).map_err(BaselineError::Sim)?;
                let agg = store
                    .aggregate(&RunKey {
                        workload_id: w.id,
                        vm_id: vm.id,
                    })
                    .map_err(BaselineError::Sim)?;
                let mut features = fp.clone();
                features.extend(vm.feature_vector());
                rows.push(features);
                targets.push(agg.p90_time_s.ln());
            }
        }
        let x = Matrix::from_rows(&rows).map_err(BaselineError::Ml)?;
        let forest = RandomForest::fit(&x, &targets, &config.forest).map_err(BaselineError::Ml)?;
        Ok(Paris {
            forest,
            reference_vm_ids: [ref_a, ref_b],
            config,
            sim,
            store,
            training_runs,
        })
    }

    /// Training overhead in simulated runs (Fig. 3 / Fig. 8 currency).
    pub fn training_runs(&self) -> usize {
        self.training_runs
    }

    /// Reference VM ids used for fingerprinting.
    pub fn reference_vms(&self) -> [usize; 2] {
        self.reference_vm_ids
    }

    /// Online step 1: fingerprint a new workload by running it on the two
    /// reference VMs (the only new profiling PARIS pays per workload).
    pub fn fingerprint(
        &self,
        catalog: &Catalog,
        workload: &Workload,
    ) -> Result<Vec<f64>, BaselineError> {
        let sampler = vesta_cloud_sim::Collector::default();
        let watcher = MemoryWatcher::default();
        for &vm_id in &self.reference_vm_ids {
            let vm = catalog.get(vm_id).map_err(BaselineError::Sim)?;
            profile_into(
                &self.sim,
                &sampler,
                &watcher,
                &self.store,
                workload,
                vm,
                self.config.reps,
                self.config.nodes,
            )
            .map_err(BaselineError::Sim)?;
        }
        fingerprint_from_store(&self.store, workload.id, self.reference_vm_ids)
    }

    /// Online step 2: predict the runtime of a fingerprinted workload on
    /// every VM type.
    pub fn predict_times(
        &self,
        catalog: &Catalog,
        fingerprint: &[f64],
    ) -> Result<BTreeMap<usize, f64>, BaselineError> {
        let mut out = BTreeMap::new();
        for vm in catalog.all() {
            let mut features = fingerprint.to_vec();
            features.extend(vm.feature_vector());
            let log_t = self.forest.predict(&features).map_err(BaselineError::Ml)?;
            out.insert(vm.id, log_t.exp());
        }
        Ok(out)
    }

    /// Full online selection: fingerprint + predict + argmin.
    pub fn select(
        &self,
        catalog: &Catalog,
        workload: &Workload,
    ) -> Result<ParisSelection, BaselineError> {
        let fp = self.fingerprint(catalog, workload)?;
        let predicted = self.predict_times(catalog, &fp)?;
        let best_vm = predicted
            .iter()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(&vm, _)| vm)
            .ok_or_else(|| BaselineError::Training("empty catalog".into()))?;
        Ok(ParisSelection {
            best_vm,
            predicted_times: predicted,
            reference_vms: self.reference_vm_ids.len(),
        })
    }
}

/// Result of a PARIS online selection.
#[derive(Debug, Clone)]
pub struct ParisSelection {
    /// VM the forest picks.
    pub best_vm: usize,
    /// Predicted time per VM.
    pub predicted_times: BTreeMap<usize, f64>,
    /// Reference VMs consumed online.
    pub reference_vms: usize,
}

/// Profile one (workload, VM) pair into a store.
#[allow(clippy::too_many_arguments)]
fn profile_into(
    sim: &Simulator,
    sampler: &vesta_cloud_sim::Collector,
    watcher: &MemoryWatcher,
    store: &MetricsStore,
    workload: &Workload,
    vm: &VmType,
    reps: u64,
    nodes: u32,
) -> Result<(), SimError> {
    let demand = watcher.apply(&workload.demand(), vm);
    for rep in 0..reps {
        let result = sim.run(&demand, vm, nodes, rep)?;
        let trace = sampler.collect(sim, &demand, vm, nodes, rep)?;
        let mut metric_means = [0.0; N_METRICS];
        for (m, out) in metric_means.iter_mut().enumerate() {
            *out = trace.mean(m);
        }
        store.insert(
            RunKey {
                workload_id: workload.id,
                vm_id: vm.id,
            },
            vesta_cloud_sim::RunRecord {
                run_idx: rep,
                execution_time_s: result.execution_time_s,
                cost_usd: result.cost_usd,
                correlations: trace.correlations()?,
                metric_means,
            },
        );
    }
    Ok(())
}

/// Fingerprint = the 20 metric means on each of the two reference VMs,
/// plus the observed log-runtimes there (42 features).
fn fingerprint_from_store(
    store: &MetricsStore,
    workload_id: u64,
    reference: [usize; 2],
) -> Result<Vec<f64>, BaselineError> {
    let mut fp = Vec::with_capacity(2 * (N_METRICS + 1));
    for vm_id in reference {
        let records = store
            .records(&RunKey { workload_id, vm_id })
            .map_err(BaselineError::Sim)?;
        let n = records.len() as f64;
        let mut means = [0.0; N_METRICS];
        let mut time = 0.0;
        for r in &records {
            for (m, v) in means.iter_mut().zip(&r.metric_means) {
                *m += v;
            }
            time += r.execution_time_s;
        }
        for m in &mut means {
            *m /= n;
        }
        fp.extend_from_slice(&means);
        fp.push((time / n).ln());
    }
    Ok(fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vesta_workloads::Suite;

    fn trained() -> (Catalog, Suite, Paris) {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let sources: Vec<&Workload> = suite.source_training().into_iter().take(5).collect();
        let cfg = ParisConfig {
            reps: 2,
            ..Default::default()
        };
        let paris = Paris::train(&catalog, &sources, cfg).unwrap();
        (catalog, suite, paris)
    }

    #[test]
    fn training_counts_full_sweep() {
        let (_, _, paris) = trained();
        assert_eq!(paris.training_runs(), 5 * 120 * 2);
        assert_eq!(paris.reference_vms().len(), 2);
    }

    #[test]
    fn same_framework_predictions_are_sane() {
        // On a held-out Hadoop workload (same frameworks as training) PARIS
        // should pick a VM within a reasonable factor of optimal.
        let (catalog, suite, paris) = trained();
        let w = suite.by_name("Hadoop-kmeans").unwrap();
        let sel = paris.select(&catalog, w).unwrap();
        assert_eq!(sel.predicted_times.len(), 120);
        assert!(sel
            .predicted_times
            .values()
            .all(|t| t.is_finite() && *t > 0.0));
        let ranking = vesta_core::ground_truth_ranking(
            &catalog,
            w,
            1,
            vesta_cloud_sim::Objective::ExecutionTime,
        );
        let best = ranking[0].1;
        let chosen = ranking
            .iter()
            .find(|(vm, _)| *vm == sel.best_vm.into())
            .unwrap()
            .1;
        assert!(
            chosen <= 2.5 * best,
            "same-framework pick {}x off",
            chosen / best
        );
    }

    #[test]
    fn selection_is_deterministic() {
        let (catalog, suite, paris) = trained();
        let w = suite.by_name("Spark-count").unwrap();
        let a = paris.select(&catalog, w).unwrap();
        let b = paris.select(&catalog, w).unwrap();
        assert_eq!(a.best_vm, b.best_vm);
    }

    #[test]
    fn train_rejects_empty_and_bad_reference() {
        let catalog = Catalog::aws_ec2();
        assert!(Paris::train(&catalog, &[], ParisConfig::default()).is_err());
        let suite = Suite::paper();
        let sources: Vec<&Workload> = suite.source_training().into_iter().take(2).collect();
        let cfg = ParisConfig {
            reference_vms: ["nope.large".into(), "m5.large".into()],
            reps: 1,
            ..Default::default()
        };
        assert!(Paris::train(&catalog, &sources, cfg).is_err());
    }
}
