//! A CherryPick-style sequential searcher (Alipourfard et al., NSDI '17),
//! included as the related-work extension discussed in Section 6:
//! Bayesian-optimization search over cloud configurations, "designed to
//! predict performance in a small set of VM types" — it pays one real run
//! per probe and carries no cross-workload knowledge.
//!
//! The surrogate is a random forest over VM feature vectors (instead of
//! CherryPick's Gaussian process — same role, simpler machinery), with an
//! expected-improvement acquisition computed from the per-tree prediction
//! spread.

use vesta_cloud_sim::{Catalog, Simulator};
use vesta_ml::forest::{ForestConfig, RandomForest};
use vesta_ml::Matrix;
use vesta_workloads::{MemoryWatcher, Workload};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::BaselineError;

/// CherryPick-style search configuration.
#[derive(Debug, Clone)]
pub struct CherryPickConfig {
    /// Random probes before the surrogate takes over.
    pub init_probes: usize,
    /// Total probe budget (each probe = one cloud run).
    pub max_probes: usize,
    /// Surrogate forest parameters.
    pub forest: ForestConfig,
    /// RNG seed.
    pub seed: u64,
    /// Cluster size.
    pub nodes: u32,
}

impl Default for CherryPickConfig {
    fn default() -> Self {
        CherryPickConfig {
            init_probes: 3,
            max_probes: 12,
            forest: ForestConfig {
                n_trees: 40,
                max_depth: 8,
                ..Default::default()
            },
            seed: 42,
            nodes: 1,
        }
    }
}

/// Result of a search.
#[derive(Debug, Clone)]
pub struct CherryPickOutcome {
    /// Best VM found.
    pub best_vm: usize,
    /// Its observed time.
    pub best_time_s: f64,
    /// Probe history `(vm_id, observed_time)` in probe order — the
    /// progression curves of Fig. 12 read directly from this.
    pub probes: Vec<(usize, f64)>,
}

/// The searcher.
pub struct CherryPick {
    config: CherryPickConfig,
}

impl CherryPick {
    /// New searcher.
    pub fn new(config: CherryPickConfig) -> Self {
        CherryPick { config }
    }

    /// Run the sequential search for one workload.
    pub fn search(
        &self,
        catalog: &Catalog,
        workload: &Workload,
    ) -> Result<CherryPickOutcome, BaselineError> {
        if self.config.init_probes == 0 || self.config.max_probes < self.config.init_probes {
            return Err(BaselineError::Training(
                "probe budget must cover the initial random probes".into(),
            ));
        }
        let sim = Simulator::default();
        let watcher = MemoryWatcher::default();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ workload.id);
        let mut probes: Vec<(usize, f64)> = Vec::new();
        let mut probed = vec![false; catalog.len()];

        let probe = |vm_id: usize,
                     probes: &mut Vec<(usize, f64)>,
                     probed: &mut Vec<bool>|
         -> Result<(), BaselineError> {
            let vm = catalog.get(vm_id).map_err(BaselineError::Sim)?;
            let demand = watcher.apply(&workload.demand(), vm);
            let t = sim
                .run(&demand, vm, self.config.nodes, probes.len() as u64)
                .map(|r| r.execution_time_s)
                .unwrap_or(f64::INFINITY); // OOM probes are wasted budget
            probes.push((vm_id, t));
            probed[vm_id] = true;
            Ok(())
        };

        // Initial random exploration.
        while probes.len() < self.config.init_probes {
            let vm_id = rng.gen_range(0..catalog.len());
            if !probed[vm_id] {
                probe(vm_id, &mut probes, &mut probed)?;
            }
        }

        // Surrogate-guided probes.
        while probes.len() < self.config.max_probes {
            let finite: Vec<&(usize, f64)> = probes.iter().filter(|(_, t)| t.is_finite()).collect();
            if finite.len() < 2 {
                // Not enough signal for a surrogate yet: keep exploring.
                let vm_id = rng.gen_range(0..catalog.len());
                if !probed[vm_id] {
                    probe(vm_id, &mut probes, &mut probed)?;
                }
                continue;
            }
            let mut rows: Vec<Vec<f64>> = Vec::with_capacity(finite.len());
            for &(vm, _) in finite.iter().copied() {
                rows.push(
                    catalog
                        .get(vm)
                        .map_err(BaselineError::Sim)?
                        .feature_vector(),
                );
            }
            let y: Vec<f64> = finite.iter().map(|(_, t)| t.ln()).collect();
            let x = Matrix::from_rows(&rows).map_err(BaselineError::Ml)?;
            let forest =
                RandomForest::fit(&x, &y, &self.config.forest).map_err(BaselineError::Ml)?;
            let best_log = vesta_ml::stats::fold_min_total(f64::INFINITY, y.iter().copied());

            // Expected improvement under a normal approximation of the
            // per-tree spread.
            let mut best_candidate: Option<(usize, f64)> = None;
            for vm in catalog.all() {
                if probed[vm.id] {
                    continue;
                }
                let preds = forest
                    .predict_all(&vm.feature_vector())
                    .map_err(BaselineError::Ml)?;
                let mu = vesta_ml::stats::mean(&preds);
                let sigma = vesta_ml::stats::std_dev(&preds).max(1e-6);
                let z = (best_log - mu) / sigma;
                let ei = sigma * (z * normal_cdf(z) + normal_pdf(z));
                if best_candidate.is_none_or(|(_, b)| ei > b) {
                    best_candidate = Some((vm.id, ei));
                }
            }
            match best_candidate {
                Some((vm_id, _)) => probe(vm_id, &mut probes, &mut probed)?,
                None => break, // every VM probed
            }
        }

        let (best_vm, best_time_s) = probes
            .iter()
            .filter(|(_, t)| t.is_finite())
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .copied()
            .ok_or_else(|| BaselineError::Training("all probes failed".into()))?;
        Ok(CherryPickOutcome {
            best_vm,
            best_time_s,
            probes,
        })
    }
}

fn normal_pdf(z: f64) -> f64 {
    (-(z * z) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Abramowitz–Stegun style approximation of the standard normal CDF.
fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Numerical-recipes rational approximation, |error| < 1.2e-7.
    let t = 1.0 / (1.0 + 0.5 * x.abs());
    let tau = t
        * (-x * x - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        1.0 - tau
    } else {
        tau - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vesta_cloud_sim::Objective;
    use vesta_workloads::Suite;

    #[test]
    fn erf_and_cdf_basics() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-5);
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!(normal_cdf(3.0) > 0.99);
        assert!(normal_cdf(-3.0) < 0.01);
    }

    #[test]
    fn search_finds_competitive_vm_within_budget() {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let w = suite.by_name("Spark-kmeans").unwrap();
        let cp = CherryPick::new(CherryPickConfig::default());
        let out = cp.search(&catalog, w).unwrap();
        assert!(out.probes.len() <= 12);
        assert!(out.best_time_s.is_finite());
        let ranking = vesta_core::ground_truth_ranking(&catalog, w, 1, Objective::ExecutionTime);
        let best = ranking[0].1;
        let chosen = ranking
            .iter()
            .find(|(v, _)| *v == out.best_vm.into())
            .unwrap()
            .1;
        assert!(
            chosen <= 3.0 * best,
            "{}x off after 12 probes",
            chosen / best
        );
    }

    #[test]
    fn probe_history_is_monotone_in_best_so_far() {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let w = suite.by_name("Hadoop-terasort").unwrap();
        let cp = CherryPick::new(CherryPickConfig::default());
        let out = cp.search(&catalog, w).unwrap();
        let mut best = f64::INFINITY;
        for (_, t) in &out.probes {
            best = best.min(*t);
        }
        assert_eq!(best, out.best_time_s);
    }

    #[test]
    fn rejects_degenerate_budget() {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let w = suite.by_name("Spark-grep").unwrap();
        let cp = CherryPick::new(CherryPickConfig {
            init_probes: 0,
            ..Default::default()
        });
        assert!(cp.search(&catalog, w).is_err());
        let cp = CherryPick::new(CherryPickConfig {
            init_probes: 5,
            max_probes: 3,
            ..Default::default()
        });
        assert!(cp.search(&catalog, w).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let catalog = Catalog::aws_ec2();
        let suite = Suite::paper();
        let w = suite.by_name("Spark-sort").unwrap();
        let cp = CherryPick::new(CherryPickConfig::default());
        let a = cp.search(&catalog, w).unwrap();
        let b = cp.search(&catalog, w).unwrap();
        assert_eq!(a.best_vm, b.best_vm);
        assert_eq!(a.probes, b.probes);
    }
}
