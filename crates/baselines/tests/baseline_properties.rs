//! Behavioural tests of the baseline systems: coverage/accuracy trade-off
//! for PARIS, framework asymmetry for Ernest, and budget discipline for
//! the CherryPick searcher.

use vesta_baselines::{CherryPick, CherryPickConfig, Ernest, ErnestConfig, Paris, ParisConfig};
use vesta_cloud_sim::{Catalog, Objective, Simulator};
use vesta_core::ground_truth_ranking;
use vesta_workloads::{MemoryWatcher, Suite, Workload};

fn regret(catalog: &Catalog, w: &Workload, chosen: usize) -> f64 {
    let ranking = ground_truth_ranking(catalog, w, 1, Objective::ExecutionTime);
    let best = ranking[0].1;
    let chosen = vesta_cloud_sim::VmTypeId::new(chosen);
    let got = ranking.iter().find(|(vm, _)| *vm == chosen).unwrap().1;
    100.0 * (got - best) / best
}

#[test]
fn paris_accuracy_improves_with_vm_coverage() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    // Train and test within one framework so only coverage varies.
    let hadoop: Vec<&Workload> = suite
        .all()
        .iter()
        .filter(|w| w.framework == vesta_workloads::Framework::Hadoop)
        .collect();
    let (train, test) = hadoop.split_at(8);
    let cfg = ParisConfig {
        reps: 2,
        ..Default::default()
    };
    let err_at = |n_vms: usize| -> f64 {
        let stride = (120 / n_vms).max(1);
        let vm_ids: Vec<usize> = (0..120).step_by(stride).take(n_vms).collect();
        let paris = Paris::train_on_vms(&catalog, train, &vm_ids, cfg.clone()).unwrap();
        let mut errs = Vec::new();
        for w in test {
            let sel = paris.select(&catalog, w).unwrap();
            errs.push(regret(&catalog, w, sel.best_vm));
        }
        vesta_ml::stats::mean(&errs)
    };
    let sparse = err_at(8);
    let dense = err_at(120);
    assert!(
        dense < sparse,
        "coverage should help: 8 VMs -> {sparse:.1}%, 120 VMs -> {dense:.1}%"
    );
}

#[test]
fn paris_training_runs_scale_with_coverage() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    let sources: Vec<&Workload> = suite.source_training().into_iter().take(3).collect();
    let cfg = ParisConfig {
        reps: 1,
        ..Default::default()
    };
    let small = Paris::train_on_vms(
        &catalog,
        &sources,
        &(0..10).collect::<Vec<_>>(),
        cfg.clone(),
    )
    .unwrap();
    let large =
        Paris::train_on_vms(&catalog, &sources, &(0..100).collect::<Vec<_>>(), cfg).unwrap();
    assert!(large.training_runs() > 5 * small.training_runs());
}

#[test]
fn ernest_prediction_error_grows_with_extrapolation_distance() {
    // Ernest trains on m5 sizes; its error should be larger on families
    // whose non-CPU resources differ most from m5 (i3en), at least for a
    // disk-sensitive workload.
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    let sim = Simulator::default();
    let watcher = MemoryWatcher::default();
    let w = suite.by_name("Hadoop-terasort").unwrap(); // disk-bound
    let ernest = Ernest::train(&catalog, w, &ErnestConfig::default()).unwrap();
    let err_on = |name: &str| -> f64 {
        let vm = catalog.by_name(name).unwrap();
        let truth = sim
            .expected_time(&watcher.apply(&w.demand(), vm), vm, 1)
            .unwrap();
        (ernest.predict(vm).unwrap() - truth).abs() / truth
    };
    let near = err_on("m5a.2xlarge"); // m5-like disk
    let far = err_on("i3en.2xlarge"); // 16x the disk bandwidth
    assert!(
        far > near,
        "i3en err {far:.2} should exceed m5a err {near:.2}"
    );
}

#[test]
fn ernest_is_cheap_to_train() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    let w = suite.by_name("Spark-count").unwrap();
    let ernest = Ernest::train(&catalog, w, &ErnestConfig::default()).unwrap();
    // orders of magnitude below a PARIS sweep
    assert!(ernest.training_runs() < 30);
}

#[test]
fn cherrypick_respects_probe_budget_and_improves_over_random() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    let w = suite.by_name("Spark-kmeans").unwrap();
    // guided search with 12 probes
    let guided = CherryPick::new(CherryPickConfig {
        max_probes: 12,
        ..Default::default()
    })
    .search(&catalog, w)
    .unwrap();
    assert!(guided.probes.len() <= 12);
    // pure random baseline: first 12 probes without surrogate (init = max)
    let random = CherryPick::new(CherryPickConfig {
        init_probes: 12,
        max_probes: 12,
        ..Default::default()
    })
    .search(&catalog, w)
    .unwrap();
    let rg = regret(&catalog, w, guided.best_vm);
    let rr = regret(&catalog, w, random.best_vm);
    assert!(
        rg <= rr + 10.0,
        "guided ({rg:.1}%) should be at least comparable to random ({rr:.1}%)"
    );
}

#[test]
fn cherrypick_more_probes_never_hurt() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    let w = suite.by_name("Spark-sort").unwrap();
    let short = CherryPick::new(CherryPickConfig {
        max_probes: 6,
        ..Default::default()
    })
    .search(&catalog, w)
    .unwrap();
    let long = CherryPick::new(CherryPickConfig {
        max_probes: 20,
        ..Default::default()
    })
    .search(&catalog, w)
    .unwrap();
    // same seed ⇒ the long run extends the short run's probe sequence
    assert_eq!(&long.probes[..3], &short.probes[..3]);
    assert!(long.best_time_s <= short.best_time_s);
}

#[test]
fn all_three_baselines_serve_every_target_workload() {
    let catalog = Catalog::aws_ec2();
    let suite = Suite::paper();
    let sources: Vec<&Workload> = suite.source_training().into_iter().take(4).collect();
    let paris = Paris::train(
        &catalog,
        &sources,
        ParisConfig {
            reps: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let cp = CherryPick::new(CherryPickConfig {
        max_probes: 6,
        ..Default::default()
    });
    for w in suite.target() {
        let ps = paris
            .select(&catalog, w)
            .unwrap_or_else(|e| panic!("PARIS {}: {e}", w.name()));
        assert!(ps.best_vm < 120);
        let ernest = Ernest::train(&catalog, w, &ErnestConfig::default())
            .unwrap_or_else(|e| panic!("Ernest {}: {e}", w.name()));
        assert!(ernest.select(&catalog).unwrap().best_vm < 120);
        let out = cp
            .search(&catalog, w)
            .unwrap_or_else(|e| panic!("CP {}: {e}", w.name()));
        assert!(out.best_vm < 120);
    }
}
