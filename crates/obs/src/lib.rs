//! # vesta-obs
//!
//! Zero-dependency telemetry for the Vesta serving stack: a
//! [`MetricsRegistry`] of counters, gauges and fixed-bucket histograms,
//! lightweight [`SpanGuard`] timers, and a stable-schema
//! [`TelemetrySnapshot`] serialized to JSON by hand (no serde — this crate
//! must never pull a tracing stack into the deterministic serving path).
//!
//! ## Determinism contract
//!
//! The wall clock is *injected* through [`Clock`]. Under [`Clock::Noop`]
//! (the default everywhere inside the engine) no time is ever read:
//! counters and value histograms still accumulate, but span durations are
//! not recorded, so two runs of a deterministic workload produce
//! bit-identical snapshots. [`Clock::Monotonic`] holds the crate's single
//! sanctioned `Instant::now` site (see [`clock`]); it is opted into only by
//! harnesses that *want* wall-clock latency histograms (`experiments
//! --telemetry`, `vesta predict --batch --metrics-json`).
//!
//! Instrumentation is designed to be overhead-bounded: a counter bump is
//! one relaxed atomic add, a histogram record is two, and handles are
//! `Arc`s resolved once at registration, never per event.

pub mod clock;
pub mod fuzzing;
pub mod json;
pub mod metrics;
pub mod snapshot;

pub use clock::{Clock, Stopclock};
pub use json::{JsonError, JsonValue};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, SpanGuard};
pub use snapshot::{HistogramSnapshot, TelemetrySnapshot, TELEMETRY_SCHEMA};

/// Open a timed span on a registry: `span!(registry, "cmf_solve")` returns
/// a [`SpanGuard`] that bumps `span.<name>.calls` immediately and records
/// its lifetime into the `span.<name>` histogram on drop (under a real
/// clock; a no-op under [`Clock::Noop`]).
#[macro_export]
macro_rules! span {
    ($registry:expr, $name:expr) => {
        $registry.span($name)
    };
}
