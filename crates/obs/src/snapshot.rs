//! Stable-schema telemetry snapshots.
//!
//! The JSON shape is versioned by [`TELEMETRY_SCHEMA`] and hand-rolled in
//! both directions (serialize here, parse via [`crate::json`]), keeping
//! the crate dependency-free:
//!
//! ```json
//! {
//!   "schema": "vesta-telemetry/1",
//!   "counters":   { "engine.requests": 34 },
//!   "gauges":     { "cmf.objective.last": 0.0123 },
//!   "histograms": {
//!     "cmf.epochs": { "bounds": [1, 2, 4], "buckets": [0, 1, 2, 1],
//!                     "count": 4, "sum": 11, "max": 7 }
//!   }
//! }
//! ```
//!
//! Maps are `BTreeMap`s, so serialization order is the sorted name order —
//! two equal snapshots serialize to identical bytes. `buckets` has one
//! entry more than `bounds` (the trailing overflow bucket). Counter and
//! histogram totals are exact up to 2^53 (the parser goes through `f64`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{parse as parse_json, JsonValue};

/// Version tag stamped into every serialized snapshot.
pub const TELEMETRY_SCHEMA: &str = "vesta-telemetry/1";

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Inclusive ascending upper bounds; the overflow bucket is implicit.
    pub bounds: Vec<u64>,
    /// Per-bucket counts, `bounds.len() + 1` entries (last = overflow).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Exact fixed-bucket percentile readout: the upper bound of the
    /// bucket holding the `p`-th percentile observation (1-based rank
    /// `ceil(p/100 · count)`); the overflow bucket reads as the tracked
    /// maximum. Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return self.bounds.get(i).copied().unwrap_or(self.max);
            }
        }
        self.max
    }

    /// Difference `self - baseline` per bucket (saturating). Bounds are
    /// taken from `self`; a baseline with different bounds yields a
    /// best-effort positional diff.
    pub fn delta(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .map(|(i, &c)| c.saturating_sub(baseline.buckets.get(i).copied().unwrap_or(0)))
                .collect(),
            count: self.count.saturating_sub(baseline.count),
            sum: self.sum.saturating_sub(baseline.sum),
            max: self.max.saturating_sub(baseline.max),
        }
    }
}

/// Point-in-time state of a whole [`crate::MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, 0.0 when absent.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// All counters under a dotted prefix (`"served."`,
    /// `"served.drain."`, …), in name order — the shape resilience
    /// audits consume when they assert over a whole counter family
    /// instead of one name.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
    }

    /// Sum of every counter under a dotted prefix.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters_with_prefix(prefix).map(|(_, v)| v).sum()
    }

    /// Before/after difference: every counter and histogram of `self`
    /// minus its value in `baseline` (saturating; metrics only grow),
    /// every gauge as a signed difference. Names absent from `baseline`
    /// count as zero there; names absent from `self` are dropped.
    pub fn delta(&self, baseline: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| (k.clone(), v.saturating_sub(baseline.counter(k))))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, &v)| {
                    let b = baseline.gauges.get(k).copied().unwrap_or(0.0);
                    // NaN == NaN for delta purposes: unchanged is zero.
                    let d = if v.to_bits() == b.to_bits() {
                        0.0
                    } else {
                        v - b
                    };
                    (k.clone(), d)
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| {
                    let zero = HistogramSnapshot::default();
                    let b = baseline.histograms.get(k).unwrap_or(&zero);
                    (k.clone(), v.delta(b))
                })
                .collect(),
        }
    }

    /// True when nothing moved: all counters, gauge deltas and histogram
    /// counts are zero.
    pub fn is_zero(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.gauges.values().all(|&v| v == 0.0)
            && self
                .histograms
                .values()
                .all(|h| h.count == 0 && h.buckets.iter().all(|&b| b == 0))
    }

    /// Serialize to the stable JSON schema (pretty, two-space indent).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{TELEMETRY_SCHEMA}\",");
        s.push_str("  \"counters\": {");
        push_map(&mut s, self.counters.iter(), |s, v| {
            let _ = write!(s, "{v}");
        });
        s.push_str("},\n  \"gauges\": {");
        push_map(&mut s, self.gauges.iter(), |s, v| push_f64(s, *v));
        s.push_str("},\n  \"histograms\": {");
        push_map(&mut s, self.histograms.iter(), |s, h| {
            s.push_str("{ \"bounds\": ");
            push_u64_array(s, &h.bounds);
            s.push_str(", \"buckets\": ");
            push_u64_array(s, &h.buckets);
            let _ = write!(
                s,
                ", \"count\": {}, \"sum\": {}, \"max\": {} }}",
                h.count, h.sum, h.max
            );
        });
        s.push_str("}\n}\n");
        s
    }

    /// Parse a snapshot serialized by [`TelemetrySnapshot::to_json`].
    /// Unknown top-level keys are ignored (schema is forward-extensible);
    /// a wrong `schema` tag or malformed JSON is an error.
    pub fn from_json(text: &str) -> Result<TelemetrySnapshot, String> {
        let root = parse_json(text)?;
        match root.get("schema").and_then(JsonValue::as_str) {
            Some(TELEMETRY_SCHEMA) => {}
            Some(other) => return Err(format!("unknown telemetry schema {other:?}")),
            None => return Err("missing \"schema\" tag".into()),
        }
        let mut snap = TelemetrySnapshot::default();
        for (k, v) in root.get("counters").map(object_entries).unwrap_or_default() {
            snap.counters.insert(
                k.clone(),
                v.as_f64()
                    .ok_or_else(|| format!("counter {k} not numeric"))? as u64,
            );
        }
        for (k, v) in root.get("gauges").map(object_entries).unwrap_or_default() {
            snap.gauges.insert(
                k.clone(),
                v.as_f64().ok_or_else(|| format!("gauge {k} not numeric"))?,
            );
        }
        for (k, v) in root
            .get("histograms")
            .map(object_entries)
            .unwrap_or_default()
        {
            snap.histograms.insert(k.clone(), parse_histogram(&k, &v)?);
        }
        Ok(snap)
    }
}

/// The `(key, value)` entries of an object value (empty for non-objects).
fn object_entries(v: &JsonValue) -> Vec<(String, JsonValue)> {
    match v {
        JsonValue::Object(entries) => entries.clone(),
        _ => Vec::new(),
    }
}

fn parse_histogram(name: &str, v: &JsonValue) -> Result<HistogramSnapshot, String> {
    let field_u64 = |f: &str| -> Result<u64, String> {
        v.get(f)
            .and_then(JsonValue::as_f64)
            .map(|x| x as u64)
            .ok_or_else(|| format!("histogram {name}: missing numeric {f:?}"))
    };
    let array_u64 = |f: &str| -> Result<Vec<u64>, String> {
        v.get(f)
            .and_then(JsonValue::as_array)
            .ok_or_else(|| format!("histogram {name}: missing array {f:?}"))?
            .iter()
            .map(|x| {
                x.as_f64()
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("histogram {name}: non-numeric {f:?} entry"))
            })
            .collect()
    };
    Ok(HistogramSnapshot {
        bounds: array_u64("bounds")?,
        buckets: array_u64("buckets")?,
        count: field_u64("count")?,
        sum: field_u64("sum")?,
        max: field_u64("max")?,
    })
}

/// Write a `"key": value` map body with 4-space-indented entries.
fn push_map<'a, V: 'a>(
    s: &mut String,
    entries: impl ExactSizeIterator<Item = (&'a String, &'a V)>,
    mut push_value: impl FnMut(&mut String, &V),
) {
    let n = entries.len();
    for (i, (k, v)) in entries.enumerate() {
        s.push_str("\n    ");
        push_json_string(s, k);
        s.push_str(": ");
        push_value(s, v);
        if i + 1 < n {
            s.push(',');
        }
    }
    if n > 0 {
        s.push_str("\n  ");
    }
}

fn push_u64_array(s: &mut String, xs: &[u64]) {
    s.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{x}");
    }
    s.push(']');
}

/// Finite floats print via Rust's shortest-round-trip `Display` (always a
/// valid JSON number, never scientific notation); non-finite values have
/// no JSON encoding and degrade to `null` (parsed back as NaN).
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        // Bare integers like `3` are valid JSON numbers but lose the
        // "this is a float" hint; keep a fractional part for stability.
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(s, "{v:.1}");
        } else {
            let _ = write!(s, "{v}");
        }
    } else {
        s.push_str("null");
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn push_json_string(s: &mut String, raw: &str) {
    s.push('"');
    for c in raw.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::noop();
        reg.counter("engine.requests").add(34);
        reg.counter("cache.hits").inc();
        reg.gauge("cmf.objective.last").set(0.012_345);
        let h = reg.histogram_with("cmf.epochs", &[1, 2, 4, 8, 16]);
        for v in [3u64, 5, 5, 17, 800] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn round_trip_delta_is_zero() {
        let snap = sample_registry().snapshot();
        let json = snap.to_json();
        let parsed = TelemetrySnapshot::from_json(&json).expect("parses");
        assert_eq!(parsed, snap);
        assert!(parsed.delta(&snap).is_zero());
        // And serialization is byte-stable.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn delta_subtracts_per_name() {
        let reg = sample_registry();
        let before = reg.snapshot();
        reg.counter("engine.requests").add(6);
        reg.histogram_with("cmf.epochs", &[]).record(2);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counter("engine.requests"), 6);
        assert_eq!(d.counter("cache.hits"), 0);
        assert_eq!(d.histograms["cmf.epochs"].count, 1);
        assert!(!d.is_zero());
    }

    #[test]
    fn schema_tag_is_enforced() {
        assert!(TelemetrySnapshot::from_json("{}").is_err());
        assert!(TelemetrySnapshot::from_json("{\"schema\": \"other/9\"}").is_err());
        let minimal = format!("{{\"schema\": \"{TELEMETRY_SCHEMA}\"}}");
        let snap = TelemetrySnapshot::from_json(&minimal).expect("minimal parses");
        assert!(snap.is_zero());
    }

    #[test]
    fn empty_snapshot_serializes_cleanly() {
        let snap = TelemetrySnapshot::default();
        let parsed = TelemetrySnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(parsed, snap);
        assert!(parsed.is_zero());
    }
}
