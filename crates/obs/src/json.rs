//! A minimal, dependency-free JSON reader **and writer**.
//!
//! Parses the subset of JSON the workspace actually emits (objects,
//! arrays, strings, numbers, booleans, null, `\uXXXX` escapes) into a
//! [`JsonValue`] tree. Numbers land in `f64`, which is exact for the
//! integer counters this crate round-trips (< 2^53). Object entries keep
//! their source order. Used by [`crate::TelemetrySnapshot::from_json`] and
//! by `vesta-xtask`'s `perf-check` to read benchmark reports without
//! pulling serde into a zero-dependency crate.
//!
//! The writer ([`JsonValue::to_json`] / [`JsonValue::to_json_pretty`])
//! is the emission path for every `results/BENCH_*.json` ledger: the
//! bench crate builds a [`JsonValue`] tree and renders it here, so the
//! artifacts on disk never depend on an external serializer. Rendering
//! is deterministic — entries keep their insertion order and floats use
//! Rust's shortest-round-trip `Display` — so equal trees serialize to
//! identical bytes, and `parse(v.to_json())` reproduces `v` for every
//! tree whose numbers are finite (NaN/inf degrade to `null`, which reads
//! back as NaN via [`JsonValue::as_f64`]).

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, entries in source order (duplicate keys keep both).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walk nested objects by a key path, e.g. `["series", "latency_ms", "p99"]`.
    pub fn get_path(&self, path: &[&str]) -> Option<&JsonValue> {
        let mut cur = self;
        for key in path {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// The number inside, if any (`null` reads as NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array inside, if any.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The bool inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render as compact JSON (no whitespace).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write(&mut out, None, 0);
        out
    }

    /// Render as pretty JSON (two-space indent, one entry per line),
    /// trailing newline included so files end cleanly.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::with_capacity(1024);
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => push_number(out, *n),
            JsonValue::Str(s) => crate::snapshot::push_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_break(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    push_break(out, indent, level);
                }
                out.push(']');
            }
            JsonValue::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_break(out, indent, level + 1);
                    crate::snapshot::push_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if !entries.is_empty() {
                    push_break(out, indent, level);
                }
                out.push('}');
            }
        }
    }
}

fn push_break(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Numbers with no fractional part inside the `f64`-exact integer range
/// print as integers (`3`, not `3.0`) — counter-like fields stay integral
/// on disk; everything else uses shortest-round-trip `Display`. Non-finite
/// values have no JSON encoding and degrade to `null`.
fn push_number(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Nesting depth cap: beyond this the input is hostile, not telemetry.
/// The recursive-descent `value` would otherwise translate input bytes
/// into stack frames one-for-one, and a few hundred KB of `[[[[…` is a
/// stack overflow — an abort, not an `Err`.
const MAX_DEPTH: usize = 128;

/// Typed parse failure. Every variant carries the byte offset the parser
/// stopped at, so fuzzers and telemetry plumbing can assert on the shape
/// of a rejection instead of grepping a rendered string.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum JsonError {
    /// Nesting exceeded [`MAX_DEPTH`]: adversarial input, not telemetry.
    /// Returned as a value precisely so deep documents cannot convert
    /// parser recursion into a stack overflow abort.
    TooDeep { at: usize, limit: usize },
    /// Any other malformed-document rejection.
    Syntax { at: usize, detail: String },
}

impl JsonError {
    /// Byte offset the parser stopped at.
    pub fn at(&self) -> usize {
        match self {
            JsonError::TooDeep { at, .. } | JsonError::Syntax { at, .. } => *at,
        }
    }

    /// Malformed input never heals on retry: always `false`. Present so
    /// retry/shed policy can branch on the type like every other error
    /// in the workspace.
    pub fn is_transient(&self) -> bool {
        false
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::TooDeep { at, limit } => {
                write!(f, "json parse error at byte {at}: nesting deeper than {limit}")
            }
            JsonError::Syntax { at, detail } => {
                write!(f, "json parse error at byte {at}: {detail}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

/// Legacy shim: callers that thread `Result<_, String>` keep working.
impl From<JsonError> for String {
    fn from(e: JsonError) -> String {
        e.to_string()
    }
}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::Syntax {
            at: self.pos,
            detail: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), JsonError> {
        if self.bump() == Some(want) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected {:?}", want as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep {
                at: self.pos,
                limit: MAX_DEPTH,
            });
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Object(entries)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a clean UTF-8 run up to the next quote/escape.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                let run = self.bytes.get(start..self.pos).unwrap_or_default();
                out.push_str(
                    std::str::from_utf8(run).map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{8}'),
            Some(b'f') => out.push('\u{c}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require the trailing \uXXXX half.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("unpaired UTF-16 surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code)
                } else {
                    char::from_u32(hi)
                };
                out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            _ => return Err(self.err("invalid escape sequence")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or_default();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), JsonValue::Num(-1250.0));
        assert_eq!(
            parse("\"a\\nb\\u00e9\"").unwrap(),
            JsonValue::Str("a\nbé".into())
        );
    }

    #[test]
    fn parses_nested_structures_and_paths() {
        let v = parse(
            r#"{"series": {"latency_ms": {"p99": 12.5, "samples": [1, 2, 3]}}, "ok": false}"#,
        )
        .unwrap();
        assert_eq!(
            v.get_path(&["series", "latency_ms", "p99"])
                .and_then(JsonValue::as_f64),
            Some(12.5)
        );
        assert_eq!(
            v.get_path(&["series", "latency_ms", "samples"])
                .and_then(JsonValue::as_array)
                .map(<[JsonValue]>::len),
            Some(3)
        );
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} x",
            "\"unterminated",
            "nulla",
            "\"\\u12\"",
            "--1",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".into())
        );
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn depth_is_bounded_with_a_typed_error() {
        let deep = format!("{}1{}", "[".repeat(400), "]".repeat(400));
        match parse(&deep) {
            Err(JsonError::TooDeep { at, limit }) => {
                assert_eq!(limit, MAX_DEPTH);
                // The parser stops where nesting first crosses the cap.
                assert_eq!(at, MAX_DEPTH + 1);
            }
            other => panic!("expected TooDeep, got {other:?}"),
        }
        // Objects recurse through the same guard.
        let deep_obj = "{\"k\":".repeat(400) + "1" + &"}".repeat(400);
        assert!(matches!(
            parse(&deep_obj),
            Err(JsonError::TooDeep { .. })
        ));
    }

    #[test]
    fn errors_are_typed_and_never_transient() {
        let e = parse("{\"a\" 1}").expect_err("malformed");
        assert!(matches!(e, JsonError::Syntax { .. }));
        assert!(!e.is_transient());
        assert_eq!(e.at(), 5);
        assert!(e.to_string().contains("byte 5"));
        // The legacy String shim renders identically.
        assert_eq!(String::from(e.clone()), e.to_string());
    }

    #[test]
    fn writer_round_trips_through_parser() {
        let v = JsonValue::Object(vec![
            ("id".into(), JsonValue::Str("drift".into())),
            (
                "rows".into(),
                JsonValue::Array(vec![
                    JsonValue::Num(3.0),
                    JsonValue::Num(0.125),
                    JsonValue::Num(-17.0),
                ]),
            ),
            ("ok".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
            ("esc".into(), JsonValue::Str("a\"b\\c\nd".into())),
            ("empty_obj".into(), JsonValue::Object(vec![])),
            ("empty_arr".into(), JsonValue::Array(vec![])),
        ]);
        for text in [v.to_json(), v.to_json_pretty()] {
            assert_eq!(parse(&text).expect("writer output parses"), v);
        }
    }

    #[test]
    fn writer_formats_integers_without_fraction() {
        assert_eq!(JsonValue::Num(3.0).to_json(), "3");
        assert_eq!(JsonValue::Num(0.5).to_json(), "0.5");
        assert_eq!(JsonValue::Num(-2.0).to_json(), "-2");
        assert_eq!(JsonValue::Num(f64::NAN).to_json(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn writer_is_deterministic_and_compact_has_no_whitespace() {
        let v = JsonValue::Object(vec![
            ("b".into(), JsonValue::Num(1.0)),
            (
                "a".into(),
                JsonValue::Array(vec![JsonValue::Str("x y".into())]),
            ),
        ]);
        let compact = v.to_json();
        assert_eq!(compact, v.to_json());
        // insertion order is preserved, not sorted
        assert_eq!(compact, r#"{"b":1,"a":["x y"]}"#);
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n  \"b\": 1"));
        assert!(pretty.ends_with('\n'));
    }
}
