//! Injectable time source.
//!
//! Every duration the telemetry layer ever records flows through
//! [`Clock`]: the engine holds whichever variant its caller injected and
//! never reads time on its own. [`Clock::Noop`] reads nothing and keeps
//! replay and tests bit-identical; [`Clock::Monotonic`] is the second
//! sanctioned wall-clock site in the workspace (the first being the bench
//! harness's `Stopwatch`), and the only one library code may reach.

use std::time::Instant;

/// The injected time source of a [`crate::MetricsRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Clock {
    /// The NoopClock: never reads time. Span durations are not recorded
    /// (their call counters still are), so instrumented output stays
    /// bit-identical to the uninstrumented path. The default.
    #[default]
    Noop,
    /// Monotonic wall clock for latency histograms. Opt-in only: telemetry
    /// consumers that want real durations inject this at the edge
    /// (benchmarks, the CLI), never inside deterministic model code.
    Monotonic,
}

impl Clock {
    /// Begin a measurement: `None` under [`Clock::Noop`], a running
    /// [`Stopclock`] under [`Clock::Monotonic`].
    pub fn start(&self) -> Option<Stopclock> {
        match self {
            Clock::Noop => None,
            Clock::Monotonic => Some(Stopclock {
                // vesta-lint: allow(wallclock-in-core, reason = "the obs clock abstraction's single sanctioned wall-clock read; durations measure the host for latency histograms and are only taken when a caller explicitly injected Clock::Monotonic — deterministic paths run under Clock::Noop and never reach this arm")
                started: Instant::now(),
            }),
        }
    }
}

/// A running measurement handed out by [`Clock::start`].
#[derive(Debug, Clone, Copy)]
pub struct Stopclock {
    started: Instant,
}

impl Stopclock {
    /// Nanoseconds elapsed since [`Clock::start`], saturated to `u64`
    /// (584 years of headroom).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_clock_never_starts() {
        assert!(Clock::Noop.start().is_none());
        assert_eq!(Clock::default(), Clock::Noop);
    }

    #[test]
    fn monotonic_clock_measures_forward() {
        let t = Clock::Monotonic.start().expect("monotonic clock starts");
        let a = t.elapsed_ns();
        let b = t.elapsed_ns();
        assert!(b >= a);
    }
}
