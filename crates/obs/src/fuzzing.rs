//! Shared fuzz harness for the hand-rolled JSON reader and the
//! `vesta-telemetry/1` snapshot codec.
//!
//! The cargo-fuzz target (`fuzz/fuzz_targets/obs_json.rs`) is a two-line
//! wrapper around [`json_fuzz_case`]; keeping the body here means the
//! exact same property runs both under libFuzzer with coverage feedback
//! (CI's `fuzz-smoke` job) and as a seeded in-tree smoke sweep
//! (`tests/fuzz_smoke.rs`) on every plain `cargo test`.
//!
//! The property is the parser's safety contract stated as code:
//!
//! 1. arbitrary bytes may produce a typed [`crate::json::JsonError`] but
//!    never a panic — and in particular deeply-nested input must come
//!    back as [`crate::json::JsonError::TooDeep`], not recurse the stack
//!    into an abort;
//! 2. anything that parses must re-render through the writer and parse
//!    back to the same tree (exactly, when every number is finite;
//!    non-finite numbers degrade to `null` and must be *stable* from the
//!    first re-render onward);
//! 3. [`crate::TelemetrySnapshot::from_json`] never panics, and a
//!    snapshot it accepts serializes byte-stably: render → parse →
//!    render reproduces the first rendering exactly.

use crate::json::{parse, JsonError, JsonValue};
use crate::TelemetrySnapshot;

/// Run every JSON entry point over one arbitrary byte string. Panics
/// (failing the fuzzer or the smoke sweep) only when a parser guarantee
/// is broken; returns normally otherwise.
pub fn json_fuzz_case(data: &[u8]) {
    if let Err(violation) = json_properties(data) {
        // vesta-lint: allow(panic-in-lib, reason = "this IS the fuzz oracle: a panic here is libFuzzer's (and the smoke sweep's) failure signal for a broken parser guarantee; production code never calls this module")
        panic!("obs json contract violated: {violation}");
    }
}

/// The parser contract as a checkable property; `Err` describes the
/// first violated guarantee.
fn json_properties(data: &[u8]) -> Result<(), String> {
    // Non-UTF-8 input cannot even reach the parser's signature.
    let Ok(text) = std::str::from_utf8(data) else {
        return Ok(());
    };

    match parse(text) {
        Ok(v) => value_round_trips(&v)?,
        Err(JsonError::TooDeep { limit, .. }) => {
            // Reaching this arm at all is the guarantee: the parser
            // returned a value instead of overflowing its stack.
            if limit == 0 {
                return Err("TooDeep must carry the real depth cap".to_string());
            }
        }
        // A syntax rejection is a typed rejection, which is all this
        // property asks of a failure.
        Err(JsonError::Syntax { .. }) => {}
    }

    snapshot_round_trips(text)?;
    Ok(())
}

/// A parsed tree re-renders (compact and pretty) into text the parser
/// accepts again; equal exactly when all numbers are finite, and stable
/// under a second cycle always.
fn value_round_trips(v: &JsonValue) -> Result<(), String> {
    for rendered in [v.to_json(), v.to_json_pretty()] {
        let again = parse(&rendered)
            .map_err(|e| format!("writer output must reparse: {e} in {rendered:?}"))?;
        if all_finite(v) && again != *v {
            return Err(format!("round-trip altered a finite tree: {v:?} -> {again:?}"));
        }
        // Non-finite numbers degraded to null; from here the rendering
        // must be a fixed point.
        let stable = parse(&again.to_json())
            .map_err(|e| format!("second-cycle output must reparse: {e}"))?;
        if stable.to_json() != again.to_json() {
            return Err("rendering must stabilize after one cycle".to_string());
        }
    }
    Ok(())
}

fn all_finite(v: &JsonValue) -> bool {
    match v {
        JsonValue::Num(n) => n.is_finite(),
        JsonValue::Array(items) => items.iter().all(all_finite),
        JsonValue::Object(entries) => entries.iter().all(|(_, v)| all_finite(v)),
        JsonValue::Null | JsonValue::Bool(_) | JsonValue::Str(_) => true,
    }
}

/// `TelemetrySnapshot::from_json` on arbitrary text: a typed error or a
/// snapshot whose serialization is byte-stable across a full cycle.
fn snapshot_round_trips(text: &str) -> Result<(), String> {
    let Ok(snap) = TelemetrySnapshot::from_json(text) else {
        return Ok(());
    };
    let first = snap.to_json();
    let reparsed = TelemetrySnapshot::from_json(&first)
        .map_err(|e| format!("own serialization must parse back: {e}"))?;
    let second = reparsed.to_json();
    if first != second {
        return Err(format!(
            "snapshot serialization not byte-stable:\n{first}\nvs\n{second}"
        ));
    }
    Ok(())
}
