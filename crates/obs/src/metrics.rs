//! The metrics registry: counters, gauges, fixed-bucket histograms and
//! span guards.
//!
//! Handles are `Arc`s resolved once by name and then bumped lock-free with
//! relaxed atomics — the hot serving path never takes the registry lock.
//! All name maps are `BTreeMap`s so snapshots enumerate in a stable order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use crate::clock::{Clock, Stopclock};
use crate::snapshot::{HistogramSnapshot, TelemetrySnapshot};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value (queue depth, objective at exit).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 until first set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Fixed-bucket histogram over `u64` values (latency in nanoseconds, SGD
/// epoch counts, …). `bounds` are inclusive ascending upper bounds; one
/// implicit overflow bucket catches everything beyond the last bound, and
/// the tracked maximum keeps the percentile readout exact there.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Default bounds for latency histograms: 1 µs doubling up to ~17 minutes,
/// in nanoseconds.
pub(crate) fn default_latency_bounds() -> Vec<u64> {
    (0..30).map(|k| 1_000u64 << k).collect()
}

impl Histogram {
    fn new(bounds: Vec<u64>) -> Self {
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            buckets: (0..n).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < v)
            .min(self.buckets.len() - 1);
        if let Some(b) = self.buckets.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time snapshot of this histogram.
    pub fn snap(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// RAII span: created by [`MetricsRegistry::span`] (or the [`crate::span!`]
/// macro), bumps `span.<name>.calls` on open and records its lifetime into
/// the `span.<name>` histogram on drop — under a real clock only, so spans
/// are free of wall-clock reads under [`Clock::Noop`].
#[derive(Debug)]
pub struct SpanGuard {
    /// Deterministic span id: FNV-1a of the span name xor the per-name
    /// call ordinal, so a deterministic single-threaded run reproduces the
    /// exact id sequence.
    pub id: u64,
    started: Option<Stopclock>,
    durations: Arc<Histogram>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t) = self.started {
            self.durations.record(t.elapsed_ns());
        }
    }
}

/// FNV-1a, the workspace's standard cheap stable hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The registry: names metrics, hands out `Arc` handles, snapshots state.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    clock: Clock,
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Registry under the NoopClock: all counts, no durations,
    /// bit-identical output. What the engine holds by default.
    pub fn noop() -> Self {
        MetricsRegistry::with_clock(Clock::Noop)
    }

    /// Registry under the given injected clock.
    pub fn with_clock(clock: Clock) -> Self {
        MetricsRegistry {
            clock,
            ..MetricsRegistry::default()
        }
    }

    /// The injected clock.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Handle to the named counter, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = read(&self.counters).get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            write(&self.counters)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Handle to the named gauge, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = read(&self.gauges).get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            write(&self.gauges)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Handle to the named histogram with the default latency bounds.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &default_latency_bounds())
    }

    /// Handle to the named histogram with explicit bounds. If the name is
    /// already registered, the existing histogram (and its original
    /// bounds) wins.
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(h) = read(&self.histograms).get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            write(&self.histograms)
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds.to_vec()))),
        )
    }

    /// Open a span named `name` (see [`SpanGuard`]).
    pub fn span(&self, name: &str) -> SpanGuard {
        let calls = self.counter(&format!("span.{name}.calls"));
        calls.inc();
        SpanGuard {
            id: fnv1a(name.as_bytes()) ^ calls.get(),
            started: self.clock.start(),
            durations: self.histogram(&format!("span.{name}")),
        }
    }

    /// Point-in-time snapshot of every metric, names in sorted order.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: read(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: read(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: read(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snap()))
                .collect(),
        }
    }
}

/// Read-lock that shrugs off poisoning: telemetry state is a monotone pile
/// of atomics, so a panicking writer cannot leave it torn.
fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock with the same poisoning policy as [`read`].
fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_handles() {
        let reg = MetricsRegistry::noop();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.counter("y").get(), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let reg = MetricsRegistry::noop();
        let g = reg.gauge("obj");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(reg.gauge("obj").get(), -2.25);
    }

    #[test]
    fn histogram_buckets_and_percentiles() {
        let reg = MetricsRegistry::noop();
        let h = reg.histogram_with("epochs", &[1, 2, 4, 8]);
        for v in [1u64, 1, 2, 3, 5, 9, 100] {
            h.record(v);
        }
        let s = h.snap();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 121);
        assert_eq!(s.max, 100);
        assert_eq!(s.buckets, vec![2, 1, 1, 1, 2]);
        assert_eq!(s.percentile(50.0), 4);
        assert_eq!(s.percentile(99.0), 100); // overflow bucket reads the max
    }

    #[test]
    fn span_ids_are_deterministic_per_name() {
        let a = {
            let reg = MetricsRegistry::noop();
            let ids: Vec<u64> = (0..3).map(|_| reg.span("solve").id).collect();
            ids
        };
        let b = {
            let reg = MetricsRegistry::noop();
            let ids: Vec<u64> = (0..3).map(|_| reg.span("solve").id).collect();
            ids
        };
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn noop_spans_record_no_durations() {
        let reg = MetricsRegistry::noop();
        {
            let _g = crate::span!(reg, "cmf_solve");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("span.cmf_solve.calls"), 1);
        let h = snap
            .histograms
            .get("span.cmf_solve")
            .expect("span histogram registered");
        assert_eq!(h.count, 0, "NoopClock must not record durations");
    }

    #[test]
    fn monotonic_spans_do_record() {
        let reg = MetricsRegistry::with_clock(Clock::Monotonic);
        {
            let _g = reg.span("timed");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.get("span.timed").map(|h| h.count), Some(1));
    }
}
