//! Seeded smoke sweep of the shared JSON fuzz harness.
//!
//! Runs [`vesta_obs::fuzzing::json_fuzz_case`] — the exact body the
//! cargo-fuzz target wraps — over deterministic corpora on every plain
//! `cargo test`, so the parser's no-panic / round-trip / depth-cap
//! contract is exercised even where libFuzzer is unavailable:
//!
//! 1. raw splitmix64 byte strings of varied lengths,
//! 2. well-formed documents (telemetry snapshots among them), and
//! 3. seeded single-byte mutations of those well-formed buffers (the
//!    near-miss corpus where parser bugs actually live),
//! 4. adversarial deep nesting, proving the depth cap returns a typed
//!    error instead of overflowing the stack.

use vesta_obs::fuzzing::json_fuzz_case;
use vesta_obs::json::{parse, JsonError};

/// Deterministic byte-string generator (splitmix64 over a fixed seed).
struct ByteGen(u64);

impl ByteGen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| (self.next_u64() & 0xFF) as u8).collect()
    }

    /// ASCII-biased bytes: JSON structure characters show up often
    /// enough for random strings to get past the first byte.
    fn jsonish(&mut self, len: usize) -> Vec<u8> {
        const ALPHABET: &[u8] = b"{}[]\",:.0123456789eE+-truefalsn \\u\n\t";
        (0..len)
            .map(|_| ALPHABET[(self.next_u64() as usize) % ALPHABET.len()])
            .collect()
    }
}

#[test]
fn random_bytes_never_panic_the_parser() {
    let mut generator = ByteGen(0x0B5_1EED_0F_1507);
    for round in 0..256u64 {
        let len = match round % 6 {
            0 => 0,
            1 => 1,
            2 => 16,
            3 => 128,
            4 => 1024,
            _ => (generator.next_u64() % 4096) as usize,
        };
        let data = generator.bytes(len);
        json_fuzz_case(&data);
        let data = generator.jsonish(len);
        json_fuzz_case(&data);
    }
}

/// Well-formed documents the sweep mutates, including a telemetry
/// snapshot so `TelemetrySnapshot::from_json` sees its happy path.
fn seed_corpus() -> Vec<Vec<u8>> {
    [
        r#"null"#,
        r#"[1, 2.5, -3e-2, "x", true, null]"#,
        r#"{"series": {"latency_ms": {"p99": 12.5, "samples": [1, 2, 3]}}, "ok": false}"#,
        r#""a\nb\u00e9 \ud83d\ude00""#,
        r#"{"schema": "vesta-telemetry/1",
           "counters": {"engine.requests": 34},
           "gauges": {"cmf.objective.last": 0.0123},
           "histograms": {"cmf.epochs": {"bounds": [1, 2, 4],
                                         "buckets": [0, 1, 2, 1],
                                         "count": 4, "sum": 11, "max": 7}}}"#,
        r#"{"schema": "vesta-telemetry/1", "counters": {}, "gauges": {"g": null}}"#,
        r#"[1e999, -1e999, 9007199254740993]"#,
    ]
    .into_iter()
    .map(|s| s.as_bytes().to_vec())
    .collect()
}

#[test]
fn well_formed_documents_survive_the_harness() {
    for buffer in seed_corpus() {
        json_fuzz_case(&buffer);
    }
}

#[test]
fn mutated_well_formed_documents_never_panic() {
    let corpus = seed_corpus();
    let mut generator = ByteGen(0x5EED_CAFE_2);
    for buffer in &corpus {
        for _ in 0..64 {
            let mut mutated = buffer.clone();
            match generator.next_u64() % 4 {
                // Flip one bit somewhere.
                0 if !mutated.is_empty() => {
                    let at = (generator.next_u64() as usize) % mutated.len();
                    mutated[at] ^= 1 << (generator.next_u64() % 8);
                }
                // Truncate to a prefix (torn document).
                1 if !mutated.is_empty() => {
                    let keep = (generator.next_u64() as usize) % mutated.len();
                    mutated.truncate(keep);
                }
                // Append trailing garbage.
                2 => {
                    let extra_len = 1 + (generator.next_u64() as usize) % 16;
                    let extra = generator.bytes(extra_len);
                    mutated.extend_from_slice(&extra);
                }
                // Overwrite one byte.
                _ if !mutated.is_empty() => {
                    let at = (generator.next_u64() as usize) % mutated.len();
                    mutated[at] = (generator.next_u64() & 0xFF) as u8;
                }
                _ => {}
            }
            json_fuzz_case(&mutated);
        }
    }
}

/// The regression shape for the depth cap: before the `MAX_DEPTH` guard,
/// this input overflowed the parser's stack (an abort no test harness
/// can catch); now it must come back as a typed `TooDeep` error. The
/// same bytes are committed as `fuzz/corpus/obs_json/deep-nesting`.
#[test]
fn adversarial_nesting_returns_too_deep_instead_of_overflowing() {
    for unit in ["[", "{\"k\":"] {
        for depth in [129usize, 400, 20_000] {
            let closer = match unit {
                "[" => "]",
                _ => "}",
            };
            let deep = format!("{}1{}", unit.repeat(depth), closer.repeat(depth));
            json_fuzz_case(deep.as_bytes());
            assert!(
                matches!(parse(&deep), Err(JsonError::TooDeep { .. })),
                "depth {depth} must be a typed rejection"
            );
        }
    }
}
