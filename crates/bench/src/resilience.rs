//! Extension experiment `resilience`: how gracefully the online pipeline
//! degrades when the simulated cloud misbehaves.
//!
//! The offline model is trained fault-free (the paper's setting); every
//! online prediction then runs under a composite [`FaultPlan`] whose knobs
//! all scale with a single sweep rate: transient run failures at the rate
//! itself, VM-type unavailability at a quarter of it, stragglers and
//! metric-sample dropout at half, and metric corruption at a quarter.
//! Per rate we report the top-1 and near-best (≤5% regret) selection
//! rates over the Spark target set, the time-prediction MAPE, and the
//! extra simulated runs charged to failed attempts — the price of the
//! retry/redraw machinery.
//!
//! A final row replays the acceptance plan (10% transient + 5% dropout)
//! and records whether every target prediction succeeded and how many
//! extra reference runs it cost.

use vesta_cloud_sim::{FaultPlan, RetryPolicy};
use vesta_workloads::Workload;

use crate::context::Context;
use crate::eval::{error_stats, selection_error};
use crate::report::{pct, ExperimentReport};

/// Fault-plan seed for the sweep; fixed so reruns are reproducible.
const SWEEP_FAULT_SEED: u64 = 0xFA17;

/// Composite plan whose components scale with one headline rate.
fn composite_plan(rate: f64) -> FaultPlan {
    FaultPlan {
        seed: SWEEP_FAULT_SEED,
        transient_failure_rate: rate,
        unavailable_rate: rate * 0.25,
        straggler_rate: rate * 0.5,
        straggler_slowdown: 2.5,
        sample_dropout_rate: rate * 0.5,
        metric_corruption_rate: rate * 0.25,
        ..FaultPlan::none()
    }
}

/// Per-rate aggregate over the target set.
struct SweepPoint {
    rate: f64,
    top1: f64,
    near_best: f64,
    mape: f64,
    extra_runs: usize,
    failed_ref_vms: usize,
    reference_vms: usize,
    all_succeeded: bool,
}

fn sweep_point(ctx: &Context, targets: &[&Workload], plan: FaultPlan, rate: f64) -> SweepPoint {
    let vesta = ctx.vesta();
    let mut top1 = 0usize;
    let mut near = 0usize;
    let mut mapes = Vec::new();
    let mut extra_runs = 0usize;
    let mut failed_ref_vms = 0usize;
    let mut reference_vms = 0usize;
    let mut all_succeeded = true;
    for w in targets {
        let predictor = vesta
            .predictor()
            .with_faults(plan.clone(), RetryPolicy::default());
        match predictor.predict(w) {
            Ok(p) => {
                let reg = selection_error(ctx, w, p.best_vm);
                if reg.abs() <= 1e-6 {
                    top1 += 1;
                }
                if reg <= 5.0 {
                    near += 1;
                }
                mapes.push(crate::eval::time_prediction_mape(
                    ctx,
                    w,
                    &p.predicted_times,
                ));
                extra_runs += p.extra_reference_runs;
                failed_ref_vms += p.failed_reference_vms.len();
                reference_vms += p.reference_vms;
            }
            Err(e) => {
                eprintln!(
                    "[resilience] predict({}) failed at rate {rate}: {e}",
                    w.name()
                );
                all_succeeded = false;
            }
        }
    }
    let n = targets.len().max(1) as f64;
    SweepPoint {
        rate,
        top1: 100.0 * top1 as f64 / n,
        near_best: 100.0 * near as f64 / n,
        mape: error_stats(&mapes).mape,
        extra_runs,
        failed_ref_vms,
        reference_vms,
        all_succeeded,
    }
}

/// Extension: fault-rate sweep of online selection quality and overhead.
pub fn resilience(ctx: &Context) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "resilience",
        "Graceful degradation under injected cloud faults (extension)",
        &[
            "Fault rate",
            "Top-1",
            "Near-best (<=5%)",
            "MAPE",
            "Extra runs",
            "Failed ref VMs",
            "Reference VMs",
        ],
    );
    let targets: Vec<&Workload> = ctx.suite.target();
    let rates = [0.0, 0.05, 0.10, 0.20, 0.30];

    let mut series = Vec::new();
    for &rate in &rates {
        let pt = sweep_point(ctx, &targets, composite_plan(rate), rate);
        report.row(vec![
            pct(100.0 * rate),
            pct(pt.top1),
            pct(pt.near_best),
            pct(pt.mape),
            format!("{}", pt.extra_runs),
            format!("{}", pt.failed_ref_vms),
            format!("{}", pt.reference_vms),
        ]);
        series.push(serde_json::json!({
            "rate": pt.rate,
            "top1_pct": pt.top1,
            "near_best_pct": pt.near_best,
            "mape": pt.mape,
            "extra_reference_runs": pt.extra_runs,
            "failed_reference_vms": pt.failed_ref_vms,
            "reference_vms": pt.reference_vms,
            "all_predictions_succeeded": pt.all_succeeded,
        }));
    }

    // Acceptance plan: 10% transient failures + 5% metric-sample dropout,
    // nothing else. Every target prediction must succeed with bounded
    // extra reference runs (also asserted by tests/failure_modes.rs).
    let acceptance = FaultPlan {
        seed: SWEEP_FAULT_SEED,
        transient_failure_rate: 0.10,
        sample_dropout_rate: 0.05,
        ..FaultPlan::none()
    };
    let acc = sweep_point(ctx, &targets, acceptance, 0.10);
    report.row(vec![
        "accept (10%t+5%d)".into(),
        pct(acc.top1),
        pct(acc.near_best),
        pct(acc.mape),
        format!("{}", acc.extra_runs),
        format!("{}", acc.failed_ref_vms),
        format!("{}", acc.reference_vms),
    ]);

    report.series = serde_json::json!({
        "sweep": series,
        "acceptance": {
            "plan": {"transient_failure_rate": 0.10, "sample_dropout_rate": 0.05},
            "all_predictions_succeeded": acc.all_succeeded,
            "extra_reference_runs": acc.extra_runs,
            "near_best_pct": acc.near_best,
            "mape": acc.mape,
        },
    });
    report.note(format!(
        "Acceptance plan (10% transient + 5% dropout): all predictions succeeded = {}, \
         extra reference runs = {}, near-best rate = {}.",
        acc.all_succeeded,
        acc.extra_runs,
        pct(acc.near_best)
    ));
    report.note(
        "Replacement references are redrawn deterministically (bounded at 2x the reference-set \
         size per prediction); extra runs count the retry/backoff budget charged to failures.",
    );
    let baseline_mape = report
        .series
        .pointer("/sweep/0/mape")
        .and_then(|v| v.as_f64())
        .unwrap_or(f64::NAN);
    report.note(format!(
        "At rate 0 the sweep is the fault-free baseline: the fault plan is provably inert \
         (bit-identical pipeline), MAPE {} matches fig6's Vesta column.",
        pct(baseline_mape)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_plan_scales_with_rate_and_zero_is_none() {
        assert!(composite_plan(0.0).is_none());
        let p = composite_plan(0.2);
        assert!((p.transient_failure_rate - 0.2).abs() < 1e-12);
        assert!((p.unavailable_rate - 0.05).abs() < 1e-12);
        assert!((p.sample_dropout_rate - 0.1).abs() < 1e-12);
        assert!(p.validate().is_ok());
    }

    #[test]
    #[ignore = "trains a model; run explicitly or via `experiments resilience`"]
    fn resilience_report_has_sweep_and_acceptance_rows() {
        let ctx = Context::new(crate::context::Fidelity::Quick);
        let r = resilience(&ctx);
        assert_eq!(r.rows.len(), 6); // 5 sweep rates + acceptance row
        assert!(r.series.get("acceptance").is_some());
    }
}
