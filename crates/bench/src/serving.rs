//! Serving benchmark (extension): an **open-loop, coordinated-omission
//! safe** load generator against a live [`vesta_served::Server`].
//!
//! Requests are placed on a fixed arrival schedule (`arrival_i = i /
//! offered_rate`) before the run starts; a worker that falls behind does
//! not slow the schedule down, and every latency sample is measured from
//! the *scheduled* arrival rather than the send instant — the standard
//! defence against coordinated omission, where a stalled closed-loop
//! client silently stops observing the stall it caused.
//!
//! Two tenants share the server; halfway through the schedule both are
//! drained-and-swapped ([`vesta_served::Server::publish`]) while the
//! load is still running, so the benchmark doubles as a live check that
//! a publish never fails a request: clients must see only the old or the
//! new generation, and the run asserts **zero `failed` outcomes** and at
//! least one completed drain.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;
use vesta_core::{Knowledge, PredictOptions};
use vesta_served::{Server, ServerConfig, VestaClient};

use crate::context::{Context, Fidelity};
use crate::report::ExperimentReport;

const TENANTS: [&str; 2] = ["alpha", "beta"];

/// Latency percentile (ms) helper over raw per-request samples.
fn pctl(samples: &[f64], p: f64) -> f64 {
    vesta_ml::stats::percentile(samples, p).unwrap_or(f64::NAN)
}

/// One completed request, as the workers record it.
struct Sample {
    tenant: &'static str,
    label: &'static str,
    latency_ms: f64,
    generation: u64,
}

/// The `BENCH_serving` experiment.
pub fn serving(ctx: &Context) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "BENCH_serving",
        "Open-loop load against the vesta-served wire server \
         (two tenants, drain-and-swap mid-run)",
        &[
            "tenant",
            "requests",
            "ok",
            "degraded",
            "shed",
            "failed",
            "final gen",
        ],
    );

    // Offered load is calibrated for a single-core CI runner: the warm
    // serving capacity there is ~1.7 req/s, so ~1 req/s keeps the open
    // loop sustainable (sustained ≈ offered) while still overlapping
    // requests across workers.
    let (total, offered_rps, workers) = match ctx.fidelity {
        Fidelity::Full => (48, 1.2, 3),
        Fidelity::Quick => (12, 1.0, 3),
    };

    let vesta = ctx.vesta();
    let server = Server::start(ServerConfig::default()).expect("server binds on a free port");
    for tenant in TENANTS {
        let knowledge = Knowledge::from_snapshot(vesta.offline.to_snapshot(), ctx.catalog.clone())
            .expect("snapshot restores");
        let journal = std::env::temp_dir().join(format!(
            "vesta-bench-serving-{}-{tenant}.journal",
            std::process::id()
        ));
        server
            .add_tenant(tenant, knowledge, &journal)
            .expect("tenant registers");
    }
    let addr = server.local_addr();

    let names: Vec<String> = ctx
        .suite
        .target()
        .into_iter()
        .map(|w| w.name().to_string())
        .collect();
    assert!(!names.is_empty(), "target suite is non-empty");

    // The schedule clock: one stopwatch shared (by copy) with every
    // worker, so scheduled arrivals and completions are on one timeline.
    let clock = crate::Stopwatch::start();
    let next = AtomicUsize::new(0);
    let samples: Mutex<Vec<Sample>> = Mutex::new(Vec::with_capacity(total));
    let publish_generations: Mutex<Vec<(/* tenant */ &str, u64)>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut client = VestaClient::connect(addr).expect("client connects");
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let scheduled_s = i as f64 / offered_rps;
                    let now_s = clock.elapsed_s();
                    if scheduled_s > now_s {
                        std::thread::sleep(Duration::from_secs_f64(scheduled_s - now_s));
                    }
                    let tenant = TENANTS[i % TENANTS.len()];
                    let name = &names[i % names.len()];
                    let reply = client
                        .predict(tenant, &[name], PredictOptions::supervised())
                        .expect("predict round-trips");
                    assert_eq!(reply.outcomes.len(), 1, "one outcome per request");
                    // Coordinated-omission-safe: latency runs from the
                    // scheduled arrival, so queueing delay is charged to
                    // the server, not silently absorbed by the client.
                    let latency_ms = (clock.elapsed_s() - scheduled_s) * 1e3;
                    samples.lock().push(Sample {
                        tenant,
                        label: reply.outcomes[0].label(),
                        latency_ms,
                        generation: reply.generation,
                    });
                }
            });
        }

        // Mid-run drain-and-swap on both tenants, while load is live.
        let half_s = total as f64 / offered_rps / 2.0;
        let now_s = clock.elapsed_s();
        if half_s > now_s {
            std::thread::sleep(Duration::from_secs_f64(half_s - now_s));
        }
        for tenant in TENANTS {
            let generation = server.publish(tenant).expect("mid-run publish succeeds");
            publish_generations.lock().push((tenant, generation));
        }
    });
    let wall_s = clock.elapsed_s();

    let samples = samples.into_inner();
    let publishes = publish_generations.into_inner();
    assert_eq!(samples.len(), total, "every scheduled request completed");
    assert_eq!(publishes.len(), TENANTS.len());
    for (tenant, generation) in &publishes {
        assert!(
            *generation >= 1,
            "tenant '{tenant}' publish did not advance its generation"
        );
    }

    // The drain protocol promise: a request sees the old handle or the
    // new one, never a torn in-between — and never fails because of a
    // concurrent publish.
    let failed = samples.iter().filter(|s| s.label == "failed").count();
    assert_eq!(failed, 0, "a request failed under drain-and-swap");
    for s in &samples {
        assert!(
            s.generation <= 1,
            "tenant '{}' served unknown generation {}",
            s.tenant,
            s.generation
        );
    }

    // The METRICS verb must serve a parseable vesta-telemetry/1 snapshot
    // consistent with the traffic just sent.
    let mut client = VestaClient::connect(addr).expect("client connects");
    let snapshot_json = client.metrics().expect("METRICS round-trips");
    let snapshot = vesta_obs::TelemetrySnapshot::from_json(&snapshot_json)
        .expect("snapshot parses as vesta-telemetry/1");
    let served_requests = snapshot.counter("served.requests");
    assert!(
        served_requests >= total as u64,
        "served.requests {served_requests} < {total}"
    );
    let drains = snapshot.counter("served.drains");
    assert!(drains >= 1, "no drain recorded in telemetry");

    let sustained_rps = total as f64 / wall_s.max(1e-9);
    let latencies: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
    let (p50, p99) = (pctl(&latencies, 50.0), pctl(&latencies, 99.0));

    let count = |tenant: &str, label: &str| {
        samples
            .iter()
            .filter(|s| s.tenant == tenant && s.label == label)
            .count()
    };
    let mut tenant_rows = Vec::new();
    for tenant in TENANTS {
        let requests = samples.iter().filter(|s| s.tenant == tenant).count();
        let final_generation = publishes
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, g)| *g)
            .unwrap_or(0);
        let (ok, degraded, shed, failed) = (
            count(tenant, "ok"),
            count(tenant, "degraded"),
            count(tenant, "shed"),
            count(tenant, "failed"),
        );
        report.row(vec![
            tenant.to_string(),
            requests.to_string(),
            ok.to_string(),
            degraded.to_string(),
            shed.to_string(),
            failed.to_string(),
            final_generation.to_string(),
        ]);
        tenant_rows.push((
            tenant,
            requests,
            ok,
            degraded,
            shed,
            failed,
            final_generation,
        ));
    }

    report.note(format!(
        "open loop: {total} requests offered at {offered_rps:.2} req/s, sustained \
         {sustained_rps:.2} req/s over {wall_s:.1}s ({workers} workers)"
    ));
    report.note(format!(
        "latency under load (coordinated-omission safe, ms): p50 {p50:.1}, p99 {p99:.1}"
    ));
    report.note(format!(
        "drain-and-swap: {} publishes mid-run, {drains} drain(s) recorded, 0 failed outcomes",
        publishes.len()
    ));
    report.note(format!(
        "wire telemetry: served.requests {served_requests} over {} connection(s)",
        snapshot.counter("served.connections")
    ));

    report.series = serde_json::json!({
        "requests": total,
        "workers": workers,
        "offered_rps": offered_rps,
        "sustained_rps": sustained_rps,
        "wall_s": wall_s,
        "latency_ms": { "p50": p50, "p99": p99, "samples": latencies },
        "outcomes": {
            "ok": samples.iter().filter(|s| s.label == "ok").count(),
            "degraded": samples.iter().filter(|s| s.label == "degraded").count(),
            "shed": samples.iter().filter(|s| s.label == "shed").count(),
            "failed": failed,
        },
        "tenants": serde_json::Value::Object(
            tenant_rows
                .iter()
                .map(|(tenant, requests, ok, degraded, shed, failed, generation)| {
                    (
                        tenant.to_string(),
                        serde_json::json!({
                            "requests": requests,
                            "ok": ok,
                            "degraded": degraded,
                            "shed": shed,
                            "failed": failed,
                            "final_generation": generation,
                        }),
                    )
                })
                .collect::<serde_json::Map<String, serde_json::Value>>(),
        ),
        "drains": drains,
        "served_requests_counter": served_requests,
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_report_is_complete() {
        let ctx = Context::new(Fidelity::Quick);
        let r = serving(&ctx);
        assert_eq!(r.id, "BENCH_serving");
        assert_eq!(r.rows.len(), TENANTS.len());
        assert!(r.notes.iter().any(|n| n.contains("open loop")));
        assert!(r.notes.iter().any(|n| n.contains("drain-and-swap")));
        // Structured series checks (skipped gracefully if the JSON layer
        // is stubbed out and pointer() yields nothing).
        if let Some(n) = r.series.pointer("/requests").and_then(|v| v.as_u64()) {
            assert!(n >= 12);
            let rps = r
                .series
                .pointer("/sustained_rps")
                .and_then(|v| v.as_f64())
                .expect("sustained req/s present");
            assert!(rps > 0.0);
            let failed = r
                .series
                .pointer("/outcomes/failed")
                .and_then(|v| v.as_u64())
                .expect("failed count present");
            assert_eq!(failed, 0);
        }
    }
}
