//! Figures 6-8: effectiveness of Vesta against PARIS and Ernest.
//!
//! * Fig. 6 — MAPE of the predicted best VM vs ground truth, per workload
//!   (target set + testing set), for Vesta / PARIS / Ernest.
//! * Fig. 7 — predicted execution time of Spark-lr across 10 typical VM
//!   types, Vesta vs Ernest, as (Predicted/Observed) × 100 %.
//! * Fig. 8 — training overhead: reference VMs consumed per system.

use vesta_cloud_sim::Objective;
use vesta_core::ground_truth_ranking;
use vesta_workloads::Workload;

use crate::context::Context;
use crate::eval::{error_stats, selection_error};
use crate::report::{f, pct, ExperimentReport};

/// Fig. 6: prediction error comparison on the target (Spark) and testing
/// (Hadoop/Hive) sets.
pub fn fig6(ctx: &Context) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6",
        "Prediction error (MAPE) against alternatives on multiple frameworks",
        &[
            "Workload",
            "Set",
            "Vesta MAPE",
            "PARIS MAPE",
            "Ernest MAPE",
            "Vesta regret",
            "PARIS regret",
            "Ernest regret",
        ],
    );
    let vesta = ctx.vesta();
    let paris = ctx.paris();
    let mut series = Vec::new();
    let mut sums = (Vec::new(), Vec::new(), Vec::new()); // spark-set MAPE per system

    let eval_workloads: Vec<(&Workload, &str)> = ctx
        .suite
        .target()
        .into_iter()
        .map(|w| (w, "target"))
        .chain(
            ctx.suite
                .source_testing()
                .into_iter()
                .map(|w| (w, "testing")),
        )
        .collect();

    for (w, set) in eval_workloads {
        // Vesta
        let p = vesta.select_best_vm(w).expect("vesta prediction");
        let vesta_mape = crate::eval::time_prediction_mape(ctx, w, &p.predicted_times);
        let vesta_reg = selection_error(ctx, w, p.best_vm);
        // PARIS
        let ps = paris.select(&ctx.catalog, w).expect("paris selection");
        let paris_mape = crate::eval::time_prediction_mape(ctx, w, &ps.predicted_times);
        let paris_reg = selection_error(ctx, w, ps.best_vm);
        // Ernest (trained per workload)
        let ernest = ctx.ernest_for(w);
        let es = ernest.select(&ctx.catalog).expect("ernest selection");
        let ernest_mape = crate::eval::time_prediction_mape(ctx, w, &es.predicted_times);
        let ernest_reg = selection_error(ctx, w, es.best_vm);

        if set == "target" {
            sums.0.push(vesta_mape);
            sums.1.push(paris_mape);
            sums.2.push(ernest_mape);
        }
        report.row(vec![
            w.name(),
            set.to_string(),
            pct(vesta_mape),
            pct(paris_mape),
            pct(ernest_mape),
            pct(vesta_reg),
            pct(paris_reg),
            pct(ernest_reg),
        ]);
        series.push(serde_json::json!({
            "workload": w.name(), "set": set,
            "vesta_mape": vesta_mape, "paris_mape": paris_mape, "ernest_mape": ernest_mape,
            "vesta_regret": vesta_reg, "paris_regret": paris_reg, "ernest_regret": ernest_reg,
            "vesta_converged": p.converged,
        }));
    }
    let v = error_stats(&sums.0);
    let pa = error_stats(&sums.1);
    let er = error_stats(&sums.2);
    report.row(vec![
        "MEAN (target set)".into(),
        "target".into(),
        pct(v.mape),
        pct(pa.mape),
        pct(er.mape),
        String::new(),
        String::new(),
        String::new(),
    ]);
    let reduction_vs_paris = if pa.mape > 0.0 {
        100.0 * (pa.mape - v.mape) / pa.mape
    } else {
        0.0
    };
    report.series = serde_json::json!({
        "per_workload": series,
        "target_mean": {"vesta": v.mape, "paris": pa.mape, "ernest": er.mape},
        "vesta_vs_paris_reduction_pct": reduction_vs_paris,
    });
    report.note(format!(
        "Paper shape: Vesta reduces overall error by up to 51% vs PARIS on the new framework; \
         measured reduction on the Spark target set: {}.",
        pct(reduction_vs_paris)
    ));
    report.note(
        "Expected outliers: Spark-svd++ (≈40% run variance) and Spark-CF (CMF convergence cap).",
    );
    report
}

/// Fig. 7: predicted vs observed execution time of Spark-lr on the 10
/// typical VM types.
pub fn fig7(ctx: &Context) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig7",
        "Predicting Spark-lr execution time on 10 VM types ((Predicted/Observed) x 100%)",
        &[
            "VM type",
            "Observed (s)",
            "Vesta pred (s)",
            "Vesta %",
            "Ernest pred (s)",
            "Ernest %",
        ],
    );
    let w = ctx.suite.by_name("Spark-lr").expect("Spark-lr exists");
    let vesta = ctx.vesta();
    let prediction = vesta.select_best_vm(w).expect("vesta prediction");
    let ernest = ctx.ernest_for(w);
    let ranking = ground_truth_ranking(&ctx.catalog, w, 1, Objective::ExecutionTime);
    let truth: std::collections::BTreeMap<vesta_cloud_sim::VmTypeId, f64> =
        ranking.into_iter().collect();
    let mut series = Vec::new();
    let mut vesta_devs = Vec::new();
    let mut ernest_devs = Vec::new();
    for vm in ctx.catalog.typical_ten() {
        let observed = truth[&vm.type_id()];
        let vp = prediction
            .predicted_times
            .get(&vm.type_id())
            .copied()
            .unwrap_or(f64::NAN);
        let ep = ernest.predict(vm).expect("ernest predict");
        let vdev = 100.0 * vp / observed;
        let edev = 100.0 * ep / observed;
        vesta_devs.push((vdev - 100.0).abs());
        ernest_devs.push((edev - 100.0).abs());
        report.row(vec![
            vm.name.clone(),
            f(observed),
            f(vp),
            pct(vdev),
            f(ep),
            pct(edev),
        ]);
        series.push(serde_json::json!({
            "vm": vm.name, "observed_s": observed, "vesta_s": vp, "ernest_s": ep,
            "vesta_dev_pct": vdev, "ernest_dev_pct": edev,
        }));
    }
    let vmean = vesta_ml::stats::mean(&vesta_devs);
    let emean = vesta_ml::stats::mean(&ernest_devs);
    report.series = serde_json::json!({
        "per_vm": series,
        "mean_abs_dev": {"vesta": vmean, "ernest": emean},
    });
    report.note(format!(
        "Paper shape: Vesta performs better or comparable against Ernest on every type \
         (it trains with large data sets offline). Measured mean |dev - 100%|: Vesta {}, Ernest {}.",
        pct(vmean),
        pct(emean)
    ));
    report
}

/// Fig. 8: training overhead (reference VMs) per system for Spark targets.
pub fn fig8(ctx: &Context) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig8",
        "Training overhead comparing against PARIS and Ernest (reference VMs per Spark workload)",
        &["System", "Reference VMs / workload", "Notes"],
    );
    let vesta = ctx.vesta();
    let targets: Vec<&Workload> = ctx.suite.target();
    let mut vesta_refs = Vec::new();
    for w in &targets {
        let p = vesta.select_best_vm(w).expect("vesta prediction");
        vesta_refs.push(p.reference_vms as f64);
    }
    let vesta_mean = vesta_ml::stats::mean(&vesta_refs);
    let vesta_max = vesta_refs.iter().cloned().fold(0.0f64, f64::max);

    // PARIS from scratch on Spark: to reach its trained accuracy it needs
    // the full profiling sweep per workload (Table 5: "PARIS is training
    // Spark workloads from scratch").
    let paris_refs = ctx.catalog.len() as f64;
    // Ernest: fractions × training VMs.
    let ecfg = ctx.ernest_config();
    let ernest_refs = (ecfg.fractions.len() * ecfg.training_vms.len()) as f64;

    report.row(vec![
        "Vesta".into(),
        format!("{vesta_mean:.1} (max {vesta_max:.0})"),
        "sandbox + 3 random; fallback widens on non-convergence".into(),
    ]);
    report.row(vec![
        "PARIS (from scratch)".into(),
        format!("{paris_refs:.0}"),
        "full-catalog profiling sweep per new-framework workload".into(),
    ]);
    report.row(vec![
        "Ernest".into(),
        format!("{ernest_refs:.0}"),
        "scaled-down training runs (accurate modeling, Spark only)".into(),
    ]);
    let reduction = 100.0 * (paris_refs - vesta_mean) / paris_refs;
    report.series = serde_json::json!({
        "vesta_mean": vesta_mean, "vesta_max": vesta_max,
        "paris": paris_refs, "ernest": ernest_refs,
        "vesta_vs_paris_reduction_pct": reduction,
    });
    report.note(format!(
        "Paper shape: Vesta reduces up to 85% training overhead vs PARIS (15 vs 100 reference \
         VMs) and is close to Ernest. Measured reduction: {}.",
        pct(reduction)
    ));
    report
}
