//! Regeneration of the paper's tables.
//!
//! * Table 1 — the correlation similarities, here *measured*: mean value of
//!   each of the 10 correlations per framework.
//! * Table 3 — the 30 workloads and their split.
//! * Table 4 — the 120 VM types.
//! * Table 5 — the alternative solutions and their measured training
//!   overheads.

use vesta_cloud_sim::{Collector, Simulator, CORRELATION_NAMES, N_CORRELATIONS};
use vesta_workloads::{Framework, MemoryWatcher};

use crate::context::Context;
use crate::report::{f, ExperimentReport};

/// Table 1: measured correlation similarities per framework.
pub fn table1(ctx: &Context) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table1",
        "High-level similarities (correlations) across frameworks — measured means",
        &["Correlation", "Hadoop", "Hive", "Spark"],
    );
    let sim = Simulator::default();
    let sampler = Collector::default();
    let watcher = MemoryWatcher::default();
    let vm = ctx
        .catalog
        .by_name("m5.2xlarge")
        .expect("reference VM exists");
    let mut per_framework: Vec<(Framework, Vec<Vec<f64>>)> = vec![
        (Framework::Hadoop, Vec::new()),
        (Framework::Hive, Vec::new()),
        (Framework::Spark, Vec::new()),
    ];
    for w in ctx.suite.all() {
        let demand = watcher.apply(&w.demand(), vm);
        let trace = sampler
            .collect(&sim, &demand, vm, 1, 0)
            .expect("reference trace");
        let cv = trace.correlations().expect("correlations");
        for (fw, acc) in &mut per_framework {
            if *fw == w.framework {
                acc.push(cv.as_slice().to_vec());
            }
        }
    }
    let mean_of = |rows: &Vec<Vec<f64>>, i: usize| -> f64 {
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|r| r[i]).sum::<f64>() / rows.len() as f64
    };
    let mut series = Vec::new();
    for (i, name) in CORRELATION_NAMES.iter().enumerate() {
        let h = mean_of(&per_framework[0].1, i);
        let v = mean_of(&per_framework[1].1, i);
        let s = mean_of(&per_framework[2].1, i);
        series.push(serde_json::json!({"name": name, "hadoop": h, "hive": v, "spark": s}));
        report.row(vec![name.to_string(), f(h), f(v), f(s)]);
    }
    report.series = serde_json::json!(series);
    report.note(
        "Paper: correlation similarities are high-level metrics shared across frameworks \
         (Table 1 is descriptive); here we report the measured per-framework means on a \
         common reference VM.",
    );
    report
}

/// Table 3: the workload suite.
pub fn table3(ctx: &Context) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table3",
        "Big data application workloads (30 apps, source/testing/target split)",
        &["No.", "Name", "Set", "Benchmark", "Use case", "Input (GB)"],
    );
    for w in ctx.suite.all() {
        let set = match w.split {
            vesta_workloads::SplitSet::SourceTraining => "source/training",
            vesta_workloads::SplitSet::SourceTesting => "source/testing",
            vesta_workloads::SplitSet::Target => "target",
        };
        let bench = match w.benchmark {
            vesta_workloads::Benchmark::HiBench => "HiBench",
            vesta_workloads::Benchmark::BigDataBench => "BigDataBench",
        };
        report.row(vec![
            w.id.to_string(),
            w.name(),
            set.to_string(),
            bench.to_string(),
            w.use_case().to_string(),
            f(w.scale.gb()),
        ]);
    }
    report.note("Matches Table 3: 13 training + 5 testing (Hadoop/Hive) and 12 Spark targets.");
    report
}

/// Table 4: the VM catalog.
pub fn table4(ctx: &Context) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table4",
        "VM types used in our experiments (120 types, 20 families, 5 categories)",
        &[
            "Category",
            "Family",
            "Sizes",
            "vCPU range",
            "Memory range (GB)",
            "$/h range",
        ],
    );
    for family in ctx.catalog.families() {
        let vms = ctx.catalog.family(family);
        let sizes: Vec<String> = vms.iter().map(|v| v.size.suffix().to_string()).collect();
        let vmin = vms.iter().map(|v| v.vcpus).min().unwrap_or(0);
        let vmax = vms.iter().map(|v| v.vcpus).max().unwrap_or(0);
        let mmin = vms
            .iter()
            .map(|v| v.memory_gb)
            .fold(f64::INFINITY, f64::min);
        let mmax = vms.iter().map(|v| v.memory_gb).fold(0.0f64, f64::max);
        let pmin = vms
            .iter()
            .map(|v| v.price_per_hour)
            .fold(f64::INFINITY, f64::min);
        let pmax = vms.iter().map(|v| v.price_per_hour).fold(0.0f64, f64::max);
        report.row(vec![
            vms[0].category.to_string(),
            family.to_string(),
            sizes.join(","),
            format!("{vmin}-{vmax}"),
            format!("{mmin:.0}-{mmax:.0}"),
            format!("{pmin:.3}-{pmax:.3}"),
        ]);
    }
    report.note(format!(
        "{} concrete types; Table 4 lists 100 while the text says 120 — each family is \
         extended by its next real size step (see DESIGN.md).",
        ctx.catalog.len()
    ));
    report
}

/// Table 5: alternative solutions.
pub fn table5(ctx: &Context) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table5",
        "Alternative solutions in our experiments",
        &["Solution", "Model", "Trained on", "Measured offline runs"],
    );
    let paris = ctx.paris();
    report.row(vec![
        "PARIS".into(),
        "Random Forest over (fingerprint ⊕ VM features)".into(),
        "Hadoop+Hive source set; tested on Spark (fragile reuse)".into(),
        paris.training_runs().to_string(),
    ]);
    let ernest = ctx.ernest_for(ctx.suite.by_name("Spark-lr").expect("Spark-lr exists"));
    report.row(vec![
        "Ernest".into(),
        "NNLS performance model T(n, m)".into(),
        "per-workload scaled-down runs; Spark-specialized".into(),
        format!("{} per workload", ernest.training_runs()),
    ]);
    report.row(vec![
        "CherryPick*".into(),
        "Bayesian-optimization search (related-work extension)".into(),
        "no offline model; pays one run per probe".into(),
        "0".into(),
    ]);
    report.note("(*) CherryPick is implemented as an extension; Figs. 2/6/8 compare PARIS and Ernest as in the paper.");
    report
}

/// Number of correlation features (sanity re-export for tests).
pub const N_FEATURES: usize = N_CORRELATIONS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Fidelity;

    #[test]
    fn table3_and_table4_are_complete() {
        let ctx = Context::new(Fidelity::Quick);
        let t3 = table3(&ctx);
        assert_eq!(t3.rows.len(), 30);
        let t4 = table4(&ctx);
        assert_eq!(t4.rows.len(), 20);
    }

    #[test]
    fn table1_reports_all_ten_correlations() {
        let ctx = Context::new(Fidelity::Quick);
        let t1 = table1(&ctx);
        assert_eq!(t1.rows.len(), N_FEATURES);
        // values parse back as numbers in [-1, 1]
        for row in &t1.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((-1.0..=1.0).contains(&v), "{v}");
            }
        }
    }
}
